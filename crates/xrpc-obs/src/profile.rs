//! Distributed query profiling: per-operator runtime statistics, phase
//! breakdowns, and cross-peer profile assembly.
//!
//! A [`ProfileCollector`] is threaded through both engines when the query
//! enables `xrpc:profile` (or is force-profiled by the slow-query log).
//! Operators open an [`OpGuard`] on entry; the guard aggregates wall time,
//! call counts, item counts and bytes into an arena tree keyed by
//! (parent, operator name) — one node per operator *position*, not per
//! invocation, so a million-iteration loop costs one node.
//!
//! Wall-clock reads are sampled: only every `stride`-th guard takes the two
//! `Instant::now()` reads (the same sampled-clock idiom as
//! `CancelToken::check`). The estimated total is scaled back up as
//! `wall * calls / timed_calls`. Stride 1 (`"full"`) times every call.
//!
//! Each hop (peer) finishes its collector into a [`HopProfile`] — operator
//! tree plus a [`Phases`] breakdown — which travels back to the caller in
//! the `<xrpc:profile>` SOAP response header. The originator assembles all
//! hops into one [`QueryProfile`], renderable as JSON or as a folded-stack
//! flamegraph file.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How much profiling the query asked for.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProfileMode {
    #[default]
    Off,
    /// Operator tree with sampled clocks (default stride).
    Sampled,
    /// Operator tree timing every call (stride 1) — `explain_analyze`.
    Full,
}

/// Default sampling stride for [`ProfileMode::Sampled`]: one pair of clock
/// reads per 16 operator invocations.
pub const DEFAULT_STRIDE: u32 = 16;

impl ProfileMode {
    /// Lenient parse of the `xrpc:profile` option value. Unknown values
    /// mean "off" — a typo must never break the query.
    pub fn parse(s: &str) -> ProfileMode {
        match s.trim().to_ascii_lowercase().as_str() {
            "on" | "sampled" | "true" | "1" => ProfileMode::Sampled,
            "full" | "analyze" => ProfileMode::Full,
            _ => ProfileMode::Off,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            ProfileMode::Off => "off",
            ProfileMode::Sampled => "sampled",
            ProfileMode::Full => "full",
        }
    }

    pub fn stride(self) -> u32 {
        match self {
            ProfileMode::Off => 0,
            ProfileMode::Sampled => DEFAULT_STRIDE,
            ProfileMode::Full => 1,
        }
    }

    pub fn is_on(self) -> bool {
        self != ProfileMode::Off
    }
}

/// Phase breakdown of one hop, mirroring the paper's §5 cost decomposition
/// (parse / compile / marshal / network / execute / serialize) plus the
/// update-path extras (2PC coordination, WAL fsync).
#[derive(Clone, Debug, Default)]
pub struct Phases {
    pub parse_micros: u64,
    pub compile_micros: u64,
    pub marshal_micros: u64,
    pub network_micros: u64,
    pub execute_micros: u64,
    pub serialize_micros: u64,
    pub twopc_micros: u64,
    pub wal_micros: u64,
    /// Plan-cache disposition for this hop: "hit", "miss", or "off".
    pub cache: &'static str,
}

impl Phases {
    pub fn total_micros(&self) -> u64 {
        self.parse_micros
            + self.compile_micros
            + self.marshal_micros
            + self.network_micros
            + self.execute_micros
            + self.serialize_micros
            + self.twopc_micros
            + self.wal_micros
    }
}

/// One of the accounted phases; used with [`ProfileCollector::add_phase`].
#[derive(Clone, Copy, Debug)]
pub enum Phase {
    Parse,
    Compile,
    Marshal,
    Network,
    Execute,
    Serialize,
    TwoPc,
    Wal,
}

/// One node of the aggregated operator tree.
#[derive(Clone, Debug, Default)]
pub struct OpNode {
    pub name: String,
    pub calls: u64,
    /// Invocations that actually read the clock (sampling).
    pub timed_calls: u64,
    /// Wall time summed over the timed invocations only.
    pub wall_micros: u64,
    pub items: u64,
    pub bytes: u64,
    pub children: Vec<OpNode>,
}

impl OpNode {
    /// Estimated total wall time, scaling the sampled measurements back up
    /// to all invocations.
    pub fn est_wall_micros(&self) -> u64 {
        self.wall_micros
            .saturating_mul(self.calls)
            .checked_div(self.timed_calls)
            .unwrap_or(0)
    }

    fn to_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"calls\":{},\"timedCalls\":{},\"wallMicros\":{},\"estWallMicros\":{},\"items\":{},\"bytes\":{},\"children\":[",
            json_escape(&self.name),
            self.calls,
            self.timed_calls,
            self.wall_micros,
            self.est_wall_micros(),
            self.items,
            self.bytes
        ));
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.to_json(out);
        }
        out.push_str("]}");
    }
}

/// The finished profile of one hop: which peer ran it, who called it
/// (`via`, empty at the originator), its depth in the call chain, the PR 5
/// trace correlation ids, and the operator tree plus phase breakdown.
#[derive(Clone, Debug)]
pub struct HopProfile {
    pub peer: String,
    pub via: String,
    pub depth: u32,
    pub trace_id: u128,
    pub span_id: u64,
    pub total_micros: u64,
    pub phases: Phases,
    pub ops: Vec<OpNode>,
}

impl HopProfile {
    pub fn to_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"peer\":\"{}\",\"via\":\"{}\",\"depth\":{},\"traceId\":\"{:032x}\",\"spanId\":\"{:016x}\",\"totalMicros\":{},\"phases\":{{\"parseMicros\":{},\"compileMicros\":{},\"marshalMicros\":{},\"networkMicros\":{},\"executeMicros\":{},\"serializeMicros\":{},\"twopcMicros\":{},\"walMicros\":{},\"cache\":\"{}\"}},\"ops\":[",
            json_escape(&self.peer),
            json_escape(&self.via),
            self.depth,
            self.trace_id,
            self.span_id,
            self.total_micros,
            self.phases.parse_micros,
            self.phases.compile_micros,
            self.phases.marshal_micros,
            self.phases.network_micros,
            self.phases.execute_micros,
            self.phases.serialize_micros,
            self.phases.twopc_micros,
            self.phases.wal_micros,
            json_escape(self.phases.cache),
        ));
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            op.to_json(out);
        }
        out.push_str("]}");
    }
}

/// The cross-peer profile assembled at the originator: every hop's
/// operator tree, linked by (`via`, `depth`) into one call chain and keyed
/// by the shared trace id.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    pub trace_id: u128,
    pub hops: Vec<HopProfile>,
}

impl QueryProfile {
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"traceId\":\"{:032x}\",\"hops\":[",
            self.trace_id
        ));
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            h.to_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Render as folded stacks (`frame;frame;frame count\n`), the input
    /// format of flamegraph.pl / inferno. Counts are microseconds of
    /// estimated *self* time, so the widths add up correctly.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        // Order hops so that a callee follows its caller: sort by depth,
        // then walk each hop's chain of callers to build the stack prefix.
        let mut order: Vec<usize> = (0..self.hops.len()).collect();
        order.sort_by_key(|&i| self.hops[i].depth);
        for &i in &order {
            let hop = &self.hops[i];
            let mut stack: Vec<String> = Vec::new();
            // Walk caller chain: find the hop whose peer equals our `via`
            // at depth - 1, recursively.
            let mut cur = hop;
            loop {
                stack.push(frame(&cur.peer));
                if cur.depth == 0 || cur.via.is_empty() {
                    break;
                }
                let parent = self
                    .hops
                    .iter()
                    .find(|h| h.peer == cur.via && h.depth + 1 == cur.depth);
                match parent {
                    Some(p) => cur = p,
                    None => break,
                }
            }
            stack.reverse();
            let prefix = stack.join(";");
            let ops_est: u64 = hop.ops.iter().map(|o| o.est_wall_micros()).sum();
            let self_time = hop.total_micros.saturating_sub(ops_est);
            if self_time > 0 {
                out.push_str(&format!("{} {}\n", prefix, self_time));
            }
            for op in &hop.ops {
                fold_op(op, &prefix, &mut out);
            }
        }
        out
    }
}

fn fold_op(op: &OpNode, prefix: &str, out: &mut String) {
    let here = format!("{};{}", prefix, frame(&op.name));
    let child_est: u64 = op.children.iter().map(|c| c.est_wall_micros()).sum();
    let self_time = op.est_wall_micros().saturating_sub(child_est);
    if self_time > 0 {
        out.push_str(&format!("{} {}\n", here, self_time));
    }
    for c in &op.children {
        fold_op(c, &here, out);
    }
}

/// Sanitize a frame name for the folded format (no `;`, no whitespace).
fn frame(name: &str) -> String {
    let name = if name.is_empty() { "originator" } else { name };
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The collector
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Arena {
    nodes: Vec<OpNode>,
    node_children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl Arena {
    /// Find or create the child of `parent` named `name`.
    fn child_of(&mut self, parent: Option<usize>, name: &str) -> usize {
        let siblings = match parent {
            Some(p) => &self.node_children[p],
            None => &self.roots,
        };
        for &c in siblings {
            if self.nodes[c].name == name {
                return c;
            }
        }
        let idx = self.nodes.len();
        self.nodes.push(OpNode {
            name: name.to_string(),
            ..OpNode::default()
        });
        self.node_children.push(Vec::new());
        match parent {
            Some(p) => self.node_children[p].push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    fn snapshot(&self, idx: usize) -> OpNode {
        let mut n = self.nodes[idx].clone();
        n.children = self.node_children[idx]
            .iter()
            .map(|&c| self.snapshot(c))
            .collect();
        n
    }
}

thread_local! {
    /// The operator node currently open on this thread (the parent for
    /// the next guard), tagged with its collector's identity. Guards are
    /// strictly nested per query, so a plain cell suffices; the tag keeps
    /// a node index from one query's arena from ever being dereferenced
    /// by another collector running on the same thread (e.g. a simulated
    /// server handling a profiled caller's request in-thread).
    static CURRENT_OP: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// A global sequence so every collector owns a distinct identity.
static COLLECTOR_SEQ: AtomicU64 = AtomicU64::new(1);

/// Opaque handle to the operator currently open on this thread — capture
/// this before handing work to another thread and reinstall it there with
/// [`install_parent`].
#[derive(Copy, Clone, Debug, Default)]
pub struct OpParent(Option<(u64, usize)>);

/// Read the current parent operator handle.
pub fn current_parent() -> OpParent {
    OpParent(CURRENT_OP.with(|c| c.get()))
}

/// Install a parent operator on this thread; restores the previous one
/// when the returned guard drops. Used when worker threads continue a
/// profiled evaluation (parallel bulk calls, chunked dispatch).
pub fn install_parent(parent: OpParent) -> ParentGuard {
    let prev = CURRENT_OP.with(|c| c.replace(parent.0));
    ParentGuard { prev }
}

pub struct ParentGuard {
    prev: Option<(u64, usize)>,
}

impl Drop for ParentGuard {
    fn drop(&mut self) {
        CURRENT_OP.with(|c| c.set(self.prev));
    }
}

/// Collects one hop's profile. Created per query when profiling is on;
/// shared (`Arc`) between the evaluator, the XRPC client, and any worker
/// threads.
pub struct ProfileCollector {
    pub mode: ProfileMode,
    /// This hop's peer identity (our own URL, or a logical name).
    pub peer: String,
    /// Who called us — empty at the originator.
    pub via: String,
    /// Call-chain depth: 0 at the originator, +1 per `execute at` hop.
    pub depth: u32,
    /// Distinguishes this collector's arena in the thread-local parent
    /// cell from any other collector that ran on the same thread.
    id: u64,
    stride: u32,
    ctr: AtomicU32,
    arena: Mutex<Arena>,
    phases: Mutex<Phases>,
    /// Hop profiles harvested from downstream peers' responses.
    child_hops: Mutex<Vec<HopProfile>>,
    /// Bytes sent/received on the wire by this hop (summed into the
    /// network accounting of the hop, not per-operator).
    pub wire_bytes: AtomicU64,
}

impl ProfileCollector {
    pub fn new(mode: ProfileMode, peer: &str, via: &str, depth: u32) -> Arc<ProfileCollector> {
        Arc::new(ProfileCollector {
            mode,
            peer: peer.to_string(),
            via: via.to_string(),
            depth,
            id: COLLECTOR_SEQ.fetch_add(1, Ordering::Relaxed),
            stride: mode.stride().max(1),
            ctr: AtomicU32::new(0),
            arena: Mutex::new(Arena::default()),
            phases: Mutex::new(Phases {
                cache: "off",
                ..Phases::default()
            }),
            child_hops: Mutex::new(Vec::new()),
            wire_bytes: AtomicU64::new(0),
        })
    }

    /// Open an operator guard as a child of the thread's current operator.
    /// The clock is only read on every `stride`-th invocation.
    pub fn op(self: &Arc<Self>, name: &str) -> OpGuard {
        let prev = CURRENT_OP.with(|c| c.get());
        // A parent left by some other collector is not ours to nest
        // under — this guard opens a fresh root in our own arena.
        let parent = prev.filter(|(id, _)| *id == self.id).map(|(_, idx)| idx);
        let node = self.arena.lock().unwrap().child_of(parent, name);
        CURRENT_OP.with(|c| c.set(Some((self.id, node))));
        let timed = self
            .ctr
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.stride);
        OpGuard {
            col: self.clone(),
            node,
            prev,
            start: if timed { Some(Instant::now()) } else { None },
            items: 0,
            bytes: 0,
        }
    }

    /// Attribute wire bytes to the operator currently open on this thread
    /// (the `execute at` whose dispatch produced them), and to the hop's
    /// own byte total either way.
    pub fn add_bytes_to_current(&self, n: u64) {
        self.wire_bytes.fetch_add(n, Ordering::Relaxed);
        let current = CURRENT_OP.with(|c| c.get());
        if let Some((_, idx)) = current.filter(|(id, _)| *id == self.id) {
            let mut a = self.arena.lock().unwrap();
            if let Some(node) = a.nodes.get_mut(idx) {
                node.bytes += n;
            }
        }
    }

    pub fn add_phase(&self, phase: Phase, micros: u64) {
        let mut p = self.phases.lock().unwrap();
        match phase {
            Phase::Parse => p.parse_micros += micros,
            Phase::Compile => p.compile_micros += micros,
            Phase::Marshal => p.marshal_micros += micros,
            Phase::Network => p.network_micros += micros,
            Phase::Execute => p.execute_micros += micros,
            Phase::Serialize => p.serialize_micros += micros,
            Phase::TwoPc => p.twopc_micros += micros,
            Phase::Wal => p.wal_micros += micros,
        }
    }

    pub fn set_cache(&self, disposition: &'static str) {
        self.phases.lock().unwrap().cache = disposition;
    }

    pub fn phases(&self) -> Phases {
        self.phases.lock().unwrap().clone()
    }

    /// Absorb hop profiles harvested from a downstream peer's response.
    pub fn absorb_hops(&self, hops: Vec<HopProfile>) {
        self.child_hops.lock().unwrap().extend(hops);
    }

    /// Snapshot the operator tree roots.
    pub fn snapshot_ops(&self) -> Vec<OpNode> {
        let a = self.arena.lock().unwrap();
        a.roots.iter().map(|&r| a.snapshot(r)).collect()
    }

    /// Finish this hop: its own profile first, then every absorbed
    /// downstream hop. The resulting list is what goes into the
    /// `<xrpc:profile>` response header (or the originator's assembly).
    pub fn finish_hops(&self, trace_id: u128, span_id: u64, total_micros: u64) -> Vec<HopProfile> {
        let own = HopProfile {
            peer: self.peer.clone(),
            via: self.via.clone(),
            depth: self.depth,
            trace_id,
            span_id,
            total_micros,
            phases: self.phases(),
            ops: self.snapshot_ops(),
        };
        let mut hops = vec![own];
        hops.extend(self.child_hops.lock().unwrap().drain(..));
        hops
    }
}

/// RAII operator timer. Created by [`ProfileCollector::op`]; records into
/// the aggregated node on drop and restores the parent pointer.
pub struct OpGuard {
    col: Arc<ProfileCollector>,
    node: usize,
    prev: Option<(u64, usize)>,
    start: Option<Instant>,
    items: u64,
    bytes: u64,
}

impl OpGuard {
    /// Record how many items/rows this invocation produced.
    pub fn set_items(&mut self, n: u64) {
        self.items = n;
    }

    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }
}

impl Drop for OpGuard {
    fn drop(&mut self) {
        let elapsed = self.start.map(|s| s.elapsed().as_micros() as u64);
        let mut a = self.col.arena.lock().unwrap();
        let n = &mut a.nodes[self.node];
        n.calls += 1;
        if let Some(e) = elapsed {
            n.timed_calls += 1;
            n.wall_micros += e;
        }
        n.items += self.items;
        n.bytes += self.bytes;
        drop(a);
        CURRENT_OP.with(|c| c.set(self.prev));
    }
}

pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_is_lenient() {
        assert_eq!(ProfileMode::parse("on"), ProfileMode::Sampled);
        assert_eq!(ProfileMode::parse(" Sampled "), ProfileMode::Sampled);
        assert_eq!(ProfileMode::parse("full"), ProfileMode::Full);
        assert_eq!(ProfileMode::parse("analyze"), ProfileMode::Full);
        assert_eq!(ProfileMode::parse("off"), ProfileMode::Off);
        assert_eq!(ProfileMode::parse("bogus"), ProfileMode::Off);
        assert_eq!(ProfileMode::parse(""), ProfileMode::Off);
    }

    #[test]
    fn guards_aggregate_by_position() {
        let col = ProfileCollector::new(ProfileMode::Full, "p1", "", 0);
        for _ in 0..10 {
            let mut outer = col.op("flwor");
            outer.set_items(1);
            {
                let mut inner = col.op("path-step");
                inner.set_items(3);
            }
        }
        let ops = col.snapshot_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].name, "flwor");
        assert_eq!(ops[0].calls, 10);
        assert_eq!(ops[0].timed_calls, 10); // full mode: every call timed
        assert_eq!(ops[0].items, 10);
        assert_eq!(ops[0].children.len(), 1);
        assert_eq!(ops[0].children[0].name, "path-step");
        assert_eq!(ops[0].children[0].calls, 10);
        assert_eq!(ops[0].children[0].items, 30);
    }

    #[test]
    fn sampled_mode_times_a_subset() {
        let col = ProfileCollector::new(ProfileMode::Sampled, "p1", "", 0);
        for _ in 0..64 {
            let _g = col.op("op");
        }
        let ops = col.snapshot_ops();
        assert_eq!(ops[0].calls, 64);
        assert_eq!(ops[0].timed_calls, 64 / DEFAULT_STRIDE as u64);
    }

    #[test]
    fn est_wall_scales_sampled_measurements() {
        let n = OpNode {
            calls: 100,
            timed_calls: 10,
            wall_micros: 50,
            ..OpNode::default()
        };
        assert_eq!(n.est_wall_micros(), 500);
        let untimed = OpNode {
            calls: 5,
            ..OpNode::default()
        };
        assert_eq!(untimed.est_wall_micros(), 0);
    }

    #[test]
    fn parent_handoff_across_threads() {
        let col = ProfileCollector::new(ProfileMode::Full, "p1", "", 0);
        let outer = col.op("outer");
        let parent = current_parent();
        let col2 = col.clone();
        std::thread::spawn(move || {
            let _pg = install_parent(parent);
            let _g = col2.op("inner");
        })
        .join()
        .unwrap();
        drop(outer);
        let ops = col.snapshot_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].children.len(), 1);
        assert_eq!(ops[0].children[0].name, "inner");
    }

    #[test]
    fn folded_output_has_hop_prefixes() {
        let prof = QueryProfile {
            trace_id: 1,
            hops: vec![
                HopProfile {
                    peer: "http://a/".into(),
                    via: String::new(),
                    depth: 0,
                    trace_id: 1,
                    span_id: 1,
                    total_micros: 1000,
                    phases: Phases::default(),
                    ops: vec![OpNode {
                        name: "xq:flwor".into(),
                        calls: 1,
                        timed_calls: 1,
                        wall_micros: 400,
                        ..OpNode::default()
                    }],
                },
                HopProfile {
                    peer: "http://b/".into(),
                    via: "http://a/".into(),
                    depth: 1,
                    trace_id: 1,
                    span_id: 2,
                    total_micros: 300,
                    phases: Phases::default(),
                    ops: Vec::new(),
                },
            ],
        };
        let folded = prof.to_folded();
        assert!(
            folded.contains("http://a/ 600\n"),
            "hop self time: {folded}"
        );
        assert!(folded.contains("http://a/;xq:flwor 400\n"), "{folded}");
        assert!(
            folded.contains("http://a/;http://b/ 300\n"),
            "callee nested under caller: {folded}"
        );
        // Every line parses as `stack count`.
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
            assert!(!stack.is_empty());
            count.parse::<u64>().expect("count is integer");
        }
    }

    #[test]
    fn json_renders_and_escapes() {
        let prof = QueryProfile {
            trace_id: 0xabc,
            hops: vec![HopProfile {
                peer: "http://a/\"x\"".into(),
                via: String::new(),
                depth: 0,
                trace_id: 0xabc,
                span_id: 7,
                total_micros: 10,
                phases: Phases {
                    cache: "hit",
                    execute_micros: 9,
                    ..Phases::default()
                },
                ops: Vec::new(),
            }],
        };
        let j = prof.to_json();
        assert!(j.contains("\\\"x\\\""));
        assert!(j.contains("\"cache\":\"hit\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
