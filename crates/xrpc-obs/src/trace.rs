//! Distributed trace propagation without a tracing framework.
//!
//! A [`TraceContext`] is 24 bytes of identity — 128-bit trace id,
//! 64-bit span id, optional parent span id — that rides inside the
//! XRPC SOAP envelope header (`<xrpc:trace/>`, see `xrpc-proto`) so
//! one `execute at` call yields a single coherent trace across every
//! peer it touches. The trace id is *derived from the queryId*
//! ([`trace_id_from`]): deterministic, so spans emitted before a
//! crash, after a restart, and on other peers all agree without any
//! coordination or extra durable state.
//!
//! Each peer owns a [`Tracer`]; finished spans land in its bounded
//! ring buffer (slot claim is one `fetch_add` — recorders never wait
//! on each other) and can be exported as JSON lines or queried
//! directly from tests. The current context is ambient per thread
//! ([`current_context`]/[`set_current_context`]) so nested client
//! calls become child spans without threading a parameter through
//! every signature; code that hops threads (the 2PC prepare scope)
//! captures the context and re-installs it inside the spawned thread.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The identity a call carries across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    pub trace_id: u128,
    pub span_id: u64,
    pub parent_id: Option<u64>,
}

impl TraceContext {
    /// A child context under `self`: same trace, new span id, parented
    /// to this span.
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id,
            parent_id: Some(self.span_id),
        }
    }
}

/// Derive a trace id from a queryId's `(host, timestamp_millis)` pair.
/// Every peer that sees the same queryId — including a peer that
/// crashed and restarted — derives the same trace id, which is what
/// lets a recovery-chaos run stitch one transaction's timeline back
/// together from spans alone.
pub fn trace_id_from(host: &str, timestamp_millis: u64) -> u128 {
    ((fnv1a64(host) as u128) << 64) | timestamp_millis as u128
}

fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A completed span as it sits in the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedSpan {
    pub trace_id: u128,
    pub span_id: u64,
    pub parent_id: Option<u64>,
    pub name: String,
    pub peer: String,
    /// Wall-clock start, microseconds since the Unix epoch.
    pub start_micros: u64,
    pub duration_micros: u64,
    pub tags: Vec<(String, String)>,
}

impl FinishedSpan {
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// One JSON object (no trailing newline). Ids are hex strings so
    /// consumers never hit 64-bit JSON number limits.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"trace_id\":\"");
        out.push_str(&format!("{:032x}", self.trace_id));
        out.push_str("\",\"span_id\":\"");
        out.push_str(&format!("{:016x}", self.span_id));
        out.push_str("\",\"parent_id\":");
        match self.parent_id {
            Some(p) => out.push_str(&format!("\"{p:016x}\"")),
            None => out.push_str("null"),
        }
        out.push_str(",\"name\":\"");
        json_escape(&self.name, &mut out);
        out.push_str("\",\"peer\":\"");
        json_escape(&self.peer, &mut out);
        out.push_str(&format!(
            "\",\"start_micros\":{},\"duration_micros\":{},\"tags\":{{",
            self.start_micros, self.duration_micros
        ));
        for (i, (k, v)) in self.tags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(k, &mut out);
            out.push_str("\":\"");
            json_escape(v, &mut out);
            out.push('"');
        }
        out.push_str("}}");
        out
    }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Per-peer span sink: a bounded ring buffer. Writers claim a slot
/// with one `fetch_add` and only ever contend on that slot's own
/// mutex (against a concurrent exporter), never on each other.
pub struct Tracer {
    peer: String,
    head: AtomicUsize,
    slots: Box<[Mutex<Option<FinishedSpan>>]>,
    next_span_id: AtomicU64,
    /// Spans overwritten before ever being exported — the ring kept
    /// running but the trace is truncated.
    dropped: AtomicU64,
}

impl Tracer {
    pub fn new(peer: &str, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Tracer {
            peer: peer.to_string(),
            head: AtomicUsize::new(0),
            slots,
            // seed per-tracer so span ids from different peers don't
            // collide even though each counter is sequential
            next_span_id: AtomicU64::new(fnv1a64(peer) | 1),
            dropped: AtomicU64::new(0),
        }
    }

    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// A fresh, process-unique span id.
    pub fn next_span_id(&self) -> u64 {
        self.next_span_id
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
    }

    /// Start a span continuing `parent` (same trace, parented to it).
    pub fn child_span(self: &Arc<Self>, name: &str, parent: TraceContext) -> SpanGuard {
        self.span(name, parent.child(self.next_span_id()))
    }

    /// Start a span with an explicit context. The context becomes the
    /// ambient one for this thread until the guard drops.
    pub fn span(self: &Arc<Self>, name: &str, ctx: TraceContext) -> SpanGuard {
        let start_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        SpanGuard {
            tracer: self.clone(),
            ctx,
            name: name.to_string(),
            started: Instant::now(),
            start_micros,
            tags: Vec::new(),
            ambient: Some(set_current_context(Some(ctx))),
        }
    }

    /// Start a span under the thread's ambient context when there is
    /// one, or as a brand-new root trace otherwise.
    pub fn span_here(self: &Arc<Self>, name: &str) -> SpanGuard {
        let ctx = match current_context() {
            Some(p) => p.child(self.next_span_id()),
            None => TraceContext {
                trace_id: (self.next_span_id() as u128) << 64 | self.next_span_id() as u128,
                span_id: self.next_span_id(),
                parent_id: None,
            },
        };
        self.span(name, ctx)
    }

    fn push(&self, span: FinishedSpan) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let mut slot = self.slots[i].lock().unwrap();
        if slot.is_some() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(span);
    }

    /// How many spans the ring overwrote (dropped) so far. Exposed on
    /// `/metrics` as `xrpc_trace_spans_dropped_total`; non-zero means
    /// exported traces may be missing spans.
    pub fn spans_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Every span still in the ring, oldest first.
    pub fn finished(&self) -> Vec<FinishedSpan> {
        let head = self.head.load(Ordering::Acquire);
        let n = self.slots.len();
        let mut out = Vec::new();
        for off in 0..n {
            let i = (head + off) % n;
            if let Some(s) = self.slots[i].lock().unwrap().clone() {
                out.push(s);
            }
        }
        out
    }

    /// Spans belonging to one trace, oldest first.
    pub fn spans_for(&self, trace_id: u128) -> Vec<FinishedSpan> {
        self.finished()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    /// JSON-lines export of the whole ring (one object per line). When
    /// the ring has overwritten spans, the first line is a warning
    /// record so consumers know the trace is truncated rather than
    /// silently incomplete.
    pub fn export_json(&self) -> String {
        let mut out = String::new();
        let dropped = self.spans_dropped();
        if dropped > 0 {
            out.push_str(&format!(
                "{{\"warning\":\"spans_dropped\",\"dropped\":{},\"peer\":\"",
                dropped
            ));
            json_escape(&self.peer, &mut out);
            out.push_str("\"}\n");
        }
        for s in self.finished() {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }
}

/// An open span; finishes (and lands in the ring buffer) on drop.
pub struct SpanGuard {
    tracer: Arc<Tracer>,
    ctx: TraceContext,
    name: String,
    started: Instant,
    start_micros: u64,
    tags: Vec<(String, String)>,
    ambient: Option<ContextGuard>,
}

impl SpanGuard {
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    pub fn tag(&mut self, key: &str, value: impl Into<String>) {
        self.tags.push((key.to_string(), value.into()));
    }

    /// Elapsed time so far (the histogram-facing reading).
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // restore the ambient context before recording, so the span's
        // own context is not ambient while the ring is written
        self.ambient.take();
        self.tracer.push(FinishedSpan {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            parent_id: self.ctx.parent_id,
            name: std::mem::take(&mut self.name),
            peer: self.tracer.peer.clone(),
            start_micros: self.start_micros,
            duration_micros: self.started.elapsed().as_micros().min(u64::MAX as u128) as u64,
            tags: std::mem::take(&mut self.tags),
        });
    }
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
    static TRACER: RefCell<Option<Arc<Tracer>>> = const { RefCell::new(None) };
}

/// The thread's ambient trace context, if a span is open on it.
pub fn current_context() -> Option<TraceContext> {
    CURRENT.with(|c| c.get())
}

/// Install `ctx` as the ambient context; the returned guard restores
/// the previous one on drop. Used directly when hopping threads:
/// capture `current_context()` outside, install it inside.
pub fn set_current_context(ctx: Option<TraceContext>) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(ctx));
    ContextGuard { prev }
}

/// Restores the previously ambient context on drop.
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| c.set(prev));
    }
}

/// The thread's ambient tracer, if one has been installed (a peer
/// installs its own around request handling and query execution, so
/// layers below it — the query engines — can open spans without a
/// dependency on the peer runtime).
pub fn current_tracer() -> Option<Arc<Tracer>> {
    TRACER.with(|t| t.borrow().clone())
}

/// Install `tracer` as the thread's ambient tracer; the returned guard
/// restores the previous one on drop.
pub fn set_current_tracer(tracer: Option<Arc<Tracer>>) -> TracerGuard {
    let prev = TRACER.with(|t| t.replace(tracer));
    TracerGuard { prev }
}

/// Restores the previously ambient tracer on drop.
pub struct TracerGuard {
    prev: Option<Arc<Tracer>>,
}

impl Drop for TracerGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        TRACER.with(|t| *t.borrow_mut() = prev);
    }
}

/// Open a span on the thread's ambient tracer under the ambient
/// context, or do nothing (`None`) when no tracer is installed — the
/// zero-cost path for code running outside any instrumented peer.
pub fn ambient_span(name: &str) -> Option<SpanGuard> {
    current_tracer().map(|t| t.span_here(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_is_deterministic() {
        let a = trace_id_from("xrpc://origin:41000", 1234);
        let b = trace_id_from("xrpc://origin:41000", 1234);
        assert_eq!(a, b);
        assert_ne!(a, trace_id_from("xrpc://origin:41000", 1235));
        assert_ne!(a, trace_id_from("xrpc://other:41000", 1234));
        assert_eq!(a as u64, 1234, "low half carries the timestamp");
    }

    #[test]
    fn spans_nest_through_ambient_context() {
        let t = Arc::new(Tracer::new("p1", 64));
        let root_ctx = TraceContext {
            trace_id: 7,
            span_id: t.next_span_id(),
            parent_id: None,
        };
        {
            let _root = t.span("root", root_ctx);
            assert_eq!(current_context().unwrap().span_id, root_ctx.span_id);
            {
                let child = t.span_here("child");
                assert_eq!(child.context().trace_id, 7);
                assert_eq!(child.context().parent_id, Some(root_ctx.span_id));
            }
            // child's guard restored the root as ambient
            assert_eq!(current_context().unwrap().span_id, root_ctx.span_id);
        }
        assert!(current_context().is_none());
        let spans = t.spans_for(7);
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.name == "root"));
        assert!(spans.iter().any(|s| s.name == "child"));
    }

    #[test]
    fn ring_buffer_is_bounded_and_keeps_latest() {
        let t = Arc::new(Tracer::new("p", 8));
        for i in 0..20u64 {
            let mut s = t.span(
                "s",
                TraceContext {
                    trace_id: 1,
                    span_id: i,
                    parent_id: None,
                },
            );
            s.tag("i", i.to_string());
        }
        let spans = t.finished();
        assert_eq!(spans.len(), 8);
        let ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
        assert_eq!(ids, (12..20).collect::<Vec<_>>(), "oldest-first, last 8");
        assert_eq!(t.spans_dropped(), 12, "20 recorded into 8 slots");
    }

    #[test]
    fn export_warns_when_spans_were_dropped() {
        let t = Arc::new(Tracer::new("p", 2));
        for i in 0..3u64 {
            let _ = t.span(
                "s",
                TraceContext {
                    trace_id: 1,
                    span_id: i,
                    parent_id: None,
                },
            );
        }
        assert_eq!(t.spans_dropped(), 1);
        let json = t.export_json();
        let first = json.lines().next().unwrap();
        assert!(
            first.contains("\"warning\":\"spans_dropped\"") && first.contains("\"dropped\":1"),
            "warning record leads the export: {first}"
        );
        // A full-but-never-overwritten ring exports without the warning.
        let clean = Arc::new(Tracer::new("p2", 4));
        for i in 0..4u64 {
            let _ = clean.span(
                "s",
                TraceContext {
                    trace_id: 1,
                    span_id: i,
                    parent_id: None,
                },
            );
        }
        assert!(!clean.export_json().contains("spans_dropped"));
    }

    #[test]
    fn json_export_is_parseable_shape() {
        let t = Arc::new(Tracer::new("px", 4));
        {
            let mut s = t.span(
                "q\"uote",
                TraceContext {
                    trace_id: 0xabc,
                    span_id: 0x1,
                    parent_id: Some(0x2),
                },
            );
            s.tag("err", "line1\nline2");
        }
        let json = t.export_json();
        assert!(json.contains("\"trace_id\":\"00000000000000000000000000000abc\""));
        assert!(json.contains("\"parent_id\":\"0000000000000002\""));
        assert!(json.contains("q\\\"uote"));
        assert!(json.contains("line1\\nline2"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn ambient_tracer_enables_spans_from_below() {
        assert!(ambient_span("noop").is_none(), "no tracer installed");
        let t = Arc::new(Tracer::new("p", 16));
        {
            let _tg = set_current_tracer(Some(t.clone()));
            let root = t.span(
                "root",
                TraceContext {
                    trace_id: 5,
                    span_id: t.next_span_id(),
                    parent_id: None,
                },
            );
            {
                let inner = ambient_span("engine").expect("tracer is ambient");
                assert_eq!(inner.context().trace_id, 5);
                assert_eq!(inner.context().parent_id, Some(root.context().span_id));
            }
        }
        assert!(ambient_span("noop").is_none(), "guard restored");
        assert_eq!(t.spans_for(5).len(), 2);
    }

    #[test]
    fn cross_thread_context_handoff() {
        let t = Arc::new(Tracer::new("p", 16));
        let root = t.span(
            "root",
            TraceContext {
                trace_id: 99,
                span_id: 1,
                parent_id: None,
            },
        );
        let ctx = current_context().unwrap();
        let t2 = t.clone();
        std::thread::spawn(move || {
            assert!(current_context().is_none(), "contexts are thread-local");
            let _g = set_current_context(Some(ctx));
            let child = t2.span_here("remote");
            assert_eq!(child.context().trace_id, 99);
            assert_eq!(child.context().parent_id, Some(1));
        })
        .join()
        .unwrap();
        drop(root);
        assert_eq!(t.spans_for(99).len(), 2);
    }
}
