//! Workspace-wide observability, built only on `std`.
//!
//! Three pieces, deliberately small enough to be threaded through every
//! hop of the XRPC call path without pulling in a telemetry framework:
//!
//! * [`trace`] — a per-call [`TraceContext`] (128-bit trace id, 64-bit
//!   span id, optional parent) that rides in the SOAP envelope header,
//!   plus a [`Tracer`] whose finished spans land in a bounded ring
//!   buffer per peer, exportable as JSON and queryable from tests;
//! * [`hist`] — a fixed-footprint log-linear (HDR-style) atomic
//!   [`Histogram`] with p50/p90/p99/max snapshots and mergeable
//!   buckets, recording in whatever unit the caller picks (µs, bytes,
//!   calls);
//! * [`prom`] — Prometheus text exposition for counters, gauges and
//!   histogram summaries, backing a peer's `/metrics` endpoint;
//! * [`profile`] — the distributed query profiler: per-operator
//!   runtime stats collected via RAII guards with a sampled clock,
//!   per-hop phase breakdowns, and cross-peer assembly into one
//!   [`QueryProfile`] (JSON / folded-stack flamegraph);
//! * [`slowlog`] — the always-on slow-query log: bounded, rotating
//!   JSON-lines behind a never-blocking channel, served at
//!   `GET /slowlog`.
//!
//! [`Observability`] bundles a tracer with a registry of named
//! histograms so one `Arc` can be handed to every layer of a peer.

pub mod hist;
pub mod profile;
pub mod prom;
pub mod slowlog;
pub mod trace;

pub use hist::{HistSnapshot, Histogram, HistogramVec};
pub use profile::{
    HopProfile, OpGuard, OpNode, Phase, Phases, ProfileCollector, ProfileMode, QueryProfile,
};
pub use prom::PromWriter;
pub use slowlog::{SlowLog, SlowLogConfig, SlowLogEntry};
pub use trace::{
    ambient_span, current_context, current_tracer, set_current_context, set_current_tracer,
    trace_id_from, ContextGuard, FinishedSpan, SpanGuard, TraceContext, Tracer, TracerGuard,
};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One peer's observability state: a tracer plus named histograms.
///
/// Histograms are created on first use and live for the peer's
/// lifetime; the `BTreeMap` keeps `/metrics` output stably ordered.
pub struct Observability {
    pub tracer: Arc<Tracer>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
    vecs: Mutex<BTreeMap<String, Arc<HistogramVec>>>,
}

impl Observability {
    pub fn new(peer: &str) -> Arc<Self> {
        Arc::new(Observability {
            tracer: Arc::new(Tracer::new(peer, 4096)),
            hists: Mutex::new(BTreeMap::new()),
            vecs: Mutex::new(BTreeMap::new()),
        })
    }

    /// Get-or-create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut h = self.hists.lock().unwrap();
        h.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Get-or-create a labeled histogram family (`name{label="..."}`)
    /// keyed by `label`.
    pub fn histogram_vec(&self, name: &str, label: &str) -> Arc<HistogramVec> {
        let mut v = self.vecs.lock().unwrap();
        v.entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramVec::new(label)))
            .clone()
    }

    /// Every plain histogram, name-sorted (for exposition).
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.hists
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Every labeled family, name-sorted (for exposition).
    pub fn histogram_vecs(&self) -> Vec<(String, Arc<HistogramVec>)> {
        self.vecs
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}
