//! Prometheus text exposition (version 0.0.4): the format a peer's
//! `/metrics` endpoint serves. Counters and gauges are one sample
//! line; histograms are exposed as summaries — `{quantile="…"}`
//! samples plus `_sum` and `_count` — because the log-linear buckets
//! already give calibrated quantiles and a summary keeps the output
//! compact. `# TYPE` headers are emitted once per family, so labeled
//! series from a [`HistogramVec`](crate::HistogramVec) group cleanly.

use crate::hist::HistSnapshot;
use std::collections::HashSet;
use std::fmt::Write;

/// Accumulates one exposition document.
#[derive(Default)]
pub struct PromWriter {
    out: String,
    typed: HashSet<String>,
}

impl PromWriter {
    pub fn new() -> Self {
        Self::default()
    }

    fn type_line(&mut self, name: &str, kind: &str) {
        if self.typed.insert(name.to_string()) {
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    pub fn counter(&mut self, name: &str, value: u64) {
        self.type_line(name, "counter");
        let _ = writeln!(self.out, "{name} {value}");
    }

    pub fn counter_labeled(&mut self, name: &str, label: &str, label_value: &str, value: u64) {
        self.type_line(name, "counter");
        let _ = writeln!(
            self.out,
            "{name}{{{label}=\"{}\"}} {value}",
            escape_label(label_value)
        );
    }

    pub fn gauge(&mut self, name: &str, value: u64) {
        self.type_line(name, "gauge");
        let _ = writeln!(self.out, "{name} {value}");
    }

    pub fn gauge_labeled(&mut self, name: &str, label: &str, label_value: &str, value: u64) {
        self.type_line(name, "gauge");
        let _ = writeln!(
            self.out,
            "{name}{{{label}=\"{}\"}} {value}",
            escape_label(label_value)
        );
    }

    /// A histogram snapshot as a summary family: p50/p90/p99 quantile
    /// samples plus `_sum`/`_count`.
    pub fn summary(&mut self, name: &str, snap: &HistSnapshot) {
        self.summary_inner(name, "", snap);
    }

    /// Same, with one extra label pair on every sample (for
    /// per-destination families).
    pub fn summary_labeled(
        &mut self,
        name: &str,
        label: &str,
        label_value: &str,
        snap: &HistSnapshot,
    ) {
        let extra = format!("{label}=\"{}\",", escape_label(label_value));
        self.summary_inner(name, &extra, snap);
    }

    fn summary_inner(&mut self, name: &str, extra: &str, snap: &HistSnapshot) {
        self.type_line(name, "summary");
        for (q, v) in [("0.5", snap.p50), ("0.9", snap.p90), ("0.99", snap.p99)] {
            let _ = writeln!(self.out, "{name}{{{extra}quantile=\"{q}\"}} {v}");
        }
        let suffix_labels = if extra.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", extra.trim_end_matches(','))
        };
        let _ = writeln!(self.out, "{name}_sum{suffix_labels} {}", snap.sum);
        let _ = writeln!(self.out, "{name}_count{suffix_labels} {}", snap.count);
    }

    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A light validity check for tests and the CI smoke step: every
/// non-comment line must be `name[{labels}] value` with a parseable
/// numeric value, and every sample's family must have a preceding
/// `# TYPE` line. Returns the set of family names seen.
pub fn validate_exposition(text: &str) -> Result<Vec<String>, String> {
    let mut families: Vec<String> = Vec::new();
    let mut typed: HashSet<String> = HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| format!("line {}: TYPE without name", lineno + 1))?;
            let kind = it
                .next()
                .ok_or_else(|| format!("line {}: TYPE without kind", lineno + 1))?;
            if !matches!(kind, "counter" | "gauge" | "summary" | "histogram") {
                return Err(format!("line {}: unknown TYPE kind `{kind}`", lineno + 1));
            }
            typed.insert(name.to_string());
            families.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: `{line}`", lineno + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("line {}: non-numeric value `{value}`", lineno + 1))?;
        let name = series.split('{').next().unwrap_or(series);
        let family = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(*f))
            .unwrap_or(name);
        if !typed.contains(family) {
            return Err(format!(
                "line {}: sample `{name}` has no # TYPE header",
                lineno + 1
            ));
        }
    }
    Ok(families)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn counters_and_gauges_format() {
        let mut w = PromWriter::new();
        w.counter("xrpc_net_roundtrips_total", 5);
        w.gauge("xrpc_pool_occupancy", 3);
        w.counter_labeled("xrpc_retries_total", "dest", "http://a:1/x", 2);
        w.counter_labeled("xrpc_retries_total", "dest", "b\"c", 1);
        let out = w.finish();
        assert!(
            out.contains("# TYPE xrpc_net_roundtrips_total counter\nxrpc_net_roundtrips_total 5\n")
        );
        assert!(out.contains("xrpc_retries_total{dest=\"http://a:1/x\"} 2"));
        assert!(out.contains("xrpc_retries_total{dest=\"b\\\"c\"} 1"));
        // one TYPE line for the two labeled samples
        assert_eq!(out.matches("# TYPE xrpc_retries_total").count(), 1);
        validate_exposition(&out).unwrap();
    }

    #[test]
    fn summary_format_round_trips_validator() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let mut w = PromWriter::new();
        w.summary("xrpc_call_latency_micros", &h.snapshot());
        w.summary_labeled("xrpc_dest_latency_micros", "dest", "peer-a", &h.snapshot());
        let out = w.finish();
        assert!(out.contains("xrpc_call_latency_micros{quantile=\"0.5\"}"));
        assert!(out.contains("xrpc_call_latency_micros_sum 5050"));
        assert!(out.contains("xrpc_call_latency_micros_count 100"));
        assert!(out.contains("xrpc_dest_latency_micros{dest=\"peer-a\",quantile=\"0.99\"}"));
        assert!(out.contains("xrpc_dest_latency_micros_sum{dest=\"peer-a\"} 5050"));
        let families = validate_exposition(&out).unwrap();
        assert!(families.contains(&"xrpc_call_latency_micros".to_string()));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_exposition("no_type_header 3").is_err());
        assert!(validate_exposition("# TYPE x counter\nx banana").is_err());
        assert!(validate_exposition("# TYPE x frobnicator\nx 1").is_err());
        validate_exposition("# TYPE ok counter\nok 1\n\n# comment\n").unwrap();
    }
}
