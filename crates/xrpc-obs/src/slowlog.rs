//! Always-on slow-query log: queries whose total latency exceeds a
//! configurable threshold are appended as JSON-lines to a bounded,
//! rotating in-memory store, surfaced via `GET /slowlog`.
//!
//! The request path never blocks on the log: entries go through a
//! best-effort bounded channel (`try_send`); when the writer falls behind,
//! entries are dropped and counted (`dropped_total`). Retention is
//! size-capped segments with rotate-and-drop-oldest, so a flood of slow
//! queries can never grow the store without bound.

use crate::profile::{json_escape, Phases};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

/// Tuning knobs for the slow-query log.
#[derive(Clone, Debug)]
pub struct SlowLogConfig {
    /// Queries at or above this total latency are logged.
    pub threshold_millis: u64,
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: usize,
    /// Retained segments (including the active one); oldest is dropped.
    pub max_segments: usize,
    /// Bounded channel depth between the request path and the writer.
    pub queue_depth: usize,
}

impl Default for SlowLogConfig {
    fn default() -> Self {
        SlowLogConfig {
            threshold_millis: 250,
            segment_bytes: 64 * 1024,
            max_segments: 8,
            queue_depth: 256,
        }
    }
}

/// One slow-query record. Query text is stored only as an FNV-1a hash —
/// the log must not leak query contents into an admin surface.
#[derive(Clone, Debug)]
pub struct SlowLogEntry {
    /// Unix epoch milliseconds, stamped by the caller.
    pub ts_millis: u64,
    pub peer: String,
    /// FNV-1a hash of the normalized query text.
    pub query_hash: u64,
    pub trace_id: u128,
    pub total_micros: u64,
    /// Plan-cache disposition: "hit", "miss", or "off".
    pub cache: &'static str,
    /// Which engine ran it ("tree" or "rel").
    pub engine: &'static str,
    pub phases: Phases,
    /// Number of hops in the assembled profile (1 = purely local).
    pub hops: u32,
}

impl SlowLogEntry {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tsMillis\":{},\"peer\":\"{}\",\"queryHash\":\"{:016x}\",\"traceId\":\"{:032x}\",\"totalMicros\":{},\"cache\":\"{}\",\"engine\":\"{}\",\"hops\":{},\"phases\":{{\"parseMicros\":{},\"compileMicros\":{},\"marshalMicros\":{},\"networkMicros\":{},\"executeMicros\":{},\"serializeMicros\":{},\"twopcMicros\":{},\"walMicros\":{}}}}}",
            self.ts_millis,
            json_escape(&self.peer),
            self.query_hash,
            self.trace_id,
            self.total_micros,
            json_escape(self.cache),
            json_escape(self.engine),
            self.hops,
            self.phases.parse_micros,
            self.phases.compile_micros,
            self.phases.marshal_micros,
            self.phases.network_micros,
            self.phases.execute_micros,
            self.phases.serialize_micros,
            self.phases.twopc_micros,
            self.phases.wal_micros,
        )
    }
}

#[derive(Default)]
struct Segment {
    lines: Vec<String>,
    bytes: usize,
}

struct Store {
    /// Sealed segments, oldest first, plus the active segment at the back.
    segments: VecDeque<Segment>,
    segment_bytes: usize,
    max_segments: usize,
}

impl Store {
    fn append(&mut self, line: String) {
        let active = self.segments.back_mut().expect("active segment");
        active.bytes += line.len() + 1;
        active.lines.push(line);
        if active.bytes >= self.segment_bytes {
            self.segments.push_back(Segment::default());
            while self.segments.len() > self.max_segments {
                self.segments.pop_front();
            }
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        for seg in &self.segments {
            for line in &seg.lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

/// The slow-query log handle held by the peer. Cloning is cheap; the
/// writer thread exits when the last sender is dropped.
pub struct SlowLog {
    tx: SyncSender<String>,
    store: Arc<Mutex<Store>>,
    threshold_millis: AtomicU64,
    logged: AtomicU64,
    dropped: AtomicU64,
}

impl SlowLog {
    pub fn new(config: SlowLogConfig) -> Arc<SlowLog> {
        let (tx, rx) = sync_channel::<String>(config.queue_depth.max(1));
        let store = Arc::new(Mutex::new(Store {
            segments: VecDeque::from([Segment::default()]),
            segment_bytes: config.segment_bytes.max(1),
            max_segments: config.max_segments.max(1),
        }));
        let writer_store = store.clone();
        std::thread::Builder::new()
            .name("xrpc-slowlog".into())
            .spawn(move || {
                while let Ok(line) = rx.recv() {
                    writer_store.lock().unwrap().append(line);
                }
            })
            .expect("spawn slowlog writer");
        Arc::new(SlowLog {
            tx,
            store,
            threshold_millis: AtomicU64::new(config.threshold_millis),
            logged: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        })
    }

    pub fn threshold_millis(&self) -> u64 {
        self.threshold_millis.load(Ordering::Relaxed)
    }

    pub fn set_threshold_millis(&self, millis: u64) {
        self.threshold_millis.store(millis, Ordering::Relaxed);
    }

    /// Should a query of this latency be logged?
    pub fn is_slow(&self, total_micros: u64) -> bool {
        total_micros / 1000 >= self.threshold_millis()
    }

    /// Best-effort, never-blocking record. Serializes on the caller (cheap
    /// string formatting, no locks) and hands the line to the writer.
    pub fn record(&self, entry: &SlowLogEntry) {
        match self.tx.try_send(entry.to_json()) {
            Ok(()) => {
                self.logged.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Render the retained entries as JSON-lines, oldest first.
    pub fn render(&self) -> String {
        self.store.lock().unwrap().render()
    }

    pub fn entries_logged(&self) -> u64 {
        self.logged.load(Ordering::Relaxed)
    }

    pub fn entries_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(hash: u64, micros: u64) -> SlowLogEntry {
        SlowLogEntry {
            ts_millis: 1,
            peer: "http://p/".into(),
            query_hash: hash,
            trace_id: 42,
            total_micros: micros,
            cache: "hit",
            engine: "tree",
            phases: Phases::default(),
            hops: 1,
        }
    }

    fn drain(log: &SlowLog, want_lines: usize) -> String {
        // The writer thread is asynchronous; wait for it to catch up.
        for _ in 0..500 {
            let r = log.render();
            if r.lines().count() >= want_lines {
                return r;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        log.render()
    }

    #[test]
    fn records_and_renders_json_lines() {
        let log = SlowLog::new(SlowLogConfig::default());
        log.record(&entry(0xdead, 300_000));
        let r = drain(&log, 1);
        assert_eq!(r.lines().count(), 1);
        assert!(r.contains("\"queryHash\":\"000000000000dead\""));
        assert!(r.contains("\"totalMicros\":300000"));
        assert_eq!(log.entries_logged(), 1);
        assert_eq!(log.entries_dropped(), 0);
    }

    #[test]
    fn threshold_gates() {
        let log = SlowLog::new(SlowLogConfig {
            threshold_millis: 100,
            ..SlowLogConfig::default()
        });
        assert!(!log.is_slow(99_000));
        assert!(log.is_slow(100_000));
        log.set_threshold_millis(1);
        assert!(log.is_slow(1_000));
    }

    #[test]
    fn rotation_drops_oldest() {
        let log = SlowLog::new(SlowLogConfig {
            threshold_millis: 0,
            segment_bytes: 512,
            max_segments: 2,
            queue_depth: 1024,
        });
        for i in 0..200 {
            log.record(&entry(i, 1_000));
        }
        // All 200 fit in the queue, but retention is 2 segments of ~512
        // bytes — far fewer than 200 entries (each ~250 bytes) survive.
        let r = drain(&log, 2);
        let n = r.lines().count();
        assert!(n >= 2, "retained at least one sealed segment: {n}");
        assert!(n <= 10, "rotation bounded the store: {n} lines");
        // The newest entries are the survivors.
        assert!(r.contains(&format!("\"queryHash\":\"{:016x}\"", 199)));
        assert!(!r.contains(&format!("\"queryHash\":\"{:016x}\"", 0u64)));
    }

    #[test]
    fn never_blocks_when_queue_full() {
        // Stall the writer by holding the store lock, then flood a
        // depth-1 queue: record() must return immediately every time,
        // counting drops instead of blocking the request path.
        let log = SlowLog::new(SlowLogConfig {
            queue_depth: 1,
            ..SlowLogConfig::default()
        });
        {
            let _stall = log.store.lock().unwrap();
            for i in 0..10 {
                log.record(&entry(i, 500_000));
            }
        }
        assert_eq!(log.entries_logged() + log.entries_dropped(), 10);
        // Writer could take at most one in-flight line plus one queued.
        assert!(
            log.entries_dropped() >= 7,
            "dropped {}",
            log.entries_dropped()
        );
    }
}
