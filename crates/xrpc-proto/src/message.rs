//! SOAP XRPC envelopes: request / response / fault (paper §2.1), the
//! `queryID` isolation extension (§2.2), Bulk RPC multi-call requests
//! (§3.2) and the participating-peers piggyback (§2.3).

use crate::marshal::{s2n_into, s2n_text_into};
use xdm::{Sequence, XdmError, XdmResult};
use xmldom::escape::push_escaped_attr;
use xmldom::qname::{NS_SOAP_ENV, NS_XRPC, NS_XS, NS_XSI};
use xmldom::{Document, NodeId, QName};
pub use xrpc_obs::TraceContext;
pub use xrpc_obs::{HopProfile, OpNode, Phases, ProfileMode};

fn xrpc(local: &str) -> QName {
    QName::ns("xrpc", NS_XRPC, local)
}

/// Cheap size estimate of one serialized `<xrpc:sequence>`: wrapper tags
/// plus per-item content sized from stored string lengths (node subtrees
/// via [`Document::subtree_wire_estimate`]). Used to pre-reserve the
/// output buffer so serializing a multi-MiB message does not grow it
/// through a dozen reallocations.
fn estimate_sequence_size(seq: &Sequence) -> usize {
    use xdm::{AtomicValue, Item};
    let mut n = 40;
    for item in seq.iter() {
        n += match item {
            Item::Atomic(a) => {
                64 + match a {
                    AtomicValue::String(s)
                    | AtomicValue::UntypedAtomic(s)
                    | AtomicValue::AnyUri(s) => s.len(),
                    _ => 24,
                }
            }
            Item::Node(h) => 32 + h.doc.subtree_wire_estimate(h.id),
        };
    }
    n
}

fn envq(local: &str) -> QName {
    QName::ns("env", NS_SOAP_ENV, local)
}

/// The repeatable-read isolation tag (paper §2.2, "SOAP XRPC Extension:
/// Isolation"): origin host, origin UTC timestamp (used only to prune the
/// expired-ID table per host) and a *relative* timeout in seconds.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryId {
    pub host: String,
    pub timestamp_millis: u64,
    pub timeout_secs: u32,
}

impl QueryId {
    pub fn new(host: impl Into<String>, timestamp_millis: u64, timeout_secs: u32) -> Self {
        QueryId {
            host: host.into(),
            timestamp_millis,
            timeout_secs,
        }
    }
}

/// The profiling opt-in carried in the request envelope header
/// (`<xrpc:profile mode="" via="" depth=""/>`): the receiving peer runs
/// the call under a `ProfileCollector` at the requested sampling tier and
/// returns its hop profile in the response header. `via` is the calling
/// peer's identity and `depth` the receiving hop's position in the call
/// chain (originator = 0), which is how the originator links the hops
/// back into one tree. Observability only — never affects semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileRequest {
    pub mode: ProfileMode,
    pub via: String,
    pub depth: u32,
}

/// An XRPC request: one function, `calls.len()` applications of it —
/// `calls.len() > 1` *is* Bulk RPC.
#[derive(Clone, Debug)]
pub struct XrpcRequest {
    pub module: String,
    pub method: String,
    pub arity: usize,
    pub location: Option<String>,
    pub query_id: Option<QueryId>,
    /// Marks a call to an XQUF updating function whose pending update list
    /// must be deferred until 2PC commit (rule R'Fu) rather than applied
    /// immediately (rule RFu).
    pub deferred: bool,
    /// Client-assigned per-query sequence number. Distinguishes two
    /// legitimately identical dispatches from a transport-level redelivery
    /// of one dispatch (same seq, byte-identical message) — the peer's
    /// at-most-once ∆-merge for deferred updates relies on this.
    pub seq: Option<u64>,
    /// Opt into the call-by-fragment extension (paper footnote 4): node
    /// parameters that are descendants of an earlier node parameter are
    /// sent as `<xrpc:nodeid>` references, preserving ancestor/descendant
    /// relationships at the callee and compressing the message.
    pub call_by_fragment: bool,
    /// Distributed-trace context carried in the SOAP envelope header
    /// (`<env:Header><xrpc:trace/></env:Header>`): the receiving peer
    /// continues this trace, so nested `execute at` hops share one
    /// trace id. Observability only — absent on the wire when `None`,
    /// and never affects execution semantics.
    pub trace: Option<TraceContext>,
    /// Remaining wall-clock budget of the originating query, in
    /// milliseconds, carried as `<xrpc:budget remainingMillis=""/>` in the
    /// SOAP envelope header. The sender stamps the budget *left* at send
    /// time, so every nested `execute at` hop inherits a strictly smaller
    /// deadline; a receiver seeing `0` rejects without evaluating. Absent
    /// (`None`) means no deadline — `xrpc:timeout "0"`.
    pub budget_millis: Option<u64>,
    /// Ask the receiving peer to profile this call and return its hop
    /// profile in the response header. Absent on the wire when `None`.
    pub profile: Option<ProfileRequest>,
    pub calls: Vec<Vec<Sequence>>,
}

impl XrpcRequest {
    pub fn new(module: impl Into<String>, method: impl Into<String>, arity: usize) -> Self {
        XrpcRequest {
            module: module.into(),
            method: method.into(),
            arity,
            location: None,
            query_id: None,
            deferred: false,
            seq: None,
            call_by_fragment: false,
            trace: None,
            budget_millis: None,
            profile: None,
            calls: Vec::new(),
        }
    }

    pub fn with_location(mut self, location: impl Into<String>) -> Self {
        self.location = Some(location.into());
        self
    }

    pub fn with_query_id(mut self, qid: QueryId) -> Self {
        self.query_id = Some(qid);
        self
    }

    pub fn push_call(&mut self, params: Vec<Sequence>) {
        debug_assert_eq!(params.len(), self.arity);
        self.calls.push(params);
    }

    /// Serialize to the SOAP envelope text.
    ///
    /// Node parameters are serialized straight from their source documents
    /// into the message buffer (single copy); the call-by-fragment extension
    /// still goes through the message-DOM path because `xrpc:nodeid`
    /// compression needs the cross-parameter analysis in `s2n_call_into`.
    pub fn to_xml(&self) -> XdmResult<String> {
        if self.call_by_fragment {
            return self.to_xml_dom();
        }
        let mut out = String::with_capacity(1024);
        self.write_xml(&mut out)?;
        Ok(out)
    }

    /// Cheap estimate of the serialized envelope size, for pre-reserving
    /// the output buffer (e.g. one taken from a transport buffer pool).
    pub fn estimated_wire_size(&self) -> usize {
        let mut n = 512;
        for params in &self.calls {
            n += 24;
            for p in params {
                n += estimate_sequence_size(p);
            }
        }
        n
    }

    /// Direct text serialization into a caller-supplied (reusable) buffer.
    pub fn write_xml(&self, out: &mut String) -> XdmResult<()> {
        debug_assert!(!self.call_by_fragment);
        out.reserve(self.estimated_wire_size());
        write_envelope_open(
            out,
            self.trace.as_ref(),
            self.budget_millis,
            self.profile.as_ref(),
            &[],
        );
        out.push_str("<xrpc:request module=\"");
        push_escaped_attr(out, &self.module);
        out.push_str("\" method=\"");
        push_escaped_attr(out, &self.method);
        out.push_str("\" arity=\"");
        out.push_str(&self.arity.to_string());
        out.push('"');
        if let Some(loc) = &self.location {
            out.push_str(" location=\"");
            push_escaped_attr(out, loc);
            out.push('"');
        }
        if self.deferred {
            out.push_str(" updCall=\"deferred\"");
        }
        if let Some(seq) = self.seq {
            out.push_str(" seq=\"");
            out.push_str(&seq.to_string());
            out.push('"');
        }
        if self.query_id.is_none() && self.calls.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            if let Some(qid) = &self.query_id {
                out.push_str("<xrpc:queryID host=\"");
                push_escaped_attr(out, &qid.host);
                out.push_str("\" timestamp=\"");
                out.push_str(&qid.timestamp_millis.to_string());
                out.push_str("\" timeout=\"");
                out.push_str(&qid.timeout_secs.to_string());
                out.push_str("\"/>");
            }
            for params in &self.calls {
                if params.is_empty() {
                    out.push_str("<xrpc:call/>");
                } else {
                    out.push_str("<xrpc:call>");
                    for p in params {
                        s2n_text_into(out, p)?;
                    }
                    out.push_str("</xrpc:call>");
                }
            }
            out.push_str("</xrpc:request>");
        }
        write_envelope_close(out);
        Ok(())
    }

    /// Reference implementation: build the message as a DOM and serialize
    /// it. Byte-identical to [`XrpcRequest::write_xml`] (asserted by the
    /// equivalence suite); kept as the call-by-fragment path and as the
    /// golden oracle for tests.
    pub fn to_xml_dom(&self) -> XdmResult<String> {
        let mut doc = Document::new();
        let root = doc.root();
        let envelope = start_envelope(&mut doc, root);
        append_envelope_header(
            &mut doc,
            envelope,
            self.trace.as_ref(),
            self.budget_millis,
            self.profile.as_ref(),
            &[],
        );
        let body = doc.create_element(envq("Body"));
        doc.append_child(envelope, body);

        let req = doc.create_element(xrpc("request"));
        doc.set_attribute(req, QName::local("module"), &self.module);
        doc.set_attribute(req, QName::local("method"), &self.method);
        doc.set_attribute(req, QName::local("arity"), self.arity.to_string());
        if let Some(loc) = &self.location {
            doc.set_attribute(req, QName::local("location"), loc);
        }
        if self.deferred {
            doc.set_attribute(req, QName::local("updCall"), "deferred");
        }
        if let Some(seq) = self.seq {
            doc.set_attribute(req, QName::local("seq"), seq.to_string());
        }
        doc.append_child(body, req);

        if let Some(qid) = &self.query_id {
            let q = doc.create_element(xrpc("queryID"));
            doc.set_attribute(q, QName::local("host"), &qid.host);
            doc.set_attribute(
                q,
                QName::local("timestamp"),
                qid.timestamp_millis.to_string(),
            );
            doc.set_attribute(q, QName::local("timeout"), qid.timeout_secs.to_string());
            doc.append_child(req, q);
        }

        for params in &self.calls {
            let call = doc.create_element(xrpc("call"));
            doc.append_child(req, call);
            if self.call_by_fragment {
                crate::marshal::s2n_call_into(&mut doc, call, params)?;
            } else {
                for p in params {
                    s2n_into(&mut doc, call, p)?;
                }
            }
        }
        Ok(serialize(&doc))
    }
}

/// An XRPC response: one result sequence per call of the request, plus the
/// piggybacked list of peers that (transitively) participated — the
/// originator needs it to drive 2PC registration (§2.3).
#[derive(Clone, Debug)]
pub struct XrpcResponse {
    pub module: String,
    pub method: String,
    pub results: Vec<Sequence>,
    pub participating_peers: Vec<String>,
    /// Hop profiles piggybacked in the response envelope header
    /// (`<env:Header><xrpc:profile>`): the responding peer's own hop
    /// first, then every downstream hop it harvested — so a nested
    /// `execute at` chain accumulates all hops on the way back to the
    /// originator. Empty unless the request asked for profiling.
    pub profile_hops: Vec<HopProfile>,
}

impl XrpcResponse {
    pub fn new(module: impl Into<String>, method: impl Into<String>) -> Self {
        XrpcResponse {
            module: module.into(),
            method: method.into(),
            results: Vec::new(),
            participating_peers: Vec::new(),
            profile_hops: Vec::new(),
        }
    }

    /// Serialize to the SOAP envelope text (direct single-copy writer).
    pub fn to_xml(&self) -> XdmResult<String> {
        let mut out = String::with_capacity(1024);
        self.write_xml(&mut out)?;
        Ok(out)
    }

    /// Cheap estimate of the serialized envelope size, for pre-reserving
    /// the output buffer (e.g. one taken from a transport buffer pool).
    pub fn estimated_wire_size(&self) -> usize {
        let mut n = 512 + 64 * self.participating_peers.len() + 512 * self.profile_hops.len();
        for seq in &self.results {
            n += estimate_sequence_size(seq);
        }
        n
    }

    /// Direct text serialization into a caller-supplied (reusable) buffer.
    pub fn write_xml(&self, out: &mut String) -> XdmResult<()> {
        out.reserve(self.estimated_wire_size());
        write_envelope_open(out, None, None, None, &self.profile_hops);
        out.push_str("<xrpc:response module=\"");
        push_escaped_attr(out, &self.module);
        out.push_str("\" method=\"");
        push_escaped_attr(out, &self.method);
        out.push('"');
        if self.participating_peers.is_empty() && self.results.is_empty() {
            out.push_str("/>");
        } else {
            out.push('>');
            if !self.participating_peers.is_empty() {
                out.push_str("<xrpc:participatingPeers>");
                for p in &self.participating_peers {
                    out.push_str("<xrpc:peer uri=\"");
                    push_escaped_attr(out, p);
                    out.push_str("\"/>");
                }
                out.push_str("</xrpc:participatingPeers>");
            }
            for seq in &self.results {
                s2n_text_into(out, seq)?;
            }
            out.push_str("</xrpc:response>");
        }
        write_envelope_close(out);
        Ok(())
    }

    /// Reference implementation (message DOM + serializer); golden oracle
    /// for the equivalence suite.
    pub fn to_xml_dom(&self) -> XdmResult<String> {
        let mut doc = Document::new();
        let root = doc.root();
        let envelope = start_envelope(&mut doc, root);
        append_envelope_header(&mut doc, envelope, None, None, None, &self.profile_hops);
        let body = doc.create_element(envq("Body"));
        doc.append_child(envelope, body);

        let resp = doc.create_element(xrpc("response"));
        doc.set_attribute(resp, QName::local("module"), &self.module);
        doc.set_attribute(resp, QName::local("method"), &self.method);
        doc.append_child(body, resp);

        if !self.participating_peers.is_empty() {
            let peers = doc.create_element(xrpc("participatingPeers"));
            doc.append_child(resp, peers);
            for p in &self.participating_peers {
                let pe = doc.create_element(xrpc("peer"));
                doc.set_attribute(pe, QName::local("uri"), p);
                doc.append_child(peers, pe);
            }
        }

        for seq in &self.results {
            s2n_into(&mut doc, resp, seq)?;
        }
        Ok(serialize(&doc))
    }
}

/// SOAP Fault code: who is at fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCode {
    Sender,
    Receiver,
}

/// An XRPC error message (SOAP Fault). "Any error will cause a run-time
/// error at the site that originated the query" (§2.1).
#[derive(Clone, Debug)]
pub struct XrpcFault {
    pub code: FaultCode,
    pub reason: String,
    /// Machine-readable XQuery error code (vendor extension carried in the
    /// reason text's prefix on the wire).
    pub error_code: Option<String>,
}

impl XrpcFault {
    pub fn from_error(e: &XdmError) -> Self {
        XrpcFault {
            code: FaultCode::Sender,
            reason: e.message.clone(),
            error_code: Some(e.code.clone()),
        }
    }

    pub fn to_error(&self) -> XdmError {
        XdmError::new(
            self.error_code.as_deref().unwrap_or("XRPC0001"),
            format!("remote fault: {}", self.reason),
        )
    }

    pub fn to_xml(&self) -> String {
        let mut doc = Document::new();
        let root = doc.root();
        let envelope = start_envelope(&mut doc, root);
        let body = doc.create_element(envq("Body"));
        doc.append_child(envelope, body);
        let fault = doc.create_element(envq("Fault"));
        doc.append_child(body, fault);
        let code = doc.create_element(envq("Code"));
        doc.append_child(fault, code);
        let value = doc.create_element(envq("Value"));
        let v = doc.create_text(match self.code {
            FaultCode::Sender => "env:Sender",
            FaultCode::Receiver => "env:Receiver",
        });
        doc.append_child(value, v);
        doc.append_child(code, value);
        let reason = doc.create_element(envq("Reason"));
        doc.append_child(fault, reason);
        let text = doc.create_element(envq("Text"));
        doc.set_attribute(text, QName::ns("xml", xmldom::qname::NS_XML, "lang"), "en");
        let body_text = match &self.error_code {
            Some(c) => format!("[{c}] {}", self.reason),
            None => self.reason.clone(),
        };
        let t = doc.create_text(body_text);
        doc.append_child(text, t);
        doc.append_child(reason, text);
        serialize(&doc)
    }
}

/// Any parsed XRPC message.
#[derive(Clone, Debug)]
pub enum XrpcMessage {
    Request(XrpcRequest),
    Response(XrpcResponse),
    Fault(XrpcFault),
}

/// Parse a SOAP XRPC message (request, response or fault).
pub fn parse_message(xml: &str) -> XdmResult<XrpcMessage> {
    let doc = xmldom::parse(xml).map_err(|e| XdmError::xrpc(format!("bad SOAP XML: {e}")))?;
    let envelope = doc
        .child_elements(doc.root())
        .into_iter()
        .find(|&e| has_name(&doc, e, NS_SOAP_ENV, "Envelope"))
        .ok_or_else(|| XdmError::xrpc("missing env:Envelope"))?;
    let body = doc
        .child_element(envelope, &envq("Body"))
        .ok_or_else(|| XdmError::xrpc("missing env:Body"))?;
    let trace = parse_trace_header(&doc, envelope);
    let budget = parse_budget_header(&doc, envelope);

    if let Some(req) = doc.child_element(body, &xrpc("request")) {
        let profile = parse_profile_request_header(&doc, envelope);
        return parse_request(doc, req, trace, budget, profile).map(XrpcMessage::Request);
    }
    if let Some(resp) = doc.child_element(body, &xrpc("response")) {
        let hops = parse_profile_hops_header(&doc, envelope);
        return parse_response(doc, resp, hops).map(XrpcMessage::Response);
    }
    if let Some(fault) = doc.child_element(body, &envq("Fault")) {
        return parse_fault(&doc, fault).map(XrpcMessage::Fault);
    }
    Err(XdmError::xrpc(
        "env:Body carries neither xrpc:request, xrpc:response nor env:Fault",
    ))
}

/// Decoding takes the message document by value: node parameters are
/// *detached in place* (no deep copy) and the whole arena is then frozen
/// behind one `Arc` that every decoded fragment shares.
fn parse_request(
    mut doc: Document,
    req: NodeId,
    trace: Option<TraceContext>,
    budget_millis: Option<u64>,
    profile: Option<ProfileRequest>,
) -> XdmResult<XrpcRequest> {
    let module = req_attr(&doc, req, "module")?;
    let method = req_attr(&doc, req, "method")?;
    let arity: usize = req_attr(&doc, req, "arity")?
        .parse()
        .map_err(|_| XdmError::xrpc("bad arity attribute"))?;
    let location = doc.attr_local(req, "location").map(|s| s.to_string());
    let deferred = doc.attr_local(req, "updCall") == Some("deferred");
    let seq = doc.attr_local(req, "seq").and_then(|s| s.parse().ok());
    let mut out = XrpcRequest {
        module,
        method,
        arity,
        location,
        query_id: None,
        deferred,
        seq,
        call_by_fragment: false,
        trace,
        budget_millis,
        profile,
        calls: Vec::new(),
    };
    if let Some(q) = doc.child_element(req, &xrpc("queryID")) {
        out.query_id = Some(QueryId {
            host: req_attr(&doc, q, "host")?,
            timestamp_millis: req_attr(&doc, q, "timestamp")?
                .parse()
                .map_err(|_| XdmError::xrpc("bad queryID timestamp"))?,
            timeout_secs: req_attr(&doc, q, "timeout")?
                .parse()
                .map_err(|_| XdmError::xrpc("bad queryID timeout"))?,
        });
    }
    // Phase 1: decode every call with in-place detach (arena stays mutable).
    let mut pending: Vec<Vec<crate::marshal::PendingSequence>> = Vec::new();
    for call in doc.child_elements(req) {
        if !has_name(&doc, call, NS_XRPC, "call") {
            continue;
        }
        // call-level decoding resolves xrpc:nodeid references transparently
        let params = crate::marshal::n2s_call_detach(&mut doc, call)?;
        if params.len() != out.arity {
            return Err(XdmError::xrpc(format!(
                "call has {} parameters, request arity is {}",
                params.len(),
                out.arity
            )));
        }
        pending.push(params);
    }
    // Phase 2: freeze the arena; all fragments share this one allocation.
    let arc = std::sync::Arc::new(doc);
    out.calls = pending
        .into_iter()
        .map(|call| call.into_iter().map(|ps| ps.finish(&arc)).collect())
        .collect();
    Ok(out)
}

fn parse_response(
    mut doc: Document,
    resp: NodeId,
    profile_hops: Vec<HopProfile>,
) -> XdmResult<XrpcResponse> {
    let module = req_attr(&doc, resp, "module")?;
    let method = req_attr(&doc, resp, "method")?;
    let mut out = XrpcResponse::new(module, method);
    out.profile_hops = profile_hops;
    let mut pending: Vec<crate::marshal::PendingSequence> = Vec::new();
    for child in doc.child_elements(resp) {
        if has_name(&doc, child, NS_XRPC, "sequence") {
            pending.push(crate::marshal::n2s_detach(&mut doc, child)?);
        } else if has_name(&doc, child, NS_XRPC, "participatingPeers") {
            for p in doc.child_elements(child) {
                if let Some(uri) = doc.attr_local(p, "uri") {
                    out.participating_peers.push(uri.to_string());
                }
            }
        }
    }
    let arc = std::sync::Arc::new(doc);
    out.results = pending.into_iter().map(|ps| ps.finish(&arc)).collect();
    Ok(out)
}

fn parse_fault(doc: &Document, fault: NodeId) -> XdmResult<XrpcFault> {
    let code = doc
        .child_element(fault, &envq("Code"))
        .and_then(|c| doc.child_element(c, &envq("Value")))
        .map(|v| doc.string_value(v))
        .unwrap_or_default();
    let reason = doc
        .child_element(fault, &envq("Reason"))
        .and_then(|r| doc.child_element(r, &envq("Text")))
        .map(|t| doc.string_value(t))
        .unwrap_or_else(|| "unknown fault".to_string());
    // pull a leading `[CODE] ` error-code prefix back out
    let (error_code, reason) = match reason.strip_prefix('[') {
        Some(rest) => match rest.split_once("] ") {
            Some((c, r)) => (Some(c.to_string()), r.to_string()),
            None => (None, reason),
        },
        None => (None, reason),
    };
    Ok(XrpcFault {
        code: if code.contains("Receiver") {
            FaultCode::Receiver
        } else {
            FaultCode::Sender
        },
        reason,
        error_code,
    })
}

fn req_attr(doc: &Document, el: NodeId, name: &str) -> XdmResult<String> {
    doc.attr_local(el, name)
        .map(|s| s.to_string())
        .ok_or_else(|| XdmError::xrpc(format!("missing `{name}` attribute")))
}

fn has_name(doc: &Document, el: NodeId, uri: &str, local: &str) -> bool {
    doc.node(el).name.as_ref().is_some_and(|n| n.is(uri, local))
}

/// Text-path twin of [`start_envelope`]: XML declaration plus the open
/// `env:Envelope` tag, the optional header (trace, then budget, inside a
/// single `env:Header`), and the open `env:Body` tag, byte-identical to
/// serializing the DOM the builder produces (same declaration order, same
/// attributes).
fn write_envelope_open(
    out: &mut String,
    trace: Option<&TraceContext>,
    budget_millis: Option<u64>,
    profile_req: Option<&ProfileRequest>,
    profile_hops: &[HopProfile],
) {
    out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>");
    out.push_str("<env:Envelope xmlns:xrpc=\"");
    push_escaped_attr(out, NS_XRPC);
    out.push_str("\" xmlns:env=\"");
    push_escaped_attr(out, NS_SOAP_ENV);
    out.push_str("\" xmlns:xs=\"");
    push_escaped_attr(out, NS_XS);
    out.push_str("\" xmlns:xsi=\"");
    push_escaped_attr(out, NS_XSI);
    out.push_str("\" xsi:schemaLocation=\"");
    push_escaped_attr(out, &format!("{NS_XRPC} {NS_XRPC}/XRPC.xsd"));
    out.push_str("\">");
    if trace.is_some()
        || budget_millis.is_some()
        || profile_req.is_some()
        || !profile_hops.is_empty()
    {
        out.push_str("<env:Header>");
        if let Some(t) = trace {
            out.push_str("<xrpc:trace traceId=\"");
            out.push_str(&format!("{:032x}", t.trace_id));
            out.push_str("\" spanId=\"");
            out.push_str(&format!("{:016x}", t.span_id));
            if let Some(p) = t.parent_id {
                out.push_str("\" parentId=\"");
                out.push_str(&format!("{p:016x}"));
            }
            out.push_str("\"/>");
        }
        if let Some(ms) = budget_millis {
            out.push_str("<xrpc:budget remainingMillis=\"");
            out.push_str(&ms.to_string());
            out.push_str("\"/>");
        }
        if let Some(p) = profile_req {
            out.push_str("<xrpc:profile mode=\"");
            push_escaped_attr(out, p.mode.as_str());
            out.push_str("\" via=\"");
            push_escaped_attr(out, &p.via);
            out.push_str("\" depth=\"");
            out.push_str(&p.depth.to_string());
            out.push_str("\"/>");
        }
        if !profile_hops.is_empty() {
            out.push_str("<xrpc:profile>");
            for h in profile_hops {
                write_hop_text(out, h);
            }
            out.push_str("</xrpc:profile>");
        }
        out.push_str("</env:Header>");
    }
    out.push_str("<env:Body>");
}

fn write_hop_text(out: &mut String, h: &HopProfile) {
    out.push_str("<xrpc:hop peer=\"");
    push_escaped_attr(out, &h.peer);
    out.push_str("\" via=\"");
    push_escaped_attr(out, &h.via);
    out.push_str("\" depth=\"");
    out.push_str(&h.depth.to_string());
    out.push_str("\" traceId=\"");
    out.push_str(&format!("{:032x}", h.trace_id));
    out.push_str("\" spanId=\"");
    out.push_str(&format!("{:016x}", h.span_id));
    out.push_str("\" totalMicros=\"");
    out.push_str(&h.total_micros.to_string());
    out.push_str("\"><xrpc:phases parseMicros=\"");
    out.push_str(&h.phases.parse_micros.to_string());
    out.push_str("\" compileMicros=\"");
    out.push_str(&h.phases.compile_micros.to_string());
    out.push_str("\" marshalMicros=\"");
    out.push_str(&h.phases.marshal_micros.to_string());
    out.push_str("\" networkMicros=\"");
    out.push_str(&h.phases.network_micros.to_string());
    out.push_str("\" executeMicros=\"");
    out.push_str(&h.phases.execute_micros.to_string());
    out.push_str("\" serializeMicros=\"");
    out.push_str(&h.phases.serialize_micros.to_string());
    out.push_str("\" twopcMicros=\"");
    out.push_str(&h.phases.twopc_micros.to_string());
    out.push_str("\" walMicros=\"");
    out.push_str(&h.phases.wal_micros.to_string());
    out.push_str("\" cache=\"");
    push_escaped_attr(out, h.phases.cache);
    out.push_str("\"/>");
    for op in &h.ops {
        write_op_text(out, op);
    }
    out.push_str("</xrpc:hop>");
}

fn write_op_text(out: &mut String, op: &OpNode) {
    out.push_str("<xrpc:op name=\"");
    push_escaped_attr(out, &op.name);
    out.push_str("\" calls=\"");
    out.push_str(&op.calls.to_string());
    out.push_str("\" timedCalls=\"");
    out.push_str(&op.timed_calls.to_string());
    out.push_str("\" wallMicros=\"");
    out.push_str(&op.wall_micros.to_string());
    out.push_str("\" items=\"");
    out.push_str(&op.items.to_string());
    out.push_str("\" bytes=\"");
    out.push_str(&op.bytes.to_string());
    if op.children.is_empty() {
        out.push_str("\"/>");
    } else {
        out.push_str("\">");
        for c in &op.children {
            write_op_text(out, c);
        }
        out.push_str("</xrpc:op>");
    }
}

/// DOM-path twin of the header block in [`write_envelope_open`].
fn append_envelope_header(
    doc: &mut Document,
    envelope: NodeId,
    trace: Option<&TraceContext>,
    budget_millis: Option<u64>,
    profile_req: Option<&ProfileRequest>,
    profile_hops: &[HopProfile],
) {
    if trace.is_none()
        && budget_millis.is_none()
        && profile_req.is_none()
        && profile_hops.is_empty()
    {
        return;
    }
    let header = doc.create_element(envq("Header"));
    doc.append_child(envelope, header);
    if let Some(t) = trace {
        let tr = doc.create_element(xrpc("trace"));
        doc.set_attribute(tr, QName::local("traceId"), format!("{:032x}", t.trace_id));
        doc.set_attribute(tr, QName::local("spanId"), format!("{:016x}", t.span_id));
        if let Some(p) = t.parent_id {
            doc.set_attribute(tr, QName::local("parentId"), format!("{p:016x}"));
        }
        doc.append_child(header, tr);
    }
    if let Some(ms) = budget_millis {
        let b = doc.create_element(xrpc("budget"));
        doc.set_attribute(b, QName::local("remainingMillis"), ms.to_string());
        doc.append_child(header, b);
    }
    if let Some(p) = profile_req {
        let pr = doc.create_element(xrpc("profile"));
        doc.set_attribute(pr, QName::local("mode"), p.mode.as_str());
        doc.set_attribute(pr, QName::local("via"), &p.via);
        doc.set_attribute(pr, QName::local("depth"), p.depth.to_string());
        doc.append_child(header, pr);
    }
    if !profile_hops.is_empty() {
        let pr = doc.create_element(xrpc("profile"));
        doc.append_child(header, pr);
        for h in profile_hops {
            append_hop_dom(doc, pr, h);
        }
    }
}

fn append_hop_dom(doc: &mut Document, parent: NodeId, h: &HopProfile) {
    let hop = doc.create_element(xrpc("hop"));
    doc.set_attribute(hop, QName::local("peer"), &h.peer);
    doc.set_attribute(hop, QName::local("via"), &h.via);
    doc.set_attribute(hop, QName::local("depth"), h.depth.to_string());
    doc.set_attribute(hop, QName::local("traceId"), format!("{:032x}", h.trace_id));
    doc.set_attribute(hop, QName::local("spanId"), format!("{:016x}", h.span_id));
    doc.set_attribute(hop, QName::local("totalMicros"), h.total_micros.to_string());
    doc.append_child(parent, hop);
    let ph = doc.create_element(xrpc("phases"));
    doc.set_attribute(
        ph,
        QName::local("parseMicros"),
        h.phases.parse_micros.to_string(),
    );
    doc.set_attribute(
        ph,
        QName::local("compileMicros"),
        h.phases.compile_micros.to_string(),
    );
    doc.set_attribute(
        ph,
        QName::local("marshalMicros"),
        h.phases.marshal_micros.to_string(),
    );
    doc.set_attribute(
        ph,
        QName::local("networkMicros"),
        h.phases.network_micros.to_string(),
    );
    doc.set_attribute(
        ph,
        QName::local("executeMicros"),
        h.phases.execute_micros.to_string(),
    );
    doc.set_attribute(
        ph,
        QName::local("serializeMicros"),
        h.phases.serialize_micros.to_string(),
    );
    doc.set_attribute(
        ph,
        QName::local("twopcMicros"),
        h.phases.twopc_micros.to_string(),
    );
    doc.set_attribute(
        ph,
        QName::local("walMicros"),
        h.phases.wal_micros.to_string(),
    );
    doc.set_attribute(ph, QName::local("cache"), h.phases.cache);
    doc.append_child(hop, ph);
    for op in &h.ops {
        append_op_dom(doc, hop, op);
    }
}

fn append_op_dom(doc: &mut Document, parent: NodeId, op: &OpNode) {
    let el = doc.create_element(xrpc("op"));
    doc.set_attribute(el, QName::local("name"), &op.name);
    doc.set_attribute(el, QName::local("calls"), op.calls.to_string());
    doc.set_attribute(el, QName::local("timedCalls"), op.timed_calls.to_string());
    doc.set_attribute(el, QName::local("wallMicros"), op.wall_micros.to_string());
    doc.set_attribute(el, QName::local("items"), op.items.to_string());
    doc.set_attribute(el, QName::local("bytes"), op.bytes.to_string());
    doc.append_child(parent, el);
    for c in &op.children {
        append_op_dom(doc, el, c);
    }
}

/// Read the `<xrpc:trace/>` header back off a parsed envelope. A
/// malformed header is ignored rather than failing the message —
/// tracing must never turn a valid call into an error.
fn parse_trace_header(doc: &Document, envelope: NodeId) -> Option<TraceContext> {
    let header = doc.child_element(envelope, &envq("Header"))?;
    let tr = doc.child_element(header, &xrpc("trace"))?;
    let trace_id = u128::from_str_radix(doc.attr_local(tr, "traceId")?, 16).ok()?;
    let span_id = u64::from_str_radix(doc.attr_local(tr, "spanId")?, 16).ok()?;
    let parent_id = doc
        .attr_local(tr, "parentId")
        .and_then(|p| u64::from_str_radix(p, 16).ok());
    Some(TraceContext {
        trace_id,
        span_id,
        parent_id,
    })
}

/// Read the `<xrpc:budget/>` header back off a parsed envelope. Like the
/// trace header, a malformed budget is ignored rather than failing the
/// message — a garbled budget degrades to "no deadline", never to an
/// error the caller did not cause.
fn parse_budget_header(doc: &Document, envelope: NodeId) -> Option<u64> {
    let header = doc.child_element(envelope, &envq("Header"))?;
    let b = doc.child_element(header, &xrpc("budget"))?;
    doc.attr_local(b, "remainingMillis")?.parse().ok()
}

/// Read the request-side `<xrpc:profile mode=""/>` header. Lenient like
/// the other observability headers: malformed or unknown-mode headers
/// degrade to "no profiling", never to an error.
fn parse_profile_request_header(doc: &Document, envelope: NodeId) -> Option<ProfileRequest> {
    let header = doc.child_element(envelope, &envq("Header"))?;
    let p = doc.child_element(header, &xrpc("profile"))?;
    let mode = ProfileMode::parse(doc.attr_local(p, "mode")?);
    if !mode.is_on() {
        return None;
    }
    Some(ProfileRequest {
        mode,
        via: doc.attr_local(p, "via").unwrap_or_default().to_string(),
        depth: doc
            .attr_local(p, "depth")
            .and_then(|d| d.parse().ok())
            .unwrap_or(0),
    })
}

/// Read the response-side `<xrpc:profile>` hop list. Lenient: a hop that
/// fails to parse is skipped — a truncated profile must never fail the
/// call whose results it annotates.
fn parse_profile_hops_header(doc: &Document, envelope: NodeId) -> Vec<HopProfile> {
    let mut hops = Vec::new();
    let Some(header) = doc.child_element(envelope, &envq("Header")) else {
        return hops;
    };
    let Some(p) = doc.child_element(header, &xrpc("profile")) else {
        return hops;
    };
    for hop_el in doc.child_elements(p) {
        if !has_name(doc, hop_el, NS_XRPC, "hop") {
            continue;
        }
        let Some(hop) = parse_hop(doc, hop_el) else {
            continue;
        };
        hops.push(hop);
    }
    hops
}

fn parse_hop(doc: &Document, el: NodeId) -> Option<HopProfile> {
    let peer = doc.attr_local(el, "peer")?.to_string();
    let via = doc.attr_local(el, "via").unwrap_or_default().to_string();
    let depth = doc.attr_local(el, "depth")?.parse().ok()?;
    let trace_id = u128::from_str_radix(doc.attr_local(el, "traceId")?, 16).ok()?;
    let span_id = u64::from_str_radix(doc.attr_local(el, "spanId")?, 16).ok()?;
    let total_micros = doc.attr_local(el, "totalMicros")?.parse().ok()?;
    let mut phases = Phases::default();
    let mut ops = Vec::new();
    for child in doc.child_elements(el) {
        if has_name(doc, child, NS_XRPC, "phases") {
            let num = |name: &str| -> u64 {
                doc.attr_local(child, name)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0)
            };
            phases.parse_micros = num("parseMicros");
            phases.compile_micros = num("compileMicros");
            phases.marshal_micros = num("marshalMicros");
            phases.network_micros = num("networkMicros");
            phases.execute_micros = num("executeMicros");
            phases.serialize_micros = num("serializeMicros");
            phases.twopc_micros = num("twopcMicros");
            phases.wal_micros = num("walMicros");
            phases.cache = match doc.attr_local(child, "cache") {
                Some("hit") => "hit",
                Some("miss") => "miss",
                _ => "off",
            };
        } else if has_name(doc, child, NS_XRPC, "op") {
            if let Some(op) = parse_op(doc, child) {
                ops.push(op);
            }
        }
    }
    Some(HopProfile {
        peer,
        via,
        depth,
        trace_id,
        span_id,
        total_micros,
        phases,
        ops,
    })
}

fn parse_op(doc: &Document, el: NodeId) -> Option<OpNode> {
    let num = |name: &str| -> Option<u64> { doc.attr_local(el, name)?.parse().ok() };
    let mut node = OpNode {
        name: doc.attr_local(el, "name")?.to_string(),
        calls: num("calls")?,
        timed_calls: num("timedCalls")?,
        wall_micros: num("wallMicros")?,
        items: num("items")?,
        bytes: num("bytes")?,
        children: Vec::new(),
    };
    for child in doc.child_elements(el) {
        if has_name(doc, child, NS_XRPC, "op") {
            if let Some(c) = parse_op(doc, child) {
                node.children.push(c);
            }
        }
    }
    Some(node)
}

fn write_envelope_close(out: &mut String) {
    out.push_str("</env:Body></env:Envelope>");
}

/// Open the standard envelope with all namespace declarations the paper's
/// examples carry.
fn start_envelope(doc: &mut Document, root: NodeId) -> NodeId {
    let envelope = doc.create_element(envq("Envelope"));
    doc.node_mut(envelope).ns_decls = vec![
        ("xrpc".into(), NS_XRPC.into()),
        ("env".into(), NS_SOAP_ENV.into()),
        ("xs".into(), NS_XS.into()),
        ("xsi".into(), NS_XSI.into()),
    ];
    doc.set_attribute(
        envelope,
        QName::ns("xsi", NS_XSI, "schemaLocation"),
        format!("{NS_XRPC} {NS_XRPC}/XRPC.xsd"),
    );
    doc.append_child(root, envelope);
    envelope
}

fn serialize(doc: &Document) -> String {
    let opts = xmldom::SerializeOpts {
        xml_decl: true,
        indent: 0,
    };
    xmldom::serialize_document(doc, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::Item;

    fn film_request() -> XrpcRequest {
        let mut req = XrpcRequest::new("films", "filmsByActor", 1)
            .with_location("http://x.example.org/film.xq");
        req.push_call(vec![Sequence::one(Item::string("Sean Connery"))]);
        req
    }

    #[test]
    fn request_roundtrip_matches_paper_shape() {
        let req = film_request();
        let xml = req.to_xml().unwrap();
        assert!(xml.starts_with("<?xml version=\"1.0\" encoding=\"utf-8\"?>"));
        assert!(xml.contains("env:Envelope"));
        assert!(xml.contains(r#"module="films""#));
        assert!(xml.contains(r#"method="filmsByActor""#));
        assert!(xml.contains(r#"arity="1""#));
        assert!(xml.contains(r#"location="http://x.example.org/film.xq""#));
        assert!(xml.contains("xrpc:call"));
        assert!(xml.contains(r#"xsi:type="xs:string""#));
        assert!(xml.contains("Sean Connery"));

        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => {
                assert_eq!(r.module, "films");
                assert_eq!(r.method, "filmsByActor");
                assert_eq!(r.arity, 1);
                assert_eq!(r.location.as_deref(), Some("http://x.example.org/film.xq"));
                assert_eq!(r.calls.len(), 1);
                assert_eq!(r.calls[0][0].items()[0].string_value(), "Sean Connery");
                assert!(r.query_id.is_none());
                assert!(!r.deferred);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bulk_request_two_calls() {
        // the Bulk RPC example of §3.2: two calls of filmsByActor
        let mut req = XrpcRequest::new("films", "filmsByActor", 1);
        req.push_call(vec![Sequence::one(Item::string("Julie Andrews"))]);
        req.push_call(vec![Sequence::one(Item::string("Sean Connery"))]);
        let xml = req.to_xml().unwrap();
        assert_eq!(xml.matches("<xrpc:call>").count(), 2);
        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => {
                assert_eq!(r.calls.len(), 2);
                assert_eq!(r.calls[0][0].items()[0].string_value(), "Julie Andrews");
                assert_eq!(r.calls[1][0].items()[0].string_value(), "Sean Connery");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn query_id_roundtrip() {
        let req = film_request().with_query_id(QueryId::new("x.example.org", 1190000000000, 30));
        let xml = req.to_xml().unwrap();
        assert!(xml.contains("xrpc:queryID"));
        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => {
                let q = r.query_id.unwrap();
                assert_eq!(q.host, "x.example.org");
                assert_eq!(q.timestamp_millis, 1190000000000);
                assert_eq!(q.timeout_secs, 30);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deferred_update_flag_roundtrip() {
        let mut req = film_request();
        req.deferred = true;
        let xml = req.to_xml().unwrap();
        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => assert!(r.deferred),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn seq_number_roundtrip() {
        let mut req = film_request();
        req.seq = Some(17);
        let xml = req.to_xml().unwrap();
        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => assert_eq!(r.seq, Some(17)),
            other => panic!("{other:?}"),
        }
        // absent attribute parses to None
        match parse_message(&film_request().to_xml().unwrap()).unwrap() {
            XrpcMessage::Request(r) => assert_eq!(r.seq, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn response_roundtrip_with_nodes() {
        let d = std::sync::Arc::new(
            xmldom::parse("<w><name>The Rock</name><name>Goldfinger</name></w>").unwrap(),
        );
        let w = d.children(d.root())[0];
        let names: Vec<Item> = d
            .children(w)
            .iter()
            .map(|&n| Item::Node(xmldom::NodeHandle::new(d.clone(), n)))
            .collect();
        let mut resp = XrpcResponse::new("films", "filmsByActor");
        resp.results.push(Sequence::from_items(names));
        let xml = resp.to_xml().unwrap();
        assert!(xml.contains("xrpc:response"));
        assert!(xml.contains("<name>The Rock</name>"));
        match parse_message(&xml).unwrap() {
            XrpcMessage::Response(r) => {
                assert_eq!(r.results.len(), 1);
                assert_eq!(r.results[0].len(), 2);
                assert_eq!(
                    r.results[0].items()[0].as_node().unwrap().to_xml(),
                    "<name>The Rock</name>"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bulk_response_one_sequence_per_call() {
        let mut resp = XrpcResponse::new("m", "f");
        resp.results.push(Sequence::one(Item::integer(1)));
        resp.results.push(Sequence::empty());
        resp.results.push(Sequence::one(Item::integer(3)));
        let xml = resp.to_xml().unwrap();
        match parse_message(&xml).unwrap() {
            XrpcMessage::Response(r) => {
                assert_eq!(r.results.len(), 3);
                assert!(r.results[1].is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn participating_peers_piggyback() {
        let mut resp = XrpcResponse::new("m", "f");
        resp.participating_peers = vec!["xrpc://y".into(), "xrpc://z".into()];
        resp.results.push(Sequence::empty());
        let xml = resp.to_xml().unwrap();
        match parse_message(&xml).unwrap() {
            XrpcMessage::Response(r) => {
                assert_eq!(r.participating_peers, vec!["xrpc://y", "xrpc://z"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_roundtrip_matches_paper_example() {
        let fault = XrpcFault {
            code: FaultCode::Sender,
            reason: "could not load module!".into(),
            error_code: None,
        };
        let xml = fault.to_xml();
        assert!(xml.contains("env:Fault"));
        assert!(xml.contains("env:Sender"));
        assert!(xml.contains("could not load module!"));
        match parse_message(&xml).unwrap() {
            XrpcMessage::Fault(f) => {
                assert_eq!(f.code, FaultCode::Sender);
                assert_eq!(f.reason, "could not load module!");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_carries_error_code() {
        let e = XdmError::type_error("bad things");
        let fault = XrpcFault::from_error(&e);
        let xml = fault.to_xml();
        match parse_message(&xml).unwrap() {
            XrpcMessage::Fault(f) => {
                assert_eq!(f.error_code.as_deref(), Some("XPTY0004"));
                let back = f.to_error();
                assert_eq!(back.code, "XPTY0004");
                assert!(back.message.contains("bad things"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_message("not xml").is_err());
        assert!(parse_message("<a/>").is_err());
        assert!(parse_message(
            r#"<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope"><env:Body/></env:Envelope>"#
        )
        .is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let xml = film_request().to_xml().unwrap();
        // tamper: claim arity 2
        let bad = xml.replace(r#"arity="1""#, r#"arity="2""#);
        assert!(parse_message(&bad).is_err());
    }

    // -----------------------------------------------------------------
    // Byte-identical equivalence: direct text writer vs DOM builder
    // -----------------------------------------------------------------

    /// Adversarial strings: CDATA terminator, lone carriage return, runs of
    /// every escapable character, multi-byte UTF-8 flanking escape
    /// boundaries, and control/quote mixes.
    fn adversarial_strings() -> Vec<&'static str> {
        vec![
            "]]>",
            "\r",
            "a\rb\r\rc",
            "&<>\"&<>\"&<>\"",
            "é<ü&日本語>",
            "\u{1F600}\"\u{1F600}'\u{1F600}",
            "<![CDATA[not cdata]]>",
            "tab\there\nnewline",
            "",
            " leading and trailing ",
            "&amp; already escaped",
        ]
    }

    fn assert_request_equivalence(req: &XrpcRequest) {
        let text = req.to_xml().unwrap();
        let dom = req.to_xml_dom().unwrap();
        assert_eq!(text, dom, "text writer diverged from DOM serialization");
        // and the result must still parse back
        assert!(matches!(
            parse_message(&text).unwrap(),
            XrpcMessage::Request(_)
        ));
    }

    fn assert_response_equivalence(resp: &XrpcResponse) {
        let text = resp.to_xml().unwrap();
        let dom = resp.to_xml_dom().unwrap();
        assert_eq!(text, dom, "text writer diverged from DOM serialization");
        assert!(matches!(
            parse_message(&text).unwrap(),
            XrpcMessage::Response(_)
        ));
    }

    #[test]
    fn text_writer_equivalence_atomic_shapes() {
        // every request shape: bare, located, queryID, deferred, seq, bulk
        assert_request_equivalence(&XrpcRequest::new("m", "f", 0));
        assert_request_equivalence(&film_request());
        assert_request_equivalence(&film_request().with_query_id(QueryId::new(
            "x.example.org",
            1190000000000,
            30,
        )));
        let mut req = film_request();
        req.deferred = true;
        req.seq = Some(99);
        assert_request_equivalence(&req);
        let mut bulk = XrpcRequest::new("m", "f", 1);
        for s in adversarial_strings() {
            bulk.push_call(vec![Sequence::one(Item::string(s))]);
        }
        assert_request_equivalence(&bulk);
        // empty parameter sequence and multi-param calls
        let mut multi = XrpcRequest::new("m", "g", 3);
        multi.push_call(vec![
            Sequence::empty(),
            Sequence::one(Item::integer(-7)),
            Sequence::from_items(vec![Item::string("]]>"), Item::integer(0)]),
        ]);
        assert_request_equivalence(&multi);
    }

    #[test]
    fn text_writer_equivalence_trace_header() {
        // the trace header must be byte-identical on both paths, with
        // and without a parent id, and survive a parse round-trip
        let mut req =
            film_request().with_query_id(QueryId::new("x.example.org", 1190000000000, 30));
        req.trace = Some(TraceContext {
            trace_id: 0x00ab_cdef_0123_4567_89ab_cdef_0123_4567,
            span_id: 0x1122_3344_5566_7788,
            parent_id: None,
        });
        assert_request_equivalence(&req);
        req.trace = Some(TraceContext {
            trace_id: u128::MAX,
            span_id: 1,
            parent_id: Some(0xdead_beef_0000_0001),
        });
        assert_request_equivalence(&req);
        let xml = req.to_xml().unwrap();
        assert!(xml.contains("<env:Header><xrpc:trace traceId="));
        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => assert_eq!(r.trace, req.trace),
            other => panic!("expected request, got {other:?}"),
        }
        // absent header parses to None
        let plain = film_request().to_xml().unwrap();
        assert!(!plain.contains("env:Header"));
        match parse_message(&plain).unwrap() {
            XrpcMessage::Request(r) => assert_eq!(r.trace, None),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn text_writer_equivalence_budget_header() {
        // budget alone, trace+budget together, and the zero budget must be
        // byte-identical on both paths and survive a parse round-trip
        let mut req = film_request();
        req.budget_millis = Some(2500);
        assert_request_equivalence(&req);
        let xml = req.to_xml().unwrap();
        assert!(xml.contains("<env:Header><xrpc:budget remainingMillis=\"2500\"/></env:Header>"));
        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => assert_eq!(r.budget_millis, Some(2500)),
            other => panic!("expected request, got {other:?}"),
        }

        // trace + budget share one env:Header, trace first
        req.trace = Some(TraceContext {
            trace_id: 7,
            span_id: 9,
            parent_id: None,
        });
        assert_request_equivalence(&req);
        let xml = req.to_xml().unwrap();
        assert_eq!(xml.matches("<env:Header>").count(), 1);
        let t = xml.find("<xrpc:trace").unwrap();
        let b = xml.find("<xrpc:budget").unwrap();
        assert!(t < b, "trace element precedes budget element");
        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => {
                assert_eq!(r.budget_millis, Some(2500));
                assert_eq!(r.trace, req.trace);
            }
            other => panic!("expected request, got {other:?}"),
        }

        // zero is a legal wire value ("exhausted on arrival")
        let mut zero = film_request();
        zero.budget_millis = Some(0);
        assert_request_equivalence(&zero);
        match parse_message(&zero.to_xml().unwrap()).unwrap() {
            XrpcMessage::Request(r) => assert_eq!(r.budget_millis, Some(0)),
            other => panic!("expected request, got {other:?}"),
        }

        // absent header parses to None
        match parse_message(&film_request().to_xml().unwrap()).unwrap() {
            XrpcMessage::Request(r) => assert_eq!(r.budget_millis, None),
            other => panic!("expected request, got {other:?}"),
        }

        // a malformed budget degrades to None instead of failing the parse
        let bad = {
            let mut r = film_request();
            r.budget_millis = Some(1);
            r.to_xml()
                .unwrap()
                .replace("remainingMillis=\"1\"", "remainingMillis=\"x\"")
        };
        match parse_message(&bad).unwrap() {
            XrpcMessage::Request(r) => assert_eq!(r.budget_millis, None),
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn text_writer_equivalence_profile_request_header() {
        let mut req = film_request();
        req.profile = Some(ProfileRequest {
            mode: ProfileMode::Sampled,
            via: "xrpc://origin:41000/\"<&>".into(),
            depth: 2,
        });
        assert_request_equivalence(&req);
        let xml = req.to_xml().unwrap();
        assert!(xml.contains("<xrpc:profile mode=\"sampled\""));
        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => {
                let p = r.profile.unwrap();
                assert_eq!(p.mode, ProfileMode::Sampled);
                assert_eq!(p.via, "xrpc://origin:41000/\"<&>");
                assert_eq!(p.depth, 2);
            }
            other => panic!("expected request, got {other:?}"),
        }

        // trace + budget + profile share one env:Header, in that order
        req.trace = Some(TraceContext {
            trace_id: 7,
            span_id: 9,
            parent_id: None,
        });
        req.budget_millis = Some(1000);
        assert_request_equivalence(&req);
        let xml = req.to_xml().unwrap();
        assert_eq!(xml.matches("<env:Header>").count(), 1);
        let t = xml.find("<xrpc:trace").unwrap();
        let b = xml.find("<xrpc:budget").unwrap();
        let p = xml.find("<xrpc:profile").unwrap();
        assert!(t < b && b < p, "trace, then budget, then profile");

        // absent header parses to None
        match parse_message(&film_request().to_xml().unwrap()).unwrap() {
            XrpcMessage::Request(r) => assert!(r.profile.is_none()),
            other => panic!("expected request, got {other:?}"),
        }

        // a malformed mode degrades to None instead of failing the parse
        let bad = {
            let mut r = film_request();
            r.profile = Some(ProfileRequest {
                mode: ProfileMode::Full,
                via: String::new(),
                depth: 0,
            });
            r.to_xml()
                .unwrap()
                .replace("mode=\"full\"", "mode=\"garbage\"")
        };
        match parse_message(&bad).unwrap() {
            XrpcMessage::Request(r) => assert!(r.profile.is_none()),
            other => panic!("expected request, got {other:?}"),
        }
    }

    fn sample_hops() -> Vec<HopProfile> {
        vec![
            HopProfile {
                peer: "xrpc://y:41001/".into(),
                via: "xrpc://x:41000/".into(),
                depth: 1,
                trace_id: 0xabc,
                span_id: 0x11,
                total_micros: 1500,
                phases: Phases {
                    parse_micros: 10,
                    compile_micros: 20,
                    marshal_micros: 5,
                    network_micros: 300,
                    execute_micros: 1100,
                    serialize_micros: 40,
                    twopc_micros: 0,
                    wal_micros: 0,
                    cache: "hit",
                },
                ops: vec![OpNode {
                    name: "xq:flwor".into(),
                    calls: 12,
                    timed_calls: 1,
                    wall_micros: 90,
                    items: 24,
                    bytes: 0,
                    children: vec![OpNode {
                        name: "xq:path-step\"<&>".into(),
                        calls: 24,
                        timed_calls: 2,
                        wall_micros: 30,
                        items: 48,
                        bytes: 512,
                        children: Vec::new(),
                    }],
                }],
            },
            HopProfile {
                peer: "xrpc://z:41002/".into(),
                via: "xrpc://y:41001/".into(),
                depth: 2,
                trace_id: 0xabc,
                span_id: 0x22,
                total_micros: 400,
                phases: Phases {
                    cache: "miss",
                    execute_micros: 390,
                    ..Phases::default()
                },
                ops: Vec::new(),
            },
        ]
    }

    #[test]
    fn text_writer_equivalence_profile_hops_header() {
        let mut resp = XrpcResponse::new("m", "f");
        resp.results.push(Sequence::one(Item::integer(1)));
        resp.profile_hops = sample_hops();
        assert_response_equivalence(&resp);
        let xml = resp.to_xml().unwrap();
        assert!(xml.contains("<env:Header><xrpc:profile><xrpc:hop peer="));
        match parse_message(&xml).unwrap() {
            XrpcMessage::Response(r) => {
                assert_eq!(r.profile_hops.len(), 2);
                let h = &r.profile_hops[0];
                assert_eq!(h.peer, "xrpc://y:41001/");
                assert_eq!(h.via, "xrpc://x:41000/");
                assert_eq!(h.depth, 1);
                assert_eq!(h.trace_id, 0xabc);
                assert_eq!(h.span_id, 0x11);
                assert_eq!(h.total_micros, 1500);
                assert_eq!(h.phases.cache, "hit");
                assert_eq!(h.phases.network_micros, 300);
                assert_eq!(h.ops.len(), 1);
                assert_eq!(h.ops[0].name, "xq:flwor");
                assert_eq!(h.ops[0].calls, 12);
                assert_eq!(h.ops[0].children.len(), 1);
                assert_eq!(h.ops[0].children[0].name, "xq:path-step\"<&>");
                assert_eq!(h.ops[0].children[0].bytes, 512);
                assert_eq!(r.profile_hops[1].phases.cache, "miss");
            }
            other => panic!("expected response, got {other:?}"),
        }

        // a response without profiling has no header at all
        let mut plain = XrpcResponse::new("m", "f");
        plain.results.push(Sequence::empty());
        let xml = plain.to_xml().unwrap();
        assert!(!xml.contains("env:Header"));
        match parse_message(&xml).unwrap() {
            XrpcMessage::Response(r) => assert!(r.profile_hops.is_empty()),
            other => panic!("expected response, got {other:?}"),
        }

        // a mangled hop is skipped, not fatal
        let mangled = resp.to_xml().unwrap().replace("depth=\"2\"", "depth=\"x\"");
        match parse_message(&mangled).unwrap() {
            XrpcMessage::Response(r) => {
                assert_eq!(r.profile_hops.len(), 1, "bad hop dropped");
                assert_eq!(r.profile_hops[0].depth, 1);
            }
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn text_writer_equivalence_node_kinds() {
        let d = std::sync::Arc::new(
            xmldom::parse(
                r#"<r a="v&quot;&#13;"><p:e xmlns:p="urn:x" k="1"><!--c&lt;m--><?pi data?>t&lt;x</p:e><empty/></r>"#,
            )
            .unwrap(),
        );
        let r = d.children(d.root())[0];
        let pe = d.children(r)[0];
        let mut items = vec![
            Item::Node(xmldom::NodeHandle::root(d.clone())),
            Item::Node(xmldom::NodeHandle::new(d.clone(), r)),
            Item::Node(xmldom::NodeHandle::new(d.clone(), pe)),
            Item::Node(xmldom::NodeHandle::new(d.clone(), d.attributes(r)[0])),
        ];
        for &c in d.children(pe) {
            items.push(Item::Node(xmldom::NodeHandle::new(d.clone(), c)));
        }
        let mut req = XrpcRequest::new("m", "f", 1);
        req.push_call(vec![Sequence::from_items(items.clone())]);
        assert_request_equivalence(&req);

        let mut resp = XrpcResponse::new("m", "f");
        resp.results.push(Sequence::from_items(items));
        resp.results.push(Sequence::empty());
        resp.participating_peers = vec!["xrpc://y".into(), "xrpc://z\"<&>".into()];
        assert_response_equivalence(&resp);
    }

    #[test]
    fn text_writer_equivalence_adversarial_text_nodes() {
        for s in adversarial_strings() {
            let mut d = xmldom::Document::new();
            let t = d.create_text(s);
            let c = d.create_comment("c");
            let _ = c;
            let d = std::sync::Arc::new(d);
            let mut resp = XrpcResponse::new("m", "f");
            resp.results.push(Sequence::from_items(vec![
                Item::Node(xmldom::NodeHandle::new(d.clone(), t)),
                Item::string(s),
            ]));
            assert_response_equivalence(&resp);
        }
    }

    #[test]
    fn text_writer_equivalence_xmark_documents() {
        let params = xmark::XmarkParams {
            persons: 12,
            closed_auctions: 25,
            matches: 3,
            padding_words: 6,
            seed: 7,
        };
        for xml in [
            xmark::persons_xml(&params),
            xmark::auctions_xml(&params),
            xmark::film_db().to_string(),
            xmark::payload_xml(16 * 1024),
        ] {
            let d = std::sync::Arc::new(xmldom::parse(&xml).unwrap());
            let root_el = d.children(d.root())[0];
            // ship the document, the root element, and each child subtree
            let mut items = vec![
                Item::Node(xmldom::NodeHandle::root(d.clone())),
                Item::Node(xmldom::NodeHandle::new(d.clone(), root_el)),
            ];
            for &c in d.children(root_el).iter().take(5) {
                items.push(Item::Node(xmldom::NodeHandle::new(d.clone(), c)));
            }
            let mut req = XrpcRequest::new("m", "f", 1);
            req.push_call(vec![Sequence::from_items(items.clone())]);
            assert_request_equivalence(&req);
            let mut resp = XrpcResponse::new("m", "f");
            resp.results.push(Sequence::from_items(items));
            assert_response_equivalence(&resp);
        }
    }

    #[test]
    fn multi_param_call() {
        let mut req = XrpcRequest::new("functions", "getPerson", 2);
        req.push_call(vec![
            Sequence::one(Item::string("auctions.xml")),
            Sequence::one(Item::string("person0")),
        ]);
        let xml = req.to_xml().unwrap();
        assert_eq!(xml.matches("<xrpc:sequence>").count(), 2);
        match parse_message(&xml).unwrap() {
            XrpcMessage::Request(r) => {
                assert_eq!(r.calls[0].len(), 2);
                assert_eq!(r.calls[0][1].items()[0].string_value(), "person0");
            }
            other => panic!("{other:?}"),
        }
    }
}
