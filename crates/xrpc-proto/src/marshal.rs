//! Parameter marshaling: the `s2n()` / `n2s()` pair of the formal
//! semantics (paper §2.2).
//!
//! `s2n` serializes an XDM sequence into an `<xrpc:sequence>` element:
//! atomic values become `<xrpc:atomic-value xsi:type="...">`, nodes are
//! wrapped per kind (`<xrpc:element>`, `<xrpc:document>`, `<xrpc:text>`,
//! `<xrpc:attribute>`, `<xrpc:comment>`, `<xrpc:pi>`).
//!
//! `n2s` is the inverse; crucially it copies every node parameter into a
//! *fresh single-fragment document*, which guarantees that upward and
//! sideways XPath axes at the callee return empty results — the paper's
//! call-by-value contract. (Returning nodes under their identity inside
//! the SOAP message would let a query navigate to the envelope, which §2.2
//! explicitly warns against.)

use xdm::types::AtomicType;
use xdm::{AtomicValue, Item, Sequence, XdmError, XdmResult};
use xmldom::escape::{push_escaped_attr, push_escaped_text};
use xmldom::qname::{NS_XRPC, NS_XSI};
use xmldom::{serialize_node_into, Document, NodeHandle, NodeId, NodeKind, QName, SerializeOpts};

fn xrpc_name(local: &str) -> QName {
    QName::ns("xrpc", NS_XRPC, local)
}

/// Append the `<xrpc:sequence>` representation of `seq` under `parent` in
/// `doc` (the message document being built). This is `s2n()`.
pub fn s2n_into(doc: &mut Document, parent: NodeId, seq: &Sequence) -> XdmResult<()> {
    let seq_el = doc.create_element(xrpc_name("sequence"));
    doc.append_child(parent, seq_el);
    for item in seq.iter() {
        emit_item(doc, seq_el, item)?;
    }
    Ok(())
}

fn emit_item(doc: &mut Document, seq_el: NodeId, item: &Item) -> XdmResult<()> {
    match item {
        Item::Atomic(a) => {
            let el = doc.create_element(xrpc_name("atomic-value"));
            doc.set_attribute(
                el,
                QName::ns("xsi", NS_XSI, "type"),
                a.atomic_type().xs_name(),
            );
            let t = doc.create_text(a.lexical());
            doc.append_child(el, t);
            doc.append_child(seq_el, el);
        }
        Item::Node(n) => {
            let wrapper_local = match n.kind() {
                NodeKind::Element => "element",
                NodeKind::Document => "document",
                NodeKind::Text => "text",
                NodeKind::Comment => "comment",
                NodeKind::ProcessingInstruction => "pi",
                NodeKind::Attribute => "attribute",
            };
            let el = doc.create_element(xrpc_name(wrapper_local));
            doc.append_child(seq_el, el);
            match n.kind() {
                NodeKind::Element => {
                    let copy = doc.import_subtree(&n.doc, n.id);
                    doc.append_child(el, copy);
                }
                NodeKind::Document => {
                    for &c in n.doc.children(n.id) {
                        let copy = doc.import_subtree(&n.doc, c);
                        doc.append_child(el, copy);
                    }
                }
                NodeKind::Text | NodeKind::Comment => {
                    let t = doc.create_text(n.data().value.clone());
                    doc.append_child(el, t);
                }
                NodeKind::ProcessingInstruction => {
                    let copy = doc.import_subtree(&n.doc, n.id);
                    doc.append_child(el, copy);
                }
                NodeKind::Attribute => {
                    // `<xrpc:attribute x="y"/>` — the attribute itself
                    // is carried on the wrapper element.
                    let copy = doc.import_subtree(&n.doc, n.id);
                    doc.set_attribute_node(el, copy);
                }
            }
        }
    }
    Ok(())
}

/// Append the `<xrpc:sequence>` wire text of `seq` directly to `out`,
/// serializing node parameters straight out of their *source* documents.
///
/// This is the single-copy fast path: the DOM-building [`s2n_into`] pays an
/// `import_subtree` deep copy per node parameter before the message document
/// is serialized (ablation A3 measures that cost); here the only copy is the
/// serialization itself. Output is byte-identical to building the message
/// DOM with `s2n_into` and serializing it — the equivalence suite in
/// `message.rs` asserts this over XMark documents and adversarial strings.
pub fn s2n_text_into(out: &mut String, seq: &Sequence) -> XdmResult<()> {
    if seq.is_empty() {
        out.push_str("<xrpc:sequence/>");
        return Ok(());
    }
    out.push_str("<xrpc:sequence>");
    for item in seq.iter() {
        emit_item_text(out, item)?;
    }
    out.push_str("</xrpc:sequence>");
    Ok(())
}

fn emit_item_text(out: &mut String, item: &Item) -> XdmResult<()> {
    let opts = SerializeOpts::default();
    match item {
        Item::Atomic(a) => {
            out.push_str("<xrpc:atomic-value xsi:type=\"");
            push_escaped_attr(out, a.atomic_type().xs_name());
            // The DOM path always appends a text child (possibly empty), so
            // the wrapper is never self-closing.
            out.push_str("\">");
            push_escaped_text(out, &a.lexical());
            out.push_str("</xrpc:atomic-value>");
        }
        Item::Node(n) => match n.kind() {
            NodeKind::Element => {
                out.push_str("<xrpc:element>");
                serialize_node_into(&n.doc, n.id, &opts, out);
                out.push_str("</xrpc:element>");
            }
            NodeKind::Document => {
                let kids = n.doc.children(n.id);
                if kids.is_empty() {
                    out.push_str("<xrpc:document/>");
                } else {
                    out.push_str("<xrpc:document>");
                    for &c in kids {
                        serialize_node_into(&n.doc, c, &opts, out);
                    }
                    out.push_str("</xrpc:document>");
                }
            }
            NodeKind::Text => {
                out.push_str("<xrpc:text>");
                push_escaped_text(out, &n.data().value);
                out.push_str("</xrpc:text>");
            }
            NodeKind::Comment => {
                out.push_str("<xrpc:comment>");
                push_escaped_text(out, &n.data().value);
                out.push_str("</xrpc:comment>");
            }
            NodeKind::ProcessingInstruction => {
                out.push_str("<xrpc:pi>");
                serialize_node_into(&n.doc, n.id, &opts, out);
                out.push_str("</xrpc:pi>");
            }
            NodeKind::Attribute => {
                out.push_str("<xrpc:attribute ");
                out.push_str(
                    &n.data()
                        .name
                        .as_ref()
                        .map(|q| q.lexical())
                        .unwrap_or_default(),
                );
                out.push_str("=\"");
                push_escaped_attr(out, &n.data().value);
                out.push_str("\"/>");
            }
        },
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Call-by-fragment (the paper's footnote-4 protocol extension)
// ---------------------------------------------------------------------

/// Marshal *all* parameter sequences of one call, compressing node
/// parameters that are a descendant-or-self of an already-serialized node
/// parameter into an `<xrpc:nodeid param=".." item=".." path=".."/>`
/// reference (the paper's planned `xrpc:nodeid` extension, footnote 4).
/// The receiver resolves the reference *inside the referenced fragment*,
/// so ancestor/descendant relationships among parameters survive the trip
/// — unlike plain by-value marshaling.
pub fn s2n_call_into(doc: &mut Document, call: NodeId, params: &[Sequence]) -> XdmResult<()> {
    // (param index, item index, original handle) of every fully
    // serialized element/document parameter so far
    let mut serialized: Vec<(usize, usize, NodeHandle)> = Vec::new();
    for (pi, seq) in params.iter().enumerate() {
        let seq_el = doc.create_element(xrpc_name("sequence"));
        doc.append_child(call, seq_el);
        for (ii, item) in seq.iter().enumerate() {
            if let Item::Node(n) = item {
                if let Some((ppi, pii, rel)) = find_enclosing(&serialized, n) {
                    let el = doc.create_element(xrpc_name("nodeid"));
                    doc.set_attribute(el, QName::local("param"), (ppi + 1).to_string());
                    doc.set_attribute(el, QName::local("item"), (pii + 1).to_string());
                    doc.set_attribute(el, QName::local("path"), rel);
                    doc.append_child(seq_el, el);
                    continue;
                }
            }
            emit_item(doc, seq_el, item)?;
            if let Item::Node(n) = item {
                if matches!(n.kind(), NodeKind::Element | NodeKind::Document) {
                    serialized.push((pi, ii, n.clone()));
                }
            }
        }
    }
    Ok(())
}

/// If `n` lives inside one of the already-serialized fragments, return
/// (param, item, relative child-index path).
fn find_enclosing(
    serialized: &[(usize, usize, NodeHandle)],
    n: &NodeHandle,
) -> Option<(usize, usize, String)> {
    for (pi, ii, anc) in serialized {
        if !std::sync::Arc::ptr_eq(&anc.doc, &n.doc) {
            continue;
        }
        if let Some(path) = relative_path(&anc.doc, anc.id, n.id) {
            return Some((*pi, *ii, path));
        }
    }
    None
}

/// Child-index path from `anc` down to `node` (`""` for self). Attribute
/// leaves are encoded as `@k`.
fn relative_path(doc: &Document, anc: NodeId, node: NodeId) -> Option<String> {
    let mut components: Vec<String> = Vec::new();
    let mut cur = node;
    while cur != anc {
        let parent = doc.node(cur).parent?;
        if doc.kind(cur) == NodeKind::Attribute {
            let k = doc.attributes(parent).iter().position(|&a| a == cur)?;
            components.push(format!("@{k}"));
        } else {
            let k = doc.children(parent).iter().position(|&c| c == cur)?;
            components.push(k.to_string());
        }
        cur = parent;
    }
    components.reverse();
    Some(components.join("/"))
}

/// Decode all parameter sequences of one `<xrpc:call>` element, resolving
/// `<xrpc:nodeid>` references against the fragments decoded earlier in
/// the same call.
pub fn n2s_call(msg: &Document, call: NodeId) -> XdmResult<Vec<Sequence>> {
    let mut decoded: Vec<Sequence> = Vec::new();
    for seq_el in msg.child_elements(call) {
        let name = msg.node(seq_el).name.clone();
        if !name.as_ref().is_some_and(|n| n.is(NS_XRPC, "sequence")) {
            continue;
        }
        let mut out = Sequence::empty();
        for child in msg.child_elements(seq_el) {
            let cname = msg
                .node(child)
                .name
                .clone()
                .ok_or_else(|| XdmError::xrpc("unnamed sequence member"))?;
            if cname.is(NS_XRPC, "nodeid") {
                out.push(resolve_nodeid(msg, child, &decoded, &out)?);
            } else {
                out.push(decode_value(msg, child)?);
            }
        }
        decoded.push(out);
    }
    Ok(decoded)
}

fn resolve_nodeid(
    msg: &Document,
    el: NodeId,
    decoded: &[Sequence],
    current: &Sequence,
) -> XdmResult<Item> {
    let param: usize = msg
        .attr_local(el, "param")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| XdmError::xrpc("nodeid missing @param"))?;
    let item: usize = msg
        .attr_local(el, "item")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| XdmError::xrpc("nodeid missing @item"))?;
    let path = msg.attr_local(el, "path").unwrap_or("");
    let base_seq = if param == decoded.len() + 1 {
        current
    } else {
        decoded
            .get(param - 1)
            .ok_or_else(|| XdmError::xrpc("nodeid @param out of range"))?
    };
    let base = base_seq
        .items()
        .get(item - 1)
        .and_then(|i| i.as_node())
        .ok_or_else(|| XdmError::xrpc("nodeid target is not a node"))?;
    let mut cur = base.id;
    if !path.is_empty() {
        for comp in path.split('/') {
            if let Some(k) = comp.strip_prefix('@') {
                let k: usize = k
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad nodeid path component"))?;
                cur = *base
                    .doc
                    .attributes(cur)
                    .get(k)
                    .ok_or_else(|| XdmError::xrpc("nodeid attribute index out of range"))?;
            } else {
                let k: usize = comp
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad nodeid path component"))?;
                cur = *base
                    .doc
                    .children(cur)
                    .get(k)
                    .ok_or_else(|| XdmError::xrpc("nodeid child index out of range"))?;
            }
        }
    }
    Ok(Item::Node(NodeHandle::new(base.doc.clone(), cur)))
}

/// Decode an `<xrpc:sequence>` element back into an XDM sequence. This is
/// `n2s()`: every node comes back as the root of a fresh fragment.
pub fn n2s(msg: &Document, seq_el: NodeId) -> XdmResult<Sequence> {
    let mut out = Sequence::empty();
    for &child in msg.children(seq_el) {
        if msg.kind(child) != NodeKind::Element {
            continue; // ignorable whitespace between values
        }
        out.push(decode_value(msg, child)?);
    }
    Ok(out)
}

/// Decode one value wrapper element into an item.
fn decode_value(msg: &Document, child: NodeId) -> XdmResult<Item> {
    {
        let name = msg
            .node(child)
            .name
            .clone()
            .ok_or_else(|| XdmError::xrpc("unnamed element in xrpc:sequence"))?;
        if name.ns_uri.as_deref() != Some(NS_XRPC) {
            return Err(XdmError::xrpc(format!(
                "unexpected element `{}` in xrpc:sequence",
                name.lexical()
            )));
        }
        match name.local.as_str() {
            "atomic-value" => {
                let ty_lex = msg
                    .attr_local(child, "type")
                    .ok_or_else(|| XdmError::xrpc("atomic-value without xsi:type"))?;
                let ty = AtomicType::from_xs_name(ty_lex)
                    .ok_or_else(|| XdmError::xrpc(format!("unsupported xsi:type `{ty_lex}`")))?;
                let lexical = msg.string_value(child);
                Ok(Item::Atomic(AtomicValue::parse_as(&lexical, ty)?))
            }
            "element" => {
                let inner = msg
                    .child_elements(child)
                    .first()
                    .copied()
                    .ok_or_else(|| XdmError::xrpc("empty xrpc:element wrapper"))?;
                Ok(Item::Node(fresh_fragment(msg, inner)?))
            }
            "document" => {
                let mut d = Document::new();
                let root = d.root();
                for &c in msg.children(child) {
                    let copy = d.import_subtree(msg, c);
                    d.append_child(root, copy);
                }
                Ok(Item::Node(NodeHandle::root(std::sync::Arc::new(d))))
            }
            "text" => {
                let mut d = Document::new();
                let t = d.create_text(msg.string_value(child));
                Ok(Item::Node(NodeHandle::new(std::sync::Arc::new(d), t)))
            }
            "comment" => {
                let mut d = Document::new();
                let t = d.create_comment(msg.string_value(child));
                Ok(Item::Node(NodeHandle::new(std::sync::Arc::new(d), t)))
            }
            "pi" => {
                // the wrapper carries the PI node itself
                let pi = msg
                    .children(child)
                    .iter()
                    .copied()
                    .find(|&c| msg.kind(c) == NodeKind::ProcessingInstruction)
                    .ok_or_else(|| XdmError::xrpc("xrpc:pi wrapper without a PI"))?;
                Ok(Item::Node(fresh_fragment(msg, pi)?))
            }
            "attribute" => {
                let attr =
                    msg.attributes(child).first().copied().ok_or_else(|| {
                        XdmError::xrpc("xrpc:attribute wrapper without an attribute")
                    })?;
                let mut d = Document::new();
                let copy = d.import_subtree(msg, attr);
                Ok(Item::Node(NodeHandle::new(std::sync::Arc::new(d), copy)))
            }
            other => Err(XdmError::xrpc(format!(
                "unknown value wrapper xrpc:{other}"
            ))),
        }
    }
}

/// Copy `src_id` out of the message into a fresh detached document — the
/// by-value guarantee.
fn fresh_fragment(msg: &Document, src_id: NodeId) -> XdmResult<NodeHandle> {
    let mut d = Document::new();
    let copy = d.import_subtree(msg, src_id);
    Ok(NodeHandle::new(std::sync::Arc::new(d), copy))
}

// ---------------------------------------------------------------------
// Zero-copy decode: detach fragments in place instead of deep-copying
// ---------------------------------------------------------------------

/// Phase-1 result of decoding one value wrapper: atomics are complete,
/// node values are *detached in place* inside the (still mutable) message
/// arena and referenced by id until the arena is frozen behind an `Arc`.
enum Pending {
    Ready(Item),
    Node(NodeId),
}

/// All items of one decoded `<xrpc:sequence>`, awaiting the arena freeze.
pub struct PendingSequence(Vec<Pending>);

impl PendingSequence {
    /// Phase 2: turn ids into handles sharing the frozen message arena.
    pub fn finish(self, arc: &std::sync::Arc<Document>) -> Sequence {
        let mut out = Sequence::empty();
        for p in self.0 {
            out.push(match p {
                Pending::Ready(item) => item,
                Pending::Node(id) => Item::Node(NodeHandle::new(arc.clone(), id)),
            });
        }
        out
    }
}

/// `n2s()` without the per-item deep copy: each node value is detached from
/// its wrapper in place (`parent := None`), so the whole message keeps ONE
/// arena and decoding allocates nothing per item beyond the id list.
///
/// The call-by-value contract survives because detaching severs the upward
/// link: ancestor/parent/sibling axes from the fragment root see nothing —
/// exactly what the fresh-fragment copy guaranteed, minus the copy. The
/// price is that the envelope arena stays alive as long as any decoded
/// fragment does (documented in DESIGN.md).
pub fn n2s_detach(msg: &mut Document, seq_el: NodeId) -> XdmResult<PendingSequence> {
    let mut out = Vec::new();
    for child in msg.child_elements(seq_el) {
        out.push(decode_value_detach(msg, child)?);
    }
    Ok(PendingSequence(out))
}

/// [`n2s_call`] without the per-item deep copy (see [`n2s_detach`]).
/// `<xrpc:nodeid>` references resolve to ids *inside* earlier detached
/// fragments — same arena, so no cross-document bookkeeping at all.
pub fn n2s_call_detach(msg: &mut Document, call: NodeId) -> XdmResult<Vec<PendingSequence>> {
    let mut decoded: Vec<PendingSequence> = Vec::new();
    for seq_el in msg.child_elements(call) {
        let is_seq = msg
            .node(seq_el)
            .name
            .as_ref()
            .is_some_and(|n| n.is(NS_XRPC, "sequence"));
        if !is_seq {
            continue;
        }
        let mut out: Vec<Pending> = Vec::new();
        for child in msg.child_elements(seq_el) {
            let cname = msg
                .node(child)
                .name
                .clone()
                .ok_or_else(|| XdmError::xrpc("unnamed sequence member"))?;
            if cname.is(NS_XRPC, "nodeid") {
                out.push(resolve_nodeid_detached(msg, child, &decoded, &out)?);
            } else {
                out.push(decode_value_detach(msg, child)?);
            }
        }
        decoded.push(PendingSequence(out));
    }
    Ok(decoded)
}

/// Decode one wrapper, detaching node values in place.
fn decode_value_detach(msg: &mut Document, child: NodeId) -> XdmResult<Pending> {
    let name = msg
        .node(child)
        .name
        .clone()
        .ok_or_else(|| XdmError::xrpc("unnamed element in xrpc:sequence"))?;
    if name.ns_uri.as_deref() != Some(NS_XRPC) {
        return Err(XdmError::xrpc(format!(
            "unexpected element `{}` in xrpc:sequence",
            name.lexical()
        )));
    }
    match name.local.as_str() {
        "atomic-value" => {
            let ty_lex = msg
                .attr_local(child, "type")
                .ok_or_else(|| XdmError::xrpc("atomic-value without xsi:type"))?;
            let ty = AtomicType::from_xs_name(ty_lex)
                .ok_or_else(|| XdmError::xrpc(format!("unsupported xsi:type `{ty_lex}`")))?;
            let lexical = msg.string_value(child);
            Ok(Pending::Ready(Item::Atomic(AtomicValue::parse_as(
                &lexical, ty,
            )?)))
        }
        "element" => {
            let inner = msg
                .child_elements(child)
                .first()
                .copied()
                .ok_or_else(|| XdmError::xrpc("empty xrpc:element wrapper"))?;
            msg.detach(inner);
            Ok(Pending::Node(inner))
        }
        "document" => {
            // Reparent the wrapper's children under a synthetic document
            // node in the same arena (the child id vec moves, not copies).
            let doc_node = msg.create_document_node();
            let kids = std::mem::take(&mut msg.node_mut(child).children);
            for &k in &kids {
                msg.node_mut(k).parent = Some(doc_node);
            }
            msg.node_mut(doc_node).children = kids;
            Ok(Pending::Node(doc_node))
        }
        "text" => {
            // The parser coalesces entity references, so the wrapper holds a
            // single text child in the common case — detach it as-is.
            // CDATA-split content falls back to a concatenated copy.
            let kids = msg.children(child);
            if kids.len() == 1 && msg.kind(kids[0]) == NodeKind::Text {
                let t = kids[0];
                msg.detach(t);
                Ok(Pending::Node(t))
            } else {
                let v = msg.string_value(child);
                Ok(Pending::Node(msg.create_text(v)))
            }
        }
        "comment" => {
            let v = msg.string_value(child);
            Ok(Pending::Node(msg.create_comment(v)))
        }
        "pi" => {
            let pi = msg
                .children(child)
                .iter()
                .copied()
                .find(|&c| msg.kind(c) == NodeKind::ProcessingInstruction)
                .ok_or_else(|| XdmError::xrpc("xrpc:pi wrapper without a PI"))?;
            msg.detach(pi);
            Ok(Pending::Node(pi))
        }
        "attribute" => {
            let attr = msg
                .attributes(child)
                .first()
                .copied()
                .ok_or_else(|| XdmError::xrpc("xrpc:attribute wrapper without an attribute"))?;
            msg.detach(attr);
            Ok(Pending::Node(attr))
        }
        other => Err(XdmError::xrpc(format!(
            "unknown value wrapper xrpc:{other}"
        ))),
    }
}

/// [`resolve_nodeid`] against detached in-arena fragments: the base item is
/// a `Pending::Node` id and the child-index path walks the same arena.
fn resolve_nodeid_detached(
    msg: &Document,
    el: NodeId,
    decoded: &[PendingSequence],
    current: &[Pending],
) -> XdmResult<Pending> {
    let param: usize = msg
        .attr_local(el, "param")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| XdmError::xrpc("nodeid missing @param"))?;
    let item: usize = msg
        .attr_local(el, "item")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| XdmError::xrpc("nodeid missing @item"))?;
    let path = msg.attr_local(el, "path").unwrap_or("");
    let base_seq: &[Pending] = if param == decoded.len() + 1 {
        current
    } else {
        &decoded
            .get(param - 1)
            .ok_or_else(|| XdmError::xrpc("nodeid @param out of range"))?
            .0
    };
    let base = match base_seq.get(item - 1) {
        Some(Pending::Node(id)) => *id,
        _ => return Err(XdmError::xrpc("nodeid target is not a node")),
    };
    let mut cur = base;
    if !path.is_empty() {
        for comp in path.split('/') {
            if let Some(k) = comp.strip_prefix('@') {
                let k: usize = k
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad nodeid path component"))?;
                cur = *msg
                    .attributes(cur)
                    .get(k)
                    .ok_or_else(|| XdmError::xrpc("nodeid attribute index out of range"))?;
            } else {
                let k: usize = comp
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad nodeid path component"))?;
                cur = *msg
                    .children(cur)
                    .get(k)
                    .ok_or_else(|| XdmError::xrpc("nodeid child index out of range"))?;
            }
        }
    }
    Ok(Pending::Node(cur))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xdm::Decimal;
    use xmldom::parse;

    /// Build a message document containing one marshaled sequence and give
    /// back (message, sequence element id).
    fn roundtrip_doc(seq: &Sequence) -> (Document, NodeId) {
        let mut doc = Document::new();
        let root = doc.root();
        let holder = doc.create_element(xrpc_name("call"));
        doc.append_child(root, holder);
        s2n_into(&mut doc, holder, seq).unwrap();
        let seq_el = doc.child_elements(holder)[0];
        (doc, seq_el)
    }

    fn roundtrip(seq: &Sequence) -> Sequence {
        let (doc, seq_el) = roundtrip_doc(seq);
        // serialize + reparse to prove wire-fidelity, not just tree fidelity
        let xml = xmldom::serialize_node(&doc, doc.children(doc.root())[0], &Default::default());
        let xml = format!(
            "<w xmlns:xrpc=\"{}\" xmlns:xsi=\"{}\" xmlns:xs=\"{}\">{}</w>",
            NS_XRPC,
            NS_XSI,
            xmldom::qname::NS_XS,
            xml
        );
        let reparsed = parse(&xml).unwrap();
        let w = reparsed.children(reparsed.root())[0];
        let call = reparsed.child_elements(w)[0];
        let seq2 = reparsed.child_elements(call)[0];
        let _ = (doc, seq_el);
        n2s(&reparsed, seq2).unwrap()
    }

    #[test]
    fn atomic_values_roundtrip_with_types() {
        let seq = Sequence::from_items(vec![
            Item::Atomic(AtomicValue::Integer(2)),
            Item::Atomic(AtomicValue::Double(3.1)),
            Item::Atomic(AtomicValue::String("Sean Connery".into())),
            Item::Atomic(AtomicValue::Boolean(true)),
            Item::Atomic(AtomicValue::Decimal(Decimal::parse("1.25").unwrap())),
        ]);
        let back = roundtrip(&seq);
        assert_eq!(back.len(), 5);
        for (a, b) in seq.iter().zip(back.iter()) {
            let (x, y) = (a.atomize(), b.atomize());
            assert_eq!(x.atomic_type(), y.atomic_type());
            assert_eq!(x.lexical(), y.lexical());
        }
    }

    #[test]
    fn element_nodes_roundtrip_by_value() {
        let d =
            Arc::new(parse("<films><name>The Rock</name><name>Goldfinger</name></films>").unwrap());
        let films = d.children(d.root())[0];
        let names: Vec<Item> = d
            .children(films)
            .iter()
            .map(|&n| Item::Node(NodeHandle::new(d.clone(), n)))
            .collect();
        let back = roundtrip(&Sequence::from_items(names));
        assert_eq!(back.len(), 2);
        let n0 = back.items()[0].as_node().unwrap();
        assert_eq!(n0.to_xml(), "<name>The Rock</name>");
        // by-value: no parent at the receiver
        assert!(n0.parent().is_none() || n0.parent().unwrap().kind() == NodeKind::Document);
        assert!(xmldom::axes::step(n0, xmldom::axes::Axis::FollowingSibling).is_empty());
    }

    #[test]
    fn marshaled_element_cannot_see_envelope() {
        let d = Arc::new(parse("<x><y/></x>").unwrap());
        let x = d.children(d.root())[0];
        let seq = Sequence::one(Item::Node(NodeHandle::new(d, x)));
        let back = roundtrip(&seq);
        let node = back.items()[0].as_node().unwrap();
        // ancestors stop at the fragment — the SOAP envelope is unreachable
        let ancestors = xmldom::axes::step(node, xmldom::axes::Axis::Ancestor);
        assert!(ancestors.len() <= 1); // at most the fragment document node
    }

    #[test]
    fn text_comment_pi_attribute_roundtrip() {
        let d = Arc::new(parse(r#"<a k="v"><!--c-->text<?t data?></a>"#).unwrap());
        let a = d.children(d.root())[0];
        let comment = d.children(a)[0];
        let text = d.children(a)[1];
        let pi = d.children(a)[2];
        let attr = d.attributes(a)[0];
        let seq = Sequence::from_items(vec![
            Item::Node(NodeHandle::new(d.clone(), comment)),
            Item::Node(NodeHandle::new(d.clone(), text)),
            Item::Node(NodeHandle::new(d.clone(), pi)),
            Item::Node(NodeHandle::new(d.clone(), attr)),
        ]);
        let back = roundtrip(&seq);
        assert_eq!(back.len(), 4);
        assert_eq!(back.items()[0].as_node().unwrap().kind(), NodeKind::Comment);
        assert_eq!(back.items()[0].string_value(), "c");
        assert_eq!(back.items()[1].as_node().unwrap().kind(), NodeKind::Text);
        assert_eq!(back.items()[1].string_value(), "text");
        assert_eq!(
            back.items()[2].as_node().unwrap().kind(),
            NodeKind::ProcessingInstruction
        );
        let attr_back = back.items()[3].as_node().unwrap();
        assert_eq!(attr_back.kind(), NodeKind::Attribute);
        assert_eq!(attr_back.name().unwrap().local, "k");
        assert_eq!(attr_back.string_value(), "v");
    }

    #[test]
    fn document_node_roundtrip() {
        let d = Arc::new(parse("<root><a/></root>").unwrap());
        let seq = Sequence::one(Item::Node(NodeHandle::root(d)));
        let back = roundtrip(&seq);
        let n = back.items()[0].as_node().unwrap();
        assert_eq!(n.kind(), NodeKind::Document);
        assert_eq!(n.to_xml(), "<root><a/></root>");
    }

    #[test]
    fn heterogeneous_sequence_example_from_paper() {
        // "the heterogeneously typed sequence consisting of an integer 2
        //  and double 3.1"
        let seq = Sequence::from_items(vec![
            Item::Atomic(AtomicValue::Integer(2)),
            Item::Atomic(AtomicValue::Double(3.1)),
        ]);
        let (doc, seq_el) = roundtrip_doc(&seq);
        let kids = doc.child_elements(seq_el);
        assert_eq!(doc.attr_local(kids[0], "type"), Some("xs:integer"));
        assert_eq!(doc.attr_local(kids[1], "type"), Some("xs:double"));
        assert_eq!(doc.string_value(kids[0]), "2");
        assert_eq!(doc.string_value(kids[1]), "3.1");
    }

    #[test]
    fn empty_sequence_roundtrip() {
        let back = roundtrip(&Sequence::empty());
        assert!(back.is_empty());
    }

    #[test]
    fn special_characters_in_atomics() {
        let seq = Sequence::one(Item::string("a<b>&\"'c"));
        let back = roundtrip(&seq);
        assert_eq!(back.items()[0].string_value(), "a<b>&\"'c");
    }

    #[test]
    fn user_defined_type_annotation_preserved() {
        // values of user-defined named types keep their xsi:type annotation
        let d = Arc::new(
            parse(
                r#"<v xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance" xsi:type="my:temp">37</v>"#,
            )
            .unwrap(),
        );
        let v = d.children(d.root())[0];
        let seq = Sequence::one(Item::Node(NodeHandle::new(d, v)));
        let back = roundtrip(&seq);
        let n = back.items()[0].as_node().unwrap();
        assert_eq!(n.data().type_annotation.as_deref(), Some("my:temp"));
    }
}
