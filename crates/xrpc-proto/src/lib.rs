//! The SOAP XRPC message format (paper §2.1, §2.2, §3.2).
//!
//! One crate, three concerns:
//! * [`marshal`] — the `s2n()` / `n2s()` functions that turn XDM sequences
//!   into `<xrpc:sequence>` wire fragments and back, enforcing by-value
//!   semantics (fresh fragments, empty upward axes at the receiver);
//! * [`message`] — envelope construction/parsing for requests (with Bulk
//!   RPC: several `<xrpc:call>`s per request), responses (with the
//!   piggybacked participating-peer list of §2.3) and SOAP Faults;
//! * [`validate`] — a structural validator standing in for XRPC.xsd.

pub mod control;
pub mod marshal;
pub mod message;
pub mod validate;

pub use control::{
    TxOutcome, METHOD_ABORT, METHOD_COMMIT, METHOD_INQUIRE, METHOD_PREPARE, WSAT_MODULE,
};
pub use marshal::{n2s, s2n_into};
pub use message::{
    parse_message, FaultCode, ProfileRequest, QueryId, TraceContext, XrpcFault, XrpcMessage,
    XrpcRequest, XrpcResponse,
};
pub use validate::validate_message;
