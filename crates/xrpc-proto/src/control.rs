//! WS-AtomicTransaction control vocabulary (paper §2.3).
//!
//! Coordination messages are ordinary XRPC requests against the reserved
//! module namespace [`WSAT_MODULE`] — "XRPC systems must implement support
//! for these web service interfaces ... over the same HTTP SOAP server
//! that runs XRPC". This module owns the method names and the encoding of
//! the [`Inquire`](METHOD_INQUIRE) reply so every crate (peer runtime,
//! recovery manager, chaos harnesses) speaks the same vocabulary.

use crate::message::XrpcResponse;
use xdm::{Item, Sequence};

/// Reserved module namespace for coordination messages.
pub const WSAT_MODULE: &str = "urn:ws-atomictransaction";

pub const METHOD_PREPARE: &str = "Prepare";
pub const METHOD_COMMIT: &str = "Commit";
pub const METHOD_ABORT: &str = "Abort";
/// Outcome inquiry: a restarted participant holding a prepared ∆_q asks
/// the recorded coordinator what was decided. The reply carries a
/// [`TxOutcome`] as a string item in the first result sequence.
pub const METHOD_INQUIRE: &str = "Inquire";
/// Best-effort cancellation fan-out: the originator of a timed-out or
/// abandoned query tells destination peers to stop evaluating it and
/// release its isolated state. Participants that already acknowledged a
/// `Prepare` ignore the release — past that point of no return only the
/// decision protocol ([`METHOD_COMMIT`]/[`METHOD_ABORT`]/inquiry) may
/// settle the transaction. Idempotent; losing one is harmless (the
/// receiver's own deadline sweep catches up).
pub const METHOD_CANCEL: &str = "Cancel";

/// What a coordinator answers to an `Inquire` — the durable truth about
/// one transaction under the presumed-abort discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// The coordinator's forced commit record exists: commit.
    Committed,
    /// The coordinator knows the transaction aborted — or has no record
    /// of it at all, which under presumed abort means the same thing.
    Aborted,
    /// The transaction is still being coordinated (prepare or decision
    /// delivery in flight): the inquirer must stay prepared and ask
    /// again later.
    InDoubt,
}

impl TxOutcome {
    pub fn as_str(&self) -> &'static str {
        match self {
            TxOutcome::Committed => "committed",
            TxOutcome::Aborted => "aborted",
            TxOutcome::InDoubt => "in-doubt",
        }
    }

    pub fn parse(s: &str) -> Option<TxOutcome> {
        match s {
            "committed" => Some(TxOutcome::Committed),
            "aborted" => Some(TxOutcome::Aborted),
            "in-doubt" => Some(TxOutcome::InDoubt),
            _ => None,
        }
    }

    /// Encode this outcome as the reply to an `Inquire` request.
    pub fn into_response(self) -> XrpcResponse {
        let mut resp = XrpcResponse::new(WSAT_MODULE, METHOD_INQUIRE);
        resp.results
            .push(Sequence::one(Item::string(self.as_str())));
        resp
    }

    /// Decode an outcome from an `Inquire` reply.
    pub fn from_response(resp: &XrpcResponse) -> Option<TxOutcome> {
        let seq = resp.results.first()?;
        let item = seq.items().first()?;
        TxOutcome::parse(&item.string_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{parse_message, XrpcMessage};

    #[test]
    fn outcome_string_roundtrip() {
        for o in [TxOutcome::Committed, TxOutcome::Aborted, TxOutcome::InDoubt] {
            assert_eq!(TxOutcome::parse(o.as_str()), Some(o));
        }
        assert_eq!(TxOutcome::parse("???"), None);
    }

    #[test]
    fn outcome_survives_the_wire() {
        for o in [TxOutcome::Committed, TxOutcome::Aborted, TxOutcome::InDoubt] {
            let xml = o.into_response().to_xml().unwrap();
            let msg = parse_message(&xml).unwrap();
            let XrpcMessage::Response(resp) = msg else {
                panic!("expected a response")
            };
            assert_eq!(resp.module, WSAT_MODULE);
            assert_eq!(resp.method, METHOD_INQUIRE);
            assert_eq!(TxOutcome::from_response(&resp), Some(o));
        }
    }

    #[test]
    fn garbage_response_yields_none() {
        let resp = XrpcResponse::new(WSAT_MODULE, METHOD_INQUIRE);
        assert_eq!(TxOutcome::from_response(&resp), None);
    }
}
