//! Structural validation of XRPC messages — the stand-in for XRPC.xsd
//! schema validation (see DESIGN.md substitution table).

use xdm::{XdmError, XdmResult};
use xmldom::qname::{NS_SOAP_ENV, NS_XRPC};
use xmldom::{Document, NodeId, NodeKind};

/// Validate that `xml` is a well-formed SOAP XRPC message with the exact
/// structure the XRPC.xsd schema prescribes. Returns the kind of message.
pub fn validate_message(xml: &str) -> XdmResult<&'static str> {
    let doc = xmldom::parse(xml).map_err(|e| XdmError::xrpc(format!("not well-formed: {e}")))?;
    let envelope = single_element_child(&doc, doc.root())?;
    expect_name(&doc, envelope, NS_SOAP_ENV, "Envelope")?;
    let elems = doc.child_elements(envelope);
    // Header is optional; Body is required and last.
    let body = match elems.as_slice() {
        [b] => {
            expect_name(&doc, *b, NS_SOAP_ENV, "Body")?;
            *b
        }
        [h, b] => {
            expect_name(&doc, *h, NS_SOAP_ENV, "Header")?;
            expect_name(&doc, *b, NS_SOAP_ENV, "Body")?;
            *b
        }
        _ => return Err(XdmError::xrpc("Envelope must contain [Header,] Body")),
    };
    let payload = single_element_child(&doc, body)?;
    let name = doc
        .node(payload)
        .name
        .clone()
        .ok_or_else(|| XdmError::xrpc("unnamed payload"))?;
    if name.is(NS_XRPC, "request") {
        validate_request(&doc, payload)?;
        Ok("request")
    } else if name.is(NS_XRPC, "response") {
        validate_response(&doc, payload)?;
        Ok("response")
    } else if name.is(NS_SOAP_ENV, "Fault") {
        Ok("fault")
    } else {
        Err(XdmError::xrpc(format!(
            "unexpected payload `{}`",
            name.lexical()
        )))
    }
}

fn validate_request(doc: &Document, req: NodeId) -> XdmResult<()> {
    for a in ["module", "method", "arity"] {
        if doc.attr_local(req, a).is_none() {
            return Err(XdmError::xrpc(format!("request missing @{a}")));
        }
    }
    let arity: usize = doc
        .attr_local(req, "arity")
        .unwrap()
        .parse()
        .map_err(|_| XdmError::xrpc("@arity must be a non-negative integer"))?;
    let mut ncalls = 0;
    for child in doc.child_elements(req) {
        let n = doc.node(child).name.as_ref().unwrap();
        if n.is(NS_XRPC, "queryID") {
            for a in ["host", "timestamp", "timeout"] {
                if doc.attr_local(child, a).is_none() {
                    return Err(XdmError::xrpc(format!("queryID missing @{a}")));
                }
            }
        } else if n.is(NS_XRPC, "call") {
            ncalls += 1;
            let seqs = doc
                .child_elements(child)
                .iter()
                .filter(|&&s| {
                    doc.node(s)
                        .name
                        .as_ref()
                        .is_some_and(|nm| nm.is(NS_XRPC, "sequence"))
                })
                .count();
            if seqs != arity {
                return Err(XdmError::xrpc(format!(
                    "call carries {seqs} sequences, arity is {arity}"
                )));
            }
            for seq in doc.child_elements(child) {
                validate_sequence(doc, seq)?;
            }
        } else {
            return Err(XdmError::xrpc(format!(
                "unexpected request child `{}`",
                n.lexical()
            )));
        }
    }
    if ncalls == 0 {
        return Err(XdmError::xrpc("request must carry at least one call"));
    }
    Ok(())
}

fn validate_response(doc: &Document, resp: NodeId) -> XdmResult<()> {
    for a in ["module", "method"] {
        if doc.attr_local(resp, a).is_none() {
            return Err(XdmError::xrpc(format!("response missing @{a}")));
        }
    }
    for child in doc.child_elements(resp) {
        let n = doc.node(child).name.as_ref().unwrap();
        if n.is(NS_XRPC, "sequence") {
            validate_sequence(doc, child)?;
        } else if !n.is(NS_XRPC, "participatingPeers") {
            return Err(XdmError::xrpc(format!(
                "unexpected response child `{}`",
                n.lexical()
            )));
        }
    }
    Ok(())
}

fn validate_sequence(doc: &Document, seq: NodeId) -> XdmResult<()> {
    const WRAPPERS: &[&str] = &[
        "atomic-value",
        "element",
        "document",
        "text",
        "comment",
        "pi",
        "attribute",
        "nodeid",
    ];
    for v in doc.child_elements(seq) {
        let n = doc.node(v).name.as_ref().unwrap();
        if n.ns_uri.as_deref() != Some(NS_XRPC) || !WRAPPERS.contains(&n.local.as_str()) {
            return Err(XdmError::xrpc(format!(
                "invalid sequence member `{}`",
                n.lexical()
            )));
        }
        if n.local == "atomic-value" && doc.attr_local(v, "type").is_none() {
            return Err(XdmError::xrpc("atomic-value missing xsi:type"));
        }
    }
    Ok(())
}

fn single_element_child(doc: &Document, parent: NodeId) -> XdmResult<NodeId> {
    let elems: Vec<NodeId> = doc
        .children(parent)
        .iter()
        .copied()
        .filter(|&c| doc.kind(c) == NodeKind::Element)
        .collect();
    match elems.as_slice() {
        [one] => Ok(*one),
        _ => Err(XdmError::xrpc("expected exactly one element child")),
    }
}

fn expect_name(doc: &Document, el: NodeId, uri: &str, local: &str) -> XdmResult<()> {
    if doc.node(el).name.as_ref().is_some_and(|n| n.is(uri, local)) {
        Ok(())
    } else {
        Err(XdmError::xrpc(format!("expected {{{uri}}}{local}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{XrpcFault, XrpcRequest, XrpcResponse};
    use xdm::{Item, Sequence};

    #[test]
    fn generated_messages_validate() {
        let mut req = XrpcRequest::new("films", "filmsByActor", 1);
        req.push_call(vec![Sequence::one(Item::string("x"))]);
        assert_eq!(validate_message(&req.to_xml().unwrap()).unwrap(), "request");

        let mut resp = XrpcResponse::new("films", "filmsByActor");
        resp.results.push(Sequence::empty());
        assert_eq!(
            validate_message(&resp.to_xml().unwrap()).unwrap(),
            "response"
        );

        let fault = XrpcFault {
            code: crate::message::FaultCode::Sender,
            reason: "x".into(),
            error_code: None,
        };
        assert_eq!(validate_message(&fault.to_xml()).unwrap(), "fault");
    }

    #[test]
    fn paper_request_example_validates() {
        // the verbatim §2.1 request message (reformatted)
        let xml = r#"<?xml version="1.0" encoding="utf-8"?>
<env:Envelope xmlns:xrpc="http://monetdb.cwi.nl/XQuery"
 xmlns:env="http://www.w3.org/2003/05/soap-envelope"
 xmlns:xs="http://www.w3.org/2001/XMLSchema"
 xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
 xsi:schemaLocation="http://monetdb.cwi.nl/XQuery
 http://monetdb.cwi.nl/XQuery/XRPC.xsd">
<env:Body>
<xrpc:request module="films" method="filmsByActor" arity="1"
 location="http://x.example.org/film.xq">
<xrpc:call>
<xrpc:sequence>
<xrpc:atomic-value xsi:type="xs:string">Sean Connery</xrpc:atomic-value>
</xrpc:sequence>
</xrpc:call>
</xrpc:request>
</env:Body>
</env:Envelope>"#;
        assert_eq!(validate_message(xml).unwrap(), "request");
        match crate::parse_message(xml).unwrap() {
            crate::XrpcMessage::Request(r) => {
                assert_eq!(r.module, "films");
                assert_eq!(r.calls[0][0].items()[0].string_value(), "Sean Connery");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn structural_errors_caught() {
        // missing arity
        let xml = r#"<env:Envelope xmlns:xrpc="http://monetdb.cwi.nl/XQuery"
 xmlns:env="http://www.w3.org/2003/05/soap-envelope">
<env:Body><xrpc:request module="m" method="f"><xrpc:call/></xrpc:request></env:Body>
</env:Envelope>"#;
        assert!(validate_message(xml).is_err());
        // no calls
        let xml2 = r#"<env:Envelope xmlns:xrpc="http://monetdb.cwi.nl/XQuery"
 xmlns:env="http://www.w3.org/2003/05/soap-envelope">
<env:Body><xrpc:request module="m" method="f" arity="0"/></env:Body>
</env:Envelope>"#;
        assert!(validate_message(xml2).is_err());
        // foreign element inside sequence
        let xml3 = r#"<env:Envelope xmlns:xrpc="http://monetdb.cwi.nl/XQuery"
 xmlns:env="http://www.w3.org/2003/05/soap-envelope">
<env:Body><xrpc:request module="m" method="f" arity="1">
<xrpc:call><xrpc:sequence><evil/></xrpc:sequence></xrpc:call>
</xrpc:request></env:Body></env:Envelope>"#;
        assert!(validate_message(xml3).is_err());
    }

    #[test]
    fn header_allowed() {
        let xml = r#"<env:Envelope xmlns:xrpc="http://monetdb.cwi.nl/XQuery"
 xmlns:env="http://www.w3.org/2003/05/soap-envelope">
<env:Header/>
<env:Body><xrpc:request module="m" method="f" arity="0"><xrpc:call/></xrpc:request></env:Body>
</env:Envelope>"#;
        assert_eq!(validate_message(xml).unwrap(), "request");
    }
}
