//! Tests for the `xrpc:nodeid` call-by-fragment protocol extension (paper
//! footnote 4): node parameters that are descendants of another parameter
//! are sent as references, which (a) compresses the message and (b) —
//! unlike plain by-value marshaling — *preserves ancestor/descendant
//! relationships among parameters at the callee*.

use std::sync::Arc;
use xdm::{Item, Sequence};
use xmldom::{parse, NodeHandle};
use xrpc_proto::{parse_message, XrpcMessage, XrpcRequest};

fn film_tree() -> (Arc<xmldom::Document>, NodeHandle, NodeHandle, NodeHandle) {
    let d = Arc::new(
        parse(
            r#"<films><film year="1996"><name>The Rock</name><actor>Sean Connery</actor></film></films>"#,
        )
        .unwrap(),
    );
    let films = d.children(d.root())[0];
    let film = d.children(films)[0];
    let name = d.children(film)[0];
    (
        d.clone(),
        NodeHandle::new(d.clone(), films),
        NodeHandle::new(d.clone(), film),
        NodeHandle::new(d, name),
    )
}

fn roundtrip(req: &XrpcRequest) -> XrpcRequest {
    let xml = req.to_xml().unwrap();
    match parse_message(&xml).unwrap() {
        XrpcMessage::Request(r) => r,
        other => panic!("{other:?}"),
    }
}

#[test]
fn descendant_parameter_becomes_nodeid_reference() {
    let (_d, films, _film, name) = film_tree();
    let mut req = XrpcRequest::new("m", "f", 2);
    req.call_by_fragment = true;
    req.push_call(vec![
        Sequence::one(Item::Node(films)),
        Sequence::one(Item::Node(name)),
    ]);
    let xml = req.to_xml().unwrap();
    assert!(xml.contains("xrpc:nodeid"), "{xml}");
    // the <name> subtree is NOT serialized a second time
    assert_eq!(xml.matches("The Rock").count(), 1);
    assert_eq!(xrpc_proto::validate_message(&xml).unwrap(), "request");
}

#[test]
fn relationship_preserved_at_receiver() {
    let (_d, films, film, name) = film_tree();
    let mut req = XrpcRequest::new("m", "f", 3);
    req.call_by_fragment = true;
    req.push_call(vec![
        Sequence::one(Item::Node(films)),
        Sequence::one(Item::Node(film)),
        Sequence::one(Item::Node(name)),
    ]);
    let back = roundtrip(&req);
    let p0 = back.calls[0][0].items()[0].as_node().unwrap().clone();
    let p1 = back.calls[0][1].items()[0].as_node().unwrap().clone();
    let p2 = back.calls[0][2].items()[0].as_node().unwrap().clone();
    // p1 and p2 resolve INSIDE p0's fragment
    assert!(Arc::ptr_eq(&p0.doc, &p1.doc));
    assert!(Arc::ptr_eq(&p0.doc, &p2.doc));
    // ancestor/descendant relationships survive (the extension's point)
    assert!(xmldom::order::is_ancestor(&p0.doc, p0.id, p2.id));
    assert_eq!(p2.parent().unwrap().id, p1.id);
    assert_eq!(p2.string_value(), "The Rock");
}

#[test]
fn plain_by_value_destroys_relationship() {
    // the §2.2 default behaviour, for contrast
    let (_d, films, _film, name) = film_tree();
    let mut req = XrpcRequest::new("m", "f", 2);
    req.push_call(vec![
        Sequence::one(Item::Node(films)),
        Sequence::one(Item::Node(name)),
    ]);
    let back = roundtrip(&req);
    let p0 = back.calls[0][0].items()[0].as_node().unwrap().clone();
    let p1 = back.calls[0][1].items()[0].as_node().unwrap().clone();
    // <name> was a descendant of <films> at the sender; plain by-value
    // decode must sever that: p1 heads its own fragment, outside p0's
    // subtree (the decoded fragments may share one arena).
    assert!(p1.parent().is_none());
    assert!(
        !Arc::ptr_eq(&p0.doc, &p1.doc) || !xmldom::order::is_ancestor(&p0.doc, p0.id, p1.id),
        "fragments must be separate"
    );
}

#[test]
fn self_reference_and_attribute_paths() {
    let d = Arc::new(parse(r#"<a k="v"><b/></a>"#).unwrap());
    let a = d.children(d.root())[0];
    let attr = d.attributes(a)[0];
    let mut req = XrpcRequest::new("m", "f", 3);
    req.call_by_fragment = true;
    req.push_call(vec![
        Sequence::one(Item::Node(NodeHandle::new(d.clone(), a))),
        // same node again → path ""
        Sequence::one(Item::Node(NodeHandle::new(d.clone(), a))),
        // the attribute → path "@0"
        Sequence::one(Item::Node(NodeHandle::new(d.clone(), attr))),
    ]);
    let xml = req.to_xml().unwrap();
    assert_eq!(xml.matches("xrpc:nodeid").count(), 2);
    let back = roundtrip(&req);
    let p0 = back.calls[0][0].items()[0].as_node().unwrap().clone();
    let p1 = back.calls[0][1].items()[0].as_node().unwrap().clone();
    let p2 = back.calls[0][2].items()[0].as_node().unwrap().clone();
    assert!(
        p0.same_node(&p1),
        "self reference resolves to the same node"
    );
    assert_eq!(p2.kind(), xmldom::NodeKind::Attribute);
    assert_eq!(p2.string_value(), "v");
    assert_eq!(p2.parent().unwrap().id, p0.id);
}

#[test]
fn unrelated_parameters_stay_by_value() {
    let d1 = Arc::new(parse("<x/>").unwrap());
    let d2 = Arc::new(parse("<y/>").unwrap());
    let mut req = XrpcRequest::new("m", "f", 2);
    req.call_by_fragment = true;
    req.push_call(vec![
        Sequence::one(Item::Node(NodeHandle::new(
            d1.clone(),
            d1.children(d1.root())[0],
        ))),
        Sequence::one(Item::Node(NodeHandle::new(
            d2.clone(),
            d2.children(d2.root())[0],
        ))),
    ]);
    let xml = req.to_xml().unwrap();
    assert!(!xml.contains("xrpc:nodeid"));
    let back = roundtrip(&req);
    assert_eq!(back.calls[0].len(), 2);
}

#[test]
fn message_compression_is_real() {
    // a large shared subtree referenced twice: the fragment mode message
    // must be roughly half the size
    let mut inner = String::from("<big>");
    for i in 0..200 {
        inner.push_str(&format!("<row n=\"{i}\">payload {i}</row>"));
    }
    inner.push_str("</big>");
    let d = Arc::new(parse(&format!("<top>{inner}</top>")).unwrap());
    let top = d.children(d.root())[0];
    let big = d.children(top)[0];
    let make = |fragment: bool| {
        let mut req = XrpcRequest::new("m", "f", 2);
        req.call_by_fragment = fragment;
        req.push_call(vec![
            Sequence::one(Item::Node(NodeHandle::new(d.clone(), top))),
            Sequence::one(Item::Node(NodeHandle::new(d.clone(), big))),
        ]);
        req.to_xml().unwrap().len()
    };
    let by_value = make(false);
    let by_fragment = make(true);
    assert!(
        by_fragment * 3 < by_value * 2,
        "fragment mode ({by_fragment} B) should be much smaller than by-value ({by_value} B)"
    );
}

#[test]
fn bulk_calls_reference_within_their_own_call_only() {
    // references are per-call: the second call re-serializes the tree
    let (_d, films, _film, name) = film_tree();
    let mut req = XrpcRequest::new("m", "f", 2);
    req.call_by_fragment = true;
    for _ in 0..2 {
        req.push_call(vec![
            Sequence::one(Item::Node(films.clone())),
            Sequence::one(Item::Node(name.clone())),
        ]);
    }
    let back = roundtrip(&req);
    assert_eq!(back.calls.len(), 2);
    for call in &back.calls {
        let p0 = call[0].items()[0].as_node().unwrap();
        let p1 = call[1].items()[0].as_node().unwrap();
        // within one call, the nodeid reference resolves inside p0's fragment
        assert!(Arc::ptr_eq(&p0.doc, &p1.doc));
        assert!(xmldom::order::is_ancestor(&p0.doc, p0.id, p1.id));
    }
    // the two calls decode to separate fragments (distinct nodes, neither
    // inside the other's subtree), even if they share one arena
    let c0 = back.calls[0][0].items()[0].as_node().unwrap();
    let c1 = back.calls[1][0].items()[0].as_node().unwrap();
    assert!(!c0.same_node(c1));
    if Arc::ptr_eq(&c0.doc, &c1.doc) {
        assert!(!xmldom::order::is_ancestor(&c0.doc, c0.id, c1.id));
        assert!(!xmldom::order::is_ancestor(&c0.doc, c1.id, c0.id));
    }
}
