//! Workload generators: XMark-like documents (persons / auctions), the
//! running-example film database, and payload documents for the
//! throughput experiments.
//!
//! The paper evaluates on XMark data: `persons.xml` (1.1 MB, 250 persons)
//! at the MonetDB peer and `auctions.xml` (50 MB, 4875 closed auctions) at
//! the Saxon peer, with 6 matches between them (§5, Table 4). These
//! generators reproduce the *schema shape* the queries touch and make
//! sizes and match selectivity parameters, so the experiments can be run
//! at laptop scale with the same structure (see DESIGN.md substitutions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Parameters for the persons/auctions pair.
#[derive(Clone, Debug)]
pub struct XmarkParams {
    pub persons: usize,
    pub closed_auctions: usize,
    /// Exactly this many closed auctions reference an existing person id;
    /// the rest reference ids outside the persons document.
    pub matches: usize,
    /// Free-text padding per item, to scale document size.
    pub padding_words: usize,
    pub seed: u64,
}

impl Default for XmarkParams {
    fn default() -> Self {
        // the paper's counts (sizes scaled down via padding_words)
        XmarkParams {
            persons: 250,
            closed_auctions: 4875,
            matches: 6,
            padding_words: 20,
            seed: 42,
        }
    }
}

const WORDS: &[&str] = &[
    "auction", "gold", "silver", "vintage", "rare", "mint", "lot", "bid", "proxy", "estate",
    "antique", "carved", "painted", "signed", "original", "limited", "edition", "classic",
    "ornate", "restored",
];

fn words(rng: &mut StdRng, n: usize, out: &mut String) {
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
}

/// Generate `persons.xml`: `<site><people><person id="personN">...`.
pub fn persons_xml(p: &XmarkParams) -> String {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut out = String::with_capacity(p.persons * (120 + 8 * p.padding_words));
    out.push_str("<site><people>");
    for i in 0..p.persons {
        let _ = write!(
            out,
            r#"<person id="person{i}"><name>Person {i}</name><emailaddress>mailto:person{i}@example.org</emailaddress><profile income="{}"><interest category="category{}"/><education>"#,
            rng.gen_range(10_000..100_000),
            rng.gen_range(0..10),
        );
        words(&mut rng, p.padding_words / 2, &mut out);
        out.push_str("</education></profile></person>");
    }
    out.push_str("</people></site>");
    out
}

/// Generate `auctions.xml`: items plus closed auctions with
/// `<buyer person="..."/>` and `<annotation>`.
pub fn auctions_xml(p: &XmarkParams) -> String {
    let mut rng = StdRng::seed_from_u64(p.seed.wrapping_add(1));
    let mut out = String::with_capacity(p.closed_auctions * (200 + 8 * p.padding_words));
    out.push_str("<site><closed_auctions>");
    // choose which auctions match an existing person (spread evenly)
    let stride = if p.matches > 0 {
        (p.closed_auctions / p.matches.max(1)).max(1)
    } else {
        usize::MAX
    };
    let mut matched = 0usize;
    for i in 0..p.closed_auctions {
        let is_match = matched < p.matches && i % stride == 0;
        let buyer = if is_match {
            matched += 1;
            // reference an existing person id
            format!("person{}", (i / stride) % p.persons.max(1))
        } else {
            format!("absent{i}")
        };
        let _ = write!(
            out,
            r#"<closed_auction><seller person="seller{i}"/><buyer person="{buyer}"/><itemref item="item{i}"/><price>{}</price><date>07/{:02}/2006</date><annotation><description>"#,
            rng.gen_range(1..1000),
            rng.gen_range(1..28),
        );
        words(&mut rng, p.padding_words, &mut out);
        out.push_str("</description></annotation></closed_auction>");
    }
    out.push_str("</closed_auctions></site>");
    out
}

/// The running-example film database (paper §2).
pub fn film_db() -> &'static str {
    r#"<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
<film><name>The Sound of Music</name><actor>Julie Andrews</actor></film>
<film><name>Mary Poppins</name><actor>Julie Andrews</actor></film>
</films>"#
}

/// The film module of the paper's examples.
pub fn film_module() -> &'static str {
    r#"module namespace film = "films";
declare function film:filmsByActor($actor as xs:string) as node()*
{ doc("filmDB.xml")//name[../actor = $actor] };"#
}

/// The echoVoid test module (§3.3).
pub fn test_module() -> &'static str {
    r#"module namespace tst = "test";
declare function tst:echoVoid() { () };
declare function tst:echo($x) { $x };
declare function tst:payload($n as xs:integer) as node()*
{ for $i in (1 to $n) return doc("payload.xml")/payload/chunk };"#
}

/// The getPerson module (§4).
pub fn functions_module() -> &'static str {
    r#"module namespace func = "functions";
declare function func:getPerson($doc as xs:string, $pid as xs:string) as node()?
{ zero-or-one(doc($doc)//person[@id = $pid]) };"#
}

/// An XML payload document of roughly `bytes` serialized size (for the
/// §3.3 throughput experiment: scaling request/response payloads).
pub fn payload_xml(bytes: usize) -> String {
    let chunk =
        "<chunk>0123456789abcdefghijklmnopqrstuvwxyz0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ</chunk>";
    let n = bytes / chunk.len() + 1;
    let mut out = String::with_capacity(bytes + 64);
    out.push_str("<payload>");
    for _ in 0..n {
        out.push_str(chunk);
    }
    out.push_str("</payload>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persons_parse_and_count() {
        let p = XmarkParams {
            persons: 25,
            closed_auctions: 50,
            matches: 3,
            padding_words: 4,
            seed: 1,
        };
        let doc = xmldom::parse(&persons_xml(&p)).unwrap();
        let mut count = 0;
        for id in doc.all_ids() {
            if doc
                .node(id)
                .name
                .as_ref()
                .is_some_and(|n| n.local == "person")
            {
                count += 1;
            }
        }
        assert_eq!(count, 25);
    }

    #[test]
    fn auctions_parse_with_exact_match_count() {
        let p = XmarkParams {
            persons: 25,
            closed_auctions: 50,
            matches: 5,
            padding_words: 4,
            seed: 1,
        };
        let persons = persons_xml(&p);
        let auctions = auctions_xml(&p);
        let pd = xmldom::parse(&persons).unwrap();
        let ad = xmldom::parse(&auctions).unwrap();
        // collect person ids
        let mut ids = std::collections::HashSet::new();
        for id in pd.all_ids() {
            if pd
                .node(id)
                .name
                .as_ref()
                .is_some_and(|n| n.local == "person")
            {
                ids.insert(pd.attr_local(id, "id").unwrap().to_string());
            }
        }
        let mut matches = 0;
        for id in ad.all_ids() {
            if ad
                .node(id)
                .name
                .as_ref()
                .is_some_and(|n| n.local == "buyer")
                && ids.contains(ad.attr_local(id, "person").unwrap())
            {
                matches += 1;
            }
        }
        assert_eq!(matches, 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let p = XmarkParams::default();
        assert_eq!(persons_xml(&p), persons_xml(&p));
        assert_eq!(auctions_xml(&p), auctions_xml(&p));
    }

    #[test]
    fn padding_scales_size() {
        let small = XmarkParams {
            padding_words: 2,
            ..Default::default()
        };
        let big = XmarkParams {
            padding_words: 50,
            ..Default::default()
        };
        assert!(auctions_xml(&big).len() > 2 * auctions_xml(&small).len());
    }

    #[test]
    fn payload_size_approximate() {
        for target in [1024, 100_000] {
            let xml = payload_xml(target);
            assert!(xml.len() >= target);
            assert!(xml.len() < target + 200);
            xmldom::parse(&xml).unwrap();
        }
    }

    #[test]
    fn modules_parse() {
        xqast::parse_library_module(film_module()).unwrap();
        xqast::parse_library_module(test_module()).unwrap();
        xqast::parse_library_module(functions_module()).unwrap();
        xmldom::parse(film_db()).unwrap();
    }
}
