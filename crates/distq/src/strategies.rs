//! The four Q7 strategies of §5 as query generators.
//!
//! Q7 (run at peer A, which stores `persons.xml`; peer B stores
//! `auctions.xml`):
//!
//! ```xquery
//! for $p in doc("persons.xml")//person,
//!     $ca in doc("xrpc://B/auctions.xml")//closed_auction
//! where $p/@id = $ca/buyer/@person
//! return <result>{$p, $ca/annotation}</result>
//! ```

/// The helper module installed at peer B (`functions_b` in the paper, with
/// `Q_B1` for predicate push-down, `Q_B2` for execution relocation and
/// `Q_B3` for the distributed semi-join).
pub const MODULE_B: &str = r#"
module namespace b = "functions_b";

declare function b:Q_B1() as node()*
{ doc("auctions.xml")//closed_auction };

declare function b:Q_B2($personsPeer as xs:string) as node()*
{ for $p in doc(concat($personsPeer, "/persons.xml"))//person,
      $ca in doc("auctions.xml")//closed_auction
  where $p/@id = $ca/buyer/@person
  return <result>{$p, $ca/annotation}</result>
};

declare function b:Q_B3($pid as xs:string) as node()*
{ doc("auctions.xml")//closed_auction[./buyer/@person = $pid] };
"#;

/// One of the §5 execution strategies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// Plain Q7: ship the whole remote document to A (`fn:doc` data
    /// shipping), join locally.
    DataShipping,
    /// Q7_1: push the `//closed_auction` selection to B, join at A.
    PredicatePushdown,
    /// Q7_2: relocate the whole join to B (B data-ships A's persons).
    ExecutionRelocation,
    /// Q7_3: classical distributed semi-join — ship each person id to B,
    /// get back only matching auctions.
    DistributedSemijoin,
}

impl Strategy {
    pub const ALL: [Strategy; 4] = [
        Strategy::DataShipping,
        Strategy::PredicatePushdown,
        Strategy::ExecutionRelocation,
        Strategy::DistributedSemijoin,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Strategy::DataShipping => "data shipping",
            Strategy::PredicatePushdown => "predicate push-down",
            Strategy::ExecutionRelocation => "execution relocation",
            Strategy::DistributedSemijoin => "distributed semi-join",
        }
    }

    /// Generate the query text for this strategy, to be run at peer A.
    /// `b_uri` is B's destination (e.g. `xrpc://b.example.org`); `a_uri`
    /// is A's own URI (needed by execution relocation so B can data-ship
    /// A's persons document).
    pub fn query(self, b_uri: &str, a_uri: &str) -> String {
        match self {
            Strategy::DataShipping => format!(
                r#"for $p in doc("persons.xml")//person,
    $ca in doc("{b_uri}/auctions.xml")//closed_auction
where $p/@id = $ca/buyer/@person
return <result>{{$p, $ca/annotation}}</result>"#
            ),
            Strategy::PredicatePushdown => format!(
                r#"import module namespace b = "functions_b";
for $p in doc("persons.xml")//person,
    $ca in execute at {{"{b_uri}"}} {{b:Q_B1()}}
where $p/@id = $ca/buyer/@person
return <result>{{$p, $ca/annotation}}</result>"#
            ),
            Strategy::ExecutionRelocation => format!(
                r#"import module namespace b = "functions_b";
execute at {{"{b_uri}"}} {{b:Q_B2("{a_uri}")}}"#
            ),
            Strategy::DistributedSemijoin => format!(
                r#"import module namespace b = "functions_b";
for $p in doc("persons.xml")//person
let $ca := execute at {{"{b_uri}"}} {{b:Q_B3(string($p/@id))}}
return if (empty($ca)) then ()
       else <result>{{$p, $ca/annotation}}</result>"#
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_b_parses() {
        let m = xqast::parse_library_module(MODULE_B).unwrap();
        assert_eq!(m.ns_uri, "functions_b");
        assert_eq!(m.prolog.functions.len(), 3);
    }

    #[test]
    fn all_strategy_queries_parse() {
        for s in Strategy::ALL {
            let q = s.query("xrpc://b.example.org", "xrpc://a.example.org");
            xqast::parse_main_module(&q).unwrap_or_else(|e| panic!("{}: {e}\n{q}", s.label()));
        }
    }

    #[test]
    fn xrpc_usage_per_strategy() {
        let b = "xrpc://b";
        let a = "xrpc://a";
        // data shipping has no execute at; the others do
        assert!(
            !xqast::parse_main_module(&Strategy::DataShipping.query(b, a))
                .unwrap()
                .body
                .contains_xrpc()
        );
        for s in [
            Strategy::PredicatePushdown,
            Strategy::ExecutionRelocation,
            Strategy::DistributedSemijoin,
        ] {
            assert!(xqast::parse_main_module(&s.query(b, a))
                .unwrap()
                .body
                .contains_xrpc());
        }
    }
}
