//! Distributed query strategies (paper §5): the four hand-written
//! execution strategies for query Q7 — data shipping, predicate push-down,
//! execution relocation and distributed semi-join — expressed in XRPC,
//! plus the heuristic `fn:doc('xrpc://…')` push-down *rewriter* the paper
//! sketches as the first step toward an automatic distributed optimizer.

pub mod rewrite;
pub mod strategies;

pub use rewrite::{rewrite_doc_pushdown, PushdownRewrite};
pub use strategies::{Strategy, MODULE_B};
