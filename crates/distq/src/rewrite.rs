//! The heuristic push-down rewriter (paper §5, "Predicate Pushdown" /
//! "Advanced Pushdown"): rewrite expressions that depend only on a single
//! `fn:doc('xrpc://p/...')` into remote functions executed at `p`.
//!
//! "Any of the rewrites ... should only be made by an automatic rewriter
//! if it can establish that the call-by-value semantics of XRPC will not
//! compromise the semantics of the query" — so the rewriter only pushes
//! path expressions whose steps navigate strictly *downwards* and carry no
//! focus-independent predicates beyond downward navigation; anything else
//! is left in place (data shipping).

use xqast::{Axis, Expr, FlworClause, FunctionDecl, LibraryModule, MainModule, Name, Prolog};

/// Namespace of the module the rewriter generates for the remote side.
pub const GEN_MODULE_NS: &str = "urn:xrpc-pushdown-gen";
pub const GEN_PREFIX: &str = "pushg";

/// The outcome of a push-down rewrite: the rewritten main module plus the
/// generated library module that must be installed at every pushed-to peer
/// (the automatic-distribution analog of hand-writing `functions_b`).
pub struct PushdownRewrite {
    pub rewritten: MainModule,
    pub generated_module: Option<LibraryModule>,
    pub pushed: usize,
}

/// Rewrite `doc("xrpc://peer/path")//downward-steps` sub-expressions into
/// `execute at {"xrpc://peer"} { pushg:qN() }` calls.
pub fn rewrite_doc_pushdown(module: &MainModule) -> PushdownRewrite {
    let mut gen_fns: Vec<FunctionDecl> = Vec::new();
    let body = rewrite_expr(&module.body, &mut gen_fns);
    let mut prolog = module.prolog.clone();
    let pushed = gen_fns.len();
    let generated_module = if gen_fns.is_empty() {
        None
    } else {
        prolog.module_imports.push(xqast::ModuleImport {
            prefix: GEN_PREFIX.to_string(),
            ns_uri: GEN_MODULE_NS.to_string(),
            at_hints: vec![],
        });
        Some(LibraryModule {
            prefix: GEN_PREFIX.to_string(),
            ns_uri: GEN_MODULE_NS.to_string(),
            prolog: Prolog {
                functions: gen_fns,
                ..Prolog::default()
            },
        })
    };
    PushdownRewrite {
        rewritten: MainModule { prolog, body },
        generated_module,
        pushed,
    }
}

fn rewrite_expr(e: &Expr, gen: &mut Vec<FunctionDecl>) -> Expr {
    // First, try to push this whole expression.
    if let Some((peer, remote_expr)) = pushable(e) {
        let fname = format!("q{}", gen.len());
        gen.push(FunctionDecl {
            name: Name::prefixed(GEN_PREFIX, fname.clone()),
            params: vec![],
            ret: None,
            body: remote_expr,
            updating: false,
        });
        return Expr::ExecuteAt {
            dest: Box::new(Expr::Literal(xdm::AtomicValue::String(peer))),
            call: Box::new(Expr::FunctionCall {
                name: Name::prefixed(GEN_PREFIX, fname),
                args: vec![],
            }),
        };
    }
    // Otherwise recurse structurally (covering the shapes the rewriter
    // realistically meets: FLWOR, sequences, conditionals, constructors
    // stay untouched inside).
    match e {
        Expr::Flwor { clauses, ret } => Expr::Flwor {
            clauses: clauses
                .iter()
                .map(|c| match c {
                    FlworClause::For { var, pos_var, seq } => FlworClause::For {
                        var: var.clone(),
                        pos_var: pos_var.clone(),
                        seq: rewrite_expr(seq, gen),
                    },
                    FlworClause::Let { var, value } => FlworClause::Let {
                        var: var.clone(),
                        value: rewrite_expr(value, gen),
                    },
                    other => other.clone(),
                })
                .collect(),
            ret: Box::new(rewrite_expr(ret, gen)),
        },
        Expr::Sequence(es) => Expr::Sequence(es.iter().map(|x| rewrite_expr(x, gen)).collect()),
        Expr::If { cond, then, els } => Expr::If {
            cond: Box::new(rewrite_expr(cond, gen)),
            then: Box::new(rewrite_expr(then, gen)),
            els: Box::new(rewrite_expr(els, gen)),
        },
        other => other.clone(),
    }
}

/// Is `e` a pushable expression? Returns (peer URI, the expression to run
/// remotely, with the doc() call rebased to the peer-local path).
fn pushable(e: &Expr) -> Option<(String, Expr)> {
    // match a path whose leftmost leaf is doc("xrpc://…") and whose steps
    // are all downward & safe
    let (peer, rebased) = rebase_doc_path(e)?;
    if path_is_downward_only(&rebased) {
        Some((peer, rebased))
    } else {
        None
    }
}

/// Find `doc("xrpc://peer/path")` at the left end of a path expression and
/// rebuild the same expression with `doc("path")` instead.
fn rebase_doc_path(e: &Expr) -> Option<(String, Expr)> {
    match e {
        Expr::FunctionCall { name, args }
            if name.local == "doc"
                && (name.prefix.is_none() || name.prefix.as_deref() == Some("fn"))
                && args.len() == 1 =>
        {
            if let Expr::Literal(xdm::AtomicValue::String(uri)) = &args[0] {
                if let Some(rest) = uri.strip_prefix("xrpc://") {
                    let (host, path) = rest.split_once('/')?;
                    return Some((
                        format!("xrpc://{host}"),
                        Expr::FunctionCall {
                            name: name.clone(),
                            args: vec![Expr::Literal(xdm::AtomicValue::String(path.to_string()))],
                        },
                    ));
                }
            }
            None
        }
        Expr::PathStep(lhs, rhs) => {
            let (peer, new_lhs) = rebase_doc_path(lhs)?;
            Some((peer, Expr::PathStep(Box::new(new_lhs), rhs.clone())))
        }
        Expr::Filter(base, preds) => {
            let (peer, new_base) = rebase_doc_path(base)?;
            Some((peer, Expr::Filter(Box::new(new_base), preds.clone())))
        }
        _ => None,
    }
}

/// Call-by-value safety check: every axis step in the pushed expression
/// must navigate downwards (child/descendant/self/attribute), and no node
/// comparisons may appear (they depend on node identity).
fn path_is_downward_only(e: &Expr) -> bool {
    let mut ok = true;
    e.walk(&mut |x| match x {
        Expr::AxisStep { axis, .. }
            if !matches!(
                axis,
                Axis::Child
                    | Axis::Descendant
                    | Axis::DescendantOrSelf
                    | Axis::SelfAxis
                    | Axis::Attribute
            ) =>
        {
            ok = false;
        }
        Expr::NodeComp(..) => ok = false,
        Expr::Root(_) => ok = false,
        _ => {}
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqast::{parse_main_module, pretty_print};

    fn rewrite(q: &str) -> (String, Option<String>, usize) {
        let m = parse_main_module(q).unwrap();
        let r = rewrite_doc_pushdown(&m);
        let body = pretty_print(&r.rewritten.body);
        let module = r
            .generated_module
            .as_ref()
            .map(xqast::pretty::pretty_print_library);
        (body, module, r.pushed)
    }

    #[test]
    fn pushes_downward_path_on_remote_doc() {
        let (body, module, pushed) =
            rewrite(r#"for $ca in doc("xrpc://B/auctions.xml")//closed_auction return $ca"#);
        assert_eq!(pushed, 1);
        assert!(body.contains("execute at {\"xrpc://B\"}"));
        assert!(body.contains("pushg:q0()"));
        let module = module.unwrap();
        assert!(module.contains("doc(\"auctions.xml\")"));
        assert!(module.contains("closed_auction"));
        // generated module parses
        xqast::parse_library_module(&module).unwrap();
    }

    #[test]
    fn leaves_local_docs_alone() {
        let (body, module, pushed) = rewrite(r#"for $p in doc("persons.xml")//person return $p"#);
        assert_eq!(pushed, 0);
        assert!(module.is_none());
        assert!(!body.contains("execute at"));
    }

    #[test]
    fn refuses_upward_navigation() {
        // parent axis inside the pushed path would break call-by-value
        let (body, _, pushed) = rewrite(r#"doc("xrpc://B/a.xml")//name/../actor"#);
        assert_eq!(pushed, 0, "upward step must not be pushed: {body}");
    }

    #[test]
    fn refuses_node_identity_predicates() {
        let (_, _, pushed) = rewrite(r#"for $x in doc("xrpc://B/a.xml")//a[. is /a] return $x"#);
        assert_eq!(pushed, 0);
    }

    #[test]
    fn pushes_predicates_with_value_comparisons() {
        let (body, module, pushed) =
            rewrite(r#"doc("xrpc://B/auctions.xml")//closed_auction[price > 100]"#);
        assert_eq!(pushed, 1);
        assert!(body.contains("execute at"));
        assert!(module.unwrap().contains("price"));
    }

    #[test]
    fn multiple_remote_docs_get_separate_functions() {
        let (body, module, pushed) =
            rewrite(r#"(doc("xrpc://B/a.xml")//x, doc("xrpc://C/b.xml")//y)"#);
        assert_eq!(pushed, 2);
        assert!(body.contains("xrpc://B"));
        assert!(body.contains("xrpc://C"));
        let m = module.unwrap();
        assert!(m.contains("pushg:q0"));
        assert!(m.contains("pushg:q1"));
    }

    #[test]
    fn rewritten_query_parses_and_roundtrips() {
        let m = parse_main_module(
            r#"for $p in doc("persons.xml")//person,
                   $ca in doc("xrpc://B/auctions.xml")//closed_auction
               where $p/@id = $ca/buyer/@person
               return <result>{$p, $ca/annotation}</result>"#,
        )
        .unwrap();
        let r = rewrite_doc_pushdown(&m);
        assert_eq!(r.pushed, 1);
        let text = pretty_print(&r.rewritten.body);
        parse_main_module(&text).unwrap();
    }
}
