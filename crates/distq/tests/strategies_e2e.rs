//! End-to-end §5: all four Q7 strategies on a MonetDB-role peer (rel
//! engine) + a Saxon-role wrapped engine, joined by the simulated network.
//! Every strategy must return the same matches; their network footprints
//! must differ exactly the way the paper describes.

use distq::{Strategy, MODULE_B};
use std::sync::Arc;
use xdm::{Item, Sequence};
use xmark::XmarkParams;
use xrpc_net::{NetProfile, SimNetwork};
use xrpc_peer::{EngineKind, Peer, XrpcWrapper};

const A_URI: &str = "xrpc://a.example.org";
const B_URI: &str = "xrpc://b.example.org";

struct Cluster {
    net: Arc<SimNetwork>,
    a: Arc<Peer>,
    b: Arc<XrpcWrapper>,
}

fn cluster() -> Cluster {
    let params = XmarkParams {
        persons: 50,
        closed_auctions: 400,
        matches: 6,
        padding_words: 6,
        seed: 7,
    };
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));

    // peer A: rel engine, persons.xml
    let a = Peer::new(A_URI, EngineKind::Rel);
    a.add_document("persons.xml", &xmark::persons_xml(&params))
        .unwrap();
    a.register_module(MODULE_B).unwrap();
    a.set_transport(net.clone());
    net.register(A_URI, a.soap_handler());

    // peer B: wrapped plain engine, auctions.xml (+ outgoing doc fetch for
    // execution relocation)
    let b = XrpcWrapper::new();
    b.docs.insert(
        "auctions.xml",
        xmldom::parse(&xmark::auctions_xml(&params)).unwrap(),
    );
    b.modules.register_source(MODULE_B).unwrap();
    b.enable_remote_docs(net.clone());
    net.register(B_URI, b.soap_handler());

    Cluster { net, a, b }
}

fn count_results(seq: &Sequence) -> usize {
    seq.iter()
        .filter(|i| match i {
            Item::Node(n) => n.name().is_some_and(|q| q.local == "result"),
            _ => false,
        })
        .count()
}

#[test]
fn all_strategies_agree_on_the_join_result() {
    for strategy in Strategy::ALL {
        let c = cluster();
        let q = strategy.query(B_URI, A_URI);
        let res =
            c.a.execute(&q)
                .unwrap_or_else(|e| panic!("{}: {e}", strategy.label()));
        assert_eq!(
            count_results(&res),
            6,
            "{} must find the 6 paper matches",
            strategy.label()
        );
        // every result carries the person and the annotation
        for item in res.iter() {
            let xml = match item {
                Item::Node(n) => n.to_xml(),
                _ => continue,
            };
            assert!(xml.contains("<annotation>"), "{}: {xml}", strategy.label());
            assert!(xml.contains("person"), "{}: {xml}", strategy.label());
        }
    }
}

#[test]
fn semijoin_ships_least_data() {
    // Data shipping must move (far) more bytes than the semi-join — the
    // qualitative Table 4 relationship.
    let bytes_for = |strategy: Strategy| -> u64 {
        let c = cluster();
        c.net.metrics.reset();
        c.a.execute(&strategy.query(B_URI, A_URI)).unwrap();
        let m = c.net.metrics.snapshot();
        m.bytes_sent + m.bytes_received
    };
    let shipping = bytes_for(Strategy::DataShipping);
    let pushdown = bytes_for(Strategy::PredicatePushdown);
    let semijoin = bytes_for(Strategy::DistributedSemijoin);
    assert!(
        shipping > semijoin,
        "data shipping ({shipping}B) must move more than semi-join ({semijoin}B)"
    );
    assert!(
        pushdown > semijoin,
        "push-down ({pushdown}B) must move more than semi-join ({semijoin}B)"
    );
}

#[test]
fn semijoin_uses_one_bulk_request() {
    let c = cluster();
    let out =
        c.a.execute_detailed(&Strategy::DistributedSemijoin.query(B_URI, A_URI))
            .unwrap();
    // loop-lifting turns the per-person call into ONE bulk request with 50
    // calls (one per person)
    assert_eq!(out.requests_sent, 1);
    assert_eq!(out.calls_sent, 50);
    assert_eq!(c.b.phases().requests, 1);
}

#[test]
fn execution_relocation_runs_join_at_b() {
    let c = cluster();
    let out =
        c.a.execute_detailed(&Strategy::ExecutionRelocation.query(B_URI, A_URI))
            .unwrap();
    assert_eq!(count_results(&out.result), 6);
    // A sent exactly one call; B fetched persons.xml back from A
    assert_eq!(out.calls_sent, 1);
    use std::sync::atomic::Ordering::Relaxed;
    assert!(
        c.a.stats.requests_handled.load(Relaxed) >= 1,
        "B must have fetched persons.xml from A"
    );
}

#[test]
fn pushdown_rewriter_turns_data_shipping_into_pushdown() {
    // the automatic rewriter applied to the plain Q7 yields a query that
    // still computes the right answer, with the remote scan pushed to B
    let c = cluster();
    let q = Strategy::DataShipping.query(B_URI, A_URI);
    let parsed = xqast::parse_main_module(&q).unwrap();
    let rewritten = distq::rewrite_doc_pushdown(&parsed);
    assert_eq!(rewritten.pushed, 1);

    // install the generated module at both sides
    let gen = xqast::pretty::pretty_print_library(rewritten.generated_module.as_ref().unwrap());
    c.a.register_module(&gen).unwrap();
    c.b.modules.register_source(&gen).unwrap();

    let text = {
        let mut s = String::new();
        // re-print the rewritten main module
        for imp in &rewritten.rewritten.prolog.module_imports {
            s.push_str(&format!(
                "import module namespace {} = \"{}\";\n",
                imp.prefix, imp.ns_uri
            ));
        }
        s.push_str(&xqast::pretty_print(&rewritten.rewritten.body));
        s
    };
    let res = c.a.execute(&text).unwrap();
    assert_eq!(count_results(&res), 6);
}
