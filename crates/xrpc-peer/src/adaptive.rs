//! Feedback-driven adaptive bulk sizing.
//!
//! The paper's experiments (§4, Table 3) fix the bulk evaluation strategy
//! per run; this module replaces the static `set_bulk_threads` knob with a
//! small controller that *measures* per-call cost and chooses, per batch:
//!
//! * **server side** — how many worker threads to evaluate one incoming
//!   read-only Bulk RPC request with ([`AdaptiveBulk::eval_threads`]).
//!   The rule: one extra thread per [`TARGET_MICROS_PER_THREAD`] of
//!   estimated batch work (per-call EWMA × batch size), capped by the
//!   machine's parallelism and the batch size. A cold controller (no
//!   observations yet) keeps the paper's sequential loop.
//! * **client side** — whether to split one large read-only bulk dispatch
//!   into a few concurrently-shipped chunks
//!   ([`AdaptiveBulk::dispatch_chunks`]), fed by the per-destination
//!   round-trip EWMA the transport layer collects
//!   (`xrpc_net::DestStats::note_calls`). Splitting only pays once a
//!   batch's estimated remote time is tens of milliseconds, so small or
//!   cheap batches always stay a single message (the paper's Bulk RPC
//!   sweet spot).
//!
//! Convergence: both estimates are EWMAs with α = 1/8, so the controller
//! settles within a few dozen batches and tracks drift (e.g. a document
//! growing) within a few hundred calls.
//!
//! `set_bulk_threads(n)` still exists as an explicit override: it *pins*
//! the controller ([`AdaptiveBulk::pin`]), exactly like the reactor's
//! `accept_poll_interval` override in `xrpc-net`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Estimated batch work (µs) that justifies one evaluation worker thread.
/// Spawning a scoped thread + cache-cold evaluation state costs on the
/// order of tens of µs; a 500 µs share keeps the spawn overhead under a
/// few percent.
pub const TARGET_MICROS_PER_THREAD: u64 = 500;

/// Estimated remote time (µs) one dispatched chunk should carry. Splitting
/// a bulk message only pays when the destination will chew on it for tens
/// of milliseconds; below this the extra round trips/headers lose.
pub const CHUNK_TARGET_MICROS: u64 = 25_000;

/// Never split a dispatch into more chunks than this: each chunk costs a
/// sender thread blocked on I/O and a server-side handler.
pub const MAX_DISPATCH_CHUNKS: usize = 4;

/// Don't bother splitting batches smaller than this.
pub const MIN_SPLIT_CALLS: usize = 8;

/// Hard cap on server-side evaluation workers, whatever the machine says.
const MAX_EVAL_THREADS: usize = 16;

/// EWMA update with α = 1/8 over a µs×16 fixed-point cell (the ×16 keeps
/// sub-µs per-call costs from rounding to zero and freezing the EWMA).
fn ewma_update(cell: &AtomicU64, sample_x16: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = if cur == 0 {
            sample_x16.max(1)
        } else {
            (cur - cur / 8 + sample_x16 / 8).max(1)
        };
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
}

/// A point-in-time view of the controller (for `/metrics` and tests).
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveSnapshot {
    /// `Some(n)`: pinned by `set_bulk_threads(n)`; `None`: adaptive.
    pub pinned: Option<usize>,
    /// Per-call service-time estimate, µs (0 = cold).
    pub ewma_call_micros: u64,
    /// What `eval_threads` chose last.
    pub last_threads: usize,
    /// Total `eval_threads` decisions taken.
    pub decisions: u64,
    /// Decisions that chose > 1 worker.
    pub parallel_decisions: u64,
    /// Batches / individual calls fed back through `observe`.
    pub observed_batches: u64,
    pub observed_calls: u64,
    /// Client dispatches that were split into chunks.
    pub split_dispatches: u64,
}

/// The per-peer bulk-sizing controller. Cheap enough to consult on every
/// request: a handful of relaxed atomic reads.
pub struct AdaptiveBulk {
    /// 0 = adaptive; n > 0 = pinned override (`set_bulk_threads(n)`).
    pinned: AtomicUsize,
    /// Per-call *service time* EWMA (µs ×16): wall time × workers ÷ calls,
    /// fed by [`observe`](Self::observe) after each evaluated batch.
    ewma_call_micros_x16: AtomicU64,
    last_threads: AtomicUsize,
    pub decisions: AtomicU64,
    pub parallel_decisions: AtomicU64,
    pub observed_batches: AtomicU64,
    pub observed_calls: AtomicU64,
    pub split_dispatches: AtomicU64,
    /// min(available cores, [`MAX_EVAL_THREADS`]) — resolved once.
    max_threads: usize,
}

impl AdaptiveBulk {
    pub fn new() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        AdaptiveBulk {
            pinned: AtomicUsize::new(0),
            ewma_call_micros_x16: AtomicU64::new(0),
            last_threads: AtomicUsize::new(1),
            decisions: AtomicU64::new(0),
            parallel_decisions: AtomicU64::new(0),
            observed_batches: AtomicU64::new(0),
            observed_calls: AtomicU64::new(0),
            split_dispatches: AtomicU64::new(0),
            max_threads: cores.min(MAX_EVAL_THREADS),
        }
    }

    /// Pin the worker count (the `set_bulk_threads` override). `n` is
    /// taken as given — tests pin past the core count on purpose.
    pub fn pin(&self, n: usize) {
        self.pinned.store(n.max(1), Ordering::SeqCst);
    }

    /// Return to feedback-driven sizing.
    pub fn unpin(&self) {
        self.pinned.store(0, Ordering::SeqCst);
    }

    pub fn pinned(&self) -> Option<usize> {
        match self.pinned.load(Ordering::SeqCst) {
            0 => None,
            n => Some(n),
        }
    }

    /// Per-call service-time estimate in µs (0 until the first batch).
    pub fn ewma_call_micros(&self) -> u64 {
        self.ewma_call_micros_x16.load(Ordering::Relaxed) / 16
    }

    /// How many worker threads to evaluate an incoming read-only bulk
    /// batch of `ncalls` with. Sequential (1) when pinned there, when the
    /// controller is cold, or when the estimated batch work doesn't cover
    /// a thread's [`TARGET_MICROS_PER_THREAD`] share.
    pub fn eval_threads(&self, ncalls: usize) -> usize {
        self.decisions.fetch_add(1, Ordering::Relaxed);
        let chosen = match self.pinned() {
            Some(n) => n,
            None => {
                let ewma = self.ewma_call_micros();
                if ewma == 0 || ncalls < 2 {
                    1
                } else {
                    let batch_micros = ewma.saturating_mul(ncalls as u64);
                    ((batch_micros / TARGET_MICROS_PER_THREAD) as usize).clamp(1, self.max_threads)
                }
            }
        };
        let chosen = chosen.min(ncalls).max(1);
        self.last_threads.store(chosen, Ordering::Relaxed);
        if chosen > 1 {
            self.parallel_decisions.fetch_add(1, Ordering::Relaxed);
        }
        chosen
    }

    /// Feed back one evaluated batch: `calls` calls took `elapsed` wall
    /// time on `threads` workers. The per-call *service* time is
    /// `elapsed × threads ÷ calls` — wall time alone would make a
    /// parallel batch look cheaper than it is and ratchet the thread
    /// count up without bound.
    pub fn observe(&self, calls: usize, elapsed: Duration, threads: usize) {
        if calls == 0 {
            return;
        }
        self.observed_batches.fetch_add(1, Ordering::Relaxed);
        self.observed_calls
            .fetch_add(calls as u64, Ordering::Relaxed);
        let per_call_x16 = (elapsed.as_micros() as u64)
            .saturating_mul(threads.max(1) as u64)
            .saturating_mul(16)
            / (calls as u64);
        ewma_update(&self.ewma_call_micros_x16, per_call_x16);
    }

    /// How many concurrently-shipped chunks to split a *read-only* bulk
    /// dispatch of `ncalls` into, given the destination's per-call
    /// round-trip EWMA (µs, from `DestStats`; 0 = unknown). Returns 1
    /// (one message — the paper's Bulk RPC default) unless the batch is
    /// both large and provably slow at this destination.
    pub fn dispatch_chunks(&self, ncalls: usize, dest_call_micros: u64) -> usize {
        if self.pinned().is_some() || ncalls < MIN_SPLIT_CALLS || dest_call_micros == 0 {
            return 1;
        }
        let remote_micros = dest_call_micros.saturating_mul(ncalls as u64);
        let chunks = (remote_micros / CHUNK_TARGET_MICROS) as usize;
        chunks
            .clamp(1, MAX_DISPATCH_CHUNKS)
            // every chunk must still be a real batch
            .min(ncalls / (MIN_SPLIT_CALLS / 2))
            .max(1)
    }

    pub fn snapshot(&self) -> AdaptiveSnapshot {
        AdaptiveSnapshot {
            pinned: self.pinned(),
            ewma_call_micros: self.ewma_call_micros(),
            last_threads: self.last_threads.load(Ordering::Relaxed),
            decisions: self.decisions.load(Ordering::Relaxed),
            parallel_decisions: self.parallel_decisions.load(Ordering::Relaxed),
            observed_batches: self.observed_batches.load(Ordering::Relaxed),
            observed_calls: self.observed_calls.load(Ordering::Relaxed),
            split_dispatches: self.split_dispatches.load(Ordering::Relaxed),
        }
    }
}

impl Default for AdaptiveBulk {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_controller_stays_sequential() {
        let a = AdaptiveBulk::new();
        assert_eq!(a.eval_threads(1000), 1);
        assert_eq!(a.snapshot().parallel_decisions, 0);
    }

    #[test]
    fn pin_overrides_and_unpin_restores() {
        let a = AdaptiveBulk::new();
        a.pin(8);
        assert_eq!(a.eval_threads(100), 8);
        assert_eq!(a.eval_threads(3), 3); // still capped by the batch
        a.unpin();
        assert_eq!(a.pinned(), None);
        assert_eq!(a.eval_threads(100), 1); // cold again → sequential
    }

    #[test]
    fn warm_controller_scales_with_batch_work() {
        let a = AdaptiveBulk::new();
        // 100 calls in 100ms sequential → 1ms per call
        for _ in 0..32 {
            a.observe(100, Duration::from_millis(100), 1);
        }
        let ewma = a.ewma_call_micros();
        assert!((900..=1100).contains(&ewma), "ewma = {ewma}");
        let t = a.eval_threads(100);
        // 100ms of work / 500µs per thread = 200 → capped by the machine
        assert_eq!(
            t,
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_EVAL_THREADS)
                .min(100)
        );
        // a tiny batch stays sequential even when calls are expensive:
        // 1 call × 1ms = 2 threads' worth, but capped by ncalls
        assert_eq!(a.eval_threads(1), 1);
    }

    #[test]
    fn cheap_calls_never_fan_out() {
        let a = AdaptiveBulk::new();
        for _ in 0..32 {
            a.observe(1000, Duration::from_millis(1), 1); // 1µs per call
        }
        assert_eq!(a.eval_threads(100), 1); // 100µs of work < 500µs share
    }

    #[test]
    fn observe_normalizes_by_worker_count() {
        let a = AdaptiveBulk::new();
        // 100 calls, 25ms wall on 4 workers = 1ms service time per call
        for _ in 0..32 {
            a.observe(100, Duration::from_millis(25), 4);
        }
        let ewma = a.ewma_call_micros();
        assert!((900..=1100).contains(&ewma), "ewma = {ewma}");
    }

    #[test]
    fn dispatch_chunks_gates_on_size_and_cost() {
        let a = AdaptiveBulk::new();
        assert_eq!(a.dispatch_chunks(100, 0), 1); // unknown dest
        assert_eq!(a.dispatch_chunks(4, 10_000), 1); // too few calls
        assert_eq!(a.dispatch_chunks(100, 100), 1); // 10ms total: one message
        assert_eq!(a.dispatch_chunks(100, 1000), 4); // 100ms total: max split
        assert_eq!(a.dispatch_chunks(100, 500), 2); // 50ms total: two chunks
        a.pin(8);
        assert_eq!(a.dispatch_chunks(100, 1000), 1); // pinned = no surprises
    }

    #[test]
    fn ewma_tracks_drift() {
        let a = AdaptiveBulk::new();
        for _ in 0..64 {
            a.observe(10, Duration::from_millis(10), 1); // 1ms per call
        }
        for _ in 0..64 {
            a.observe(10, Duration::from_micros(100), 1); // now 10µs per call
        }
        assert!(a.ewma_call_micros() < 20, "ewma = {}", a.ewma_call_micros());
    }
}
