//! Data shipping: `fn:doc("xrpc://peer/path")` fetches a remote document
//! (paper §1: "XQuery only provides a data shipping model ... fn:doc()
//! fetches an XML document from a remote peer").
//!
//! Fetching rides on the XRPC protocol itself through a reserved module
//! ([`DOC_MODULE`]) every peer serves natively, so no separate wire format
//! is needed and the same metrics/latency model applies.

use crate::client::XrpcClient;
use std::sync::Arc;
use xdm::{Item, Sequence, XdmError, XdmResult};
use xmldom::Document;
use xqeval::context::{DocResolver, FunctionRef};
use xqeval::RpcDispatcher;

/// Reserved module namespace for document fetch.
pub const DOC_MODULE: &str = "urn:xrpc-doc";
pub const DOC_METHOD: &str = "get";

/// A resolver that answers `xrpc://host/path` URIs by fetching from the
/// remote peer, delegating everything else to the local resolver.
///
/// Fetched documents are cached for the lifetime of the resolver (one
/// query): re-evaluating `doc()` inside a for-loop must not re-ship the
/// document, and within one query the same URI must yield the *same* node
/// identities (XQuery requires `doc()` to be stable).
pub struct RemoteDocResolver {
    pub local: Arc<dyn DocResolver>,
    pub client: Arc<XrpcClient>,
    cache: parking_lot::Mutex<std::collections::HashMap<String, Arc<Document>>>,
}

impl RemoteDocResolver {
    pub fn new(local: Arc<dyn DocResolver>, client: Arc<XrpcClient>) -> Arc<Self> {
        Arc::new(RemoteDocResolver {
            local,
            client,
            cache: parking_lot::Mutex::new(std::collections::HashMap::new()),
        })
    }
}

impl DocResolver for RemoteDocResolver {
    fn resolve(&self, uri: &str) -> XdmResult<Arc<Document>> {
        if !uri.starts_with("xrpc://") {
            return self.local.resolve(uri);
        }
        if let Some(d) = self.cache.lock().get(uri) {
            return Ok(d.clone());
        }
        let (host, path) = xqeval::functions::split_xrpc_url(uri);
        let func = FunctionRef {
            module_ns: DOC_MODULE.to_string(),
            location_hint: None,
            local_name: DOC_METHOD.to_string(),
            arity: 1,
            updating: false,
        };
        let mut results =
            self.client
                .dispatch(&host, &func, vec![vec![Sequence::one(Item::string(path))]])?;
        let seq = results
            .pop()
            .ok_or_else(|| XdmError::xrpc("empty doc-fetch response"))?;
        match seq.singleton()? {
            Item::Node(n) => {
                let doc = materialize_document(n, uri);
                self.cache.lock().insert(uri.to_string(), doc.clone());
                Ok(doc)
            }
            _ => Err(XdmError::xrpc("doc fetch returned a non-node")),
        }
    }

    fn put(&self, uri: &str, doc: Document) -> XdmResult<()> {
        self.local.put(uri, doc)
    }

    fn replace(&self, uri: &str, doc: Arc<Document>) -> XdmResult<()> {
        self.local.replace(uri, doc)
    }
}

/// Turn a fetched node into a standalone `Document` whose slot-0 root *is*
/// the document root (the `fn:doc` contract). Decoded response nodes live as
/// detached fragments inside the shared message arena, so a fragment root
/// must be copied out into its own arena; a node that already heads its
/// arena is shared as-is.
fn materialize_document(n: &xmldom::NodeHandle, uri: &str) -> Arc<Document> {
    if n.id == n.doc.root() {
        return n.doc.clone();
    }
    let mut fresh = Document::with_node_capacity(n.doc.subtree_size(n.id));
    fresh.uri = Some(uri.to_string());
    let root = fresh.root();
    if n.kind() == xmldom::NodeKind::Document {
        let kids = n.doc.node(n.id).children.clone();
        for c in kids {
            let imported = fresh.import_subtree(&n.doc, c);
            fresh.append_child(root, imported);
        }
    } else {
        let imported = fresh.import_subtree(&n.doc, n.id);
        fresh.append_child(root, imported);
    }
    Arc::new(fresh)
}
