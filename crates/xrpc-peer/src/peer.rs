//! The peer: one XQuery database node speaking XRPC on both sides.

use crate::adaptive::AdaptiveBulk;
use crate::client::XrpcClient;
use crate::store::{Decision, QuerySnapshot, SnapshotManager};
use crate::twopc::{
    self, CommitOutcome, TwoPcConfig, TwoPcMetrics, METHOD_ABORT, METHOD_CANCEL, METHOD_COMMIT,
    METHOD_INQUIRE, METHOD_PREPARE, WSAT_MODULE,
};
use crate::wal::{self, Wal, WalRecord};
use parking_lot::{Mutex, RwLock};
use relalg::{FunctionCache, PlanCache};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdm::types::ItemKind;
use xdm::{Item, Sequence, XdmError, XdmResult};
use xqast::FunctionDecl;
use xqeval::context::{CancelToken, DocResolver, Environment, StaticContext};
use xqeval::eval::{Ctx, EvalState, Evaluator};
use xqeval::modules::CompiledModule;
use xqeval::pul::{apply_updates, PendingUpdateList};
use xqeval::{CompiledMain, InMemoryDocs, ModuleRegistry};
use xrpc_net::{
    crash_points, BreakerConfig, CrashSwitch, ResilientTransport, RetryPolicy, Transport,
};
use xrpc_obs::{
    trace_id_from, Observability, Phase, ProfileCollector, ProfileMode, QueryProfile, SlowLog,
    SlowLogConfig, SlowLogEntry, TraceContext,
};
use xrpc_proto::{
    parse_message, QueryId, TxOutcome, XrpcFault, XrpcMessage, XrpcRequest, XrpcResponse,
};

/// Which engine executes queries and incoming requests at this peer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// Tree-walking (the "Saxon" role).
    Tree,
    /// Loop-lifted relational (the "MonetDB/XQuery" role) — generates Bulk
    /// RPC for `execute at` in loops.
    Rel,
}

/// Isolation level for a query (paper §2.2): `declare option
/// xrpc:isolation "none" | "repeatable"`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IsolationLevel {
    None,
    Repeatable,
}

/// Peer-side counters for the experiment harness.
#[derive(Default, Debug)]
pub struct PeerStats {
    pub requests_handled: AtomicU64,
    pub calls_handled: AtomicU64,
    pub functions_prepared: AtomicU64,
    pub control_messages: AtomicU64,
    /// Bulk requests whose calls were evaluated by the parallel worker
    /// pool (read-only bulk with `set_bulk_threads(n > 1)`).
    pub parallel_bulk_requests: AtomicU64,
}

/// The prepared artifact the function cache stores: the function
/// definition plus the static context of its module.
pub struct PreparedFunction {
    pub decl: Arc<FunctionDecl>,
    pub sctx: StaticContext,
}

/// Plan-cache key: (normalized query text, static-context fingerprint).
/// The text part covers everything the query declares for itself (its
/// prolog is in the text); the fingerprint covers the *ambient* static
/// context the peer compiles it in — module registry generation, peer
/// default base URI / collation, engine kind (see
/// [`Peer::plan_fingerprint`]).
pub type PlanKey = (String, u64);

/// The compile-once artifact the plan cache stores: the parsed module plus
/// its resolved static context (behind `Arc`s, so execution shares rather
/// than clones), and the execution options derived from the prolog —
/// everything `execute` needs except the dynamic context.
pub struct QueryPlan {
    pub compiled: CompiledMain,
    pub isolation: IsolationLevel,
    pub timeout_secs: u32,
    /// `declare option xrpc:profile "off" | "on" | "full"` — whether
    /// executions of this plan collect a distributed profile.
    pub profile: ProfileMode,
    /// FNV-1a of the normalized query text (the slow-query log's stable
    /// query identity — the log never stores raw query text).
    pub text_hash: u64,
    /// What compiling this plan cost, split at the parser boundary. A
    /// plan-cache hit skips both; the profile's parse/compile phases are
    /// charged only on the miss that actually paid them.
    pub parse_micros: u64,
    pub compile_micros: u64,
}

/// A handle to a cached plan, returned by [`Peer::prepare`]. Executing it
/// ([`Peer::execute_prepared`]) skips parse + static analysis entirely —
/// parameters ride the query's `declare variable $x ... external`
/// declarations. The handle keeps its plan alive even across cache
/// eviction or invalidation (the plan is an `Arc` snapshot), so results
/// stay self-consistent; re-`prepare` to pick up module changes.
pub struct PreparedQuery {
    pub(crate) plan: Arc<QueryPlan>,
}

impl PreparedQuery {
    pub fn isolation(&self) -> IsolationLevel {
        self.plan.isolation
    }
    pub fn timeout_secs(&self) -> u32 {
        self.plan.timeout_secs
    }
    pub fn plan_profile(&self) -> ProfileMode {
        self.plan.profile
    }
}

/// Outcome details of a top-level query execution.
pub struct ExecOutcome {
    pub result: Sequence,
    pub isolation: IsolationLevel,
    pub commit: Option<CommitOutcome>,
    pub requests_sent: u64,
    pub calls_sent: u64,
    /// The assembled cross-peer profile, when the query ran with
    /// `xrpc:profile` on (or via [`Peer::explain_analyze`]).
    pub profile: Option<QueryProfile>,
}

/// `(qid.host, qid.timestamp_millis)` — how coordination maps key a
/// transaction without cloning the whole `QueryId`.
pub(crate) type TxKey = (String, u64);

/// A recovered commit decision still owed to its participants: the
/// queryID to redeliver under and the full participant list.
pub(crate) type RedeliverEntry = (QueryId, Vec<String>);

/// One XRPC peer.
pub struct Peer {
    /// This peer's `xrpc://host[:port]` URI (settable after construction,
    /// e.g. once an ephemeral HTTP port is known).
    name: RwLock<String>,
    pub engine: EngineKind,
    pub docs: Arc<InMemoryDocs>,
    pub modules: Arc<ModuleRegistry>,
    module_sources: RwLock<HashMap<String, String>>,
    pub snapshots: SnapshotManager,
    transport: RwLock<Option<Arc<dyn Transport>>>,
    /// The resilience decorator installed by [`set_transport`]/
    /// [`set_transport_with`], kept typed so the admin surface can read
    /// its per-destination stats and breaker states (the `dyn Transport`
    /// in `transport` erases them).
    ///
    /// [`set_transport`]: Self::set_transport
    /// [`set_transport_with`]: Self::set_transport_with
    resilient: RwLock<Option<Arc<ResilientTransport>>>,
    /// Tracer + named latency/size histograms for this peer; threaded
    /// through the client stub, the request handlers, 2PC and the WAL.
    pub obs: Arc<Observability>,
    pub function_cache: FunctionCache<PreparedFunction>,
    /// Compiled plans for top-level queries, keyed by (normalized text,
    /// ambient-static-context fingerprint) — repeated query shapes skip
    /// parse + static analysis (the generalization of the paper's §3.3
    /// function cache to whole queries). Disable for the engine-tree
    /// fidelity mode (compile every query).
    pub plan_cache: PlanCache<PlanKey, QueryPlan>,
    /// Peer-level default static context applied to queries that don't
    /// declare their own `base-uri` / `default collation`. Part of the
    /// plan-cache fingerprint.
    base_uri: RwLock<Option<String>>,
    default_collation: RwLock<Option<String>>,
    /// The feedback-driven bulk-sizing controller (see [`crate::adaptive`]):
    /// chooses server-side eval parallelism per incoming bulk batch and
    /// client-side dispatch chunking per destination.
    pub adaptive: Arc<AdaptiveBulk>,
    pub stats: PeerStats,
    /// Default `xrpc:timeout` seconds when a query does not declare one.
    pub default_timeout_secs: u32,
    /// Opt into the distributed-optimizer behaviours (invariant hoisting,
    /// duplicate bulk-call collapsing) for queries run at this peer.
    rpc_optimize: std::sync::atomic::AtomicBool,
    /// The write-ahead coordination log, when durability is enabled (see
    /// `recovery::attach_wal`). Peers without one keep the pre-durability
    /// behavior: prepared state is volatile, a crash forgets it.
    pub(crate) wal: RwLock<Option<Arc<Wal>>>,
    /// Deterministic crash injection for the chaos harness. `None` in
    /// production: the checks compile down to one RwLock read.
    pub(crate) crash_switch: RwLock<Option<Arc<CrashSwitch>>>,
    /// 2PC observability, both roles (next to the transport's NetMetrics).
    pub twopc_metrics: TwoPcMetrics,
    /// Coordinator tuning for queries originated here.
    pub(crate) twopc_config: RwLock<TwoPcConfig>,
    /// queryIDs this peer is *currently* coordinating — `Inquire` answers
    /// `InDoubt` for these (no decision has been durably taken yet).
    pub(crate) coordinating: Mutex<HashSet<TxKey>>,
    /// In-memory mirror of durably-logged commit decisions (fed by the
    /// commit point and by WAL replay) — what `Inquire` answers
    /// `Committed` from. Anything in neither map is presumed aborted.
    pub(crate) coord_committed: Mutex<HashMap<TxKey, Vec<String>>>,
    /// Commit decisions recovered from the log that still lack a
    /// `CoordinatorEnd`: participants that must be re-told to commit.
    pub(crate) coord_redeliver: Mutex<HashMap<TxKey, RedeliverEntry>>,
    /// Coordinator addresses recorded in recovered `Prepared` records,
    /// consulted by the in-doubt resolver (falls back to `qid.host`).
    pub(crate) recovered_coordinators: Mutex<HashMap<TxKey, String>>,
    /// Transactions this peer was coordinating when it crashed —
    /// recovered `CoordinatorBegin` records with no durable commit
    /// decision. Presumed abort already makes them aborted; the re-abort
    /// sweep proactively re-tells the participants so their prepared ∆s
    /// (and locks) release without waiting for an inquiry.
    pub(crate) coord_reabort: Mutex<HashMap<TxKey, RedeliverEntry>>,
    /// Timestamp generator for locally-originated queryIDs: strictly
    /// monotonic past the wall clock, because two queries starting in the
    /// same millisecond would alias to one `(host, millis)` transaction
    /// at every peer they touch.
    last_qid_ts: AtomicU64,
    /// Cancel tokens for evaluations currently running at this peer on
    /// behalf of a remote query, keyed by that query's transaction key.
    /// A `Cancel` control message flips every token for its key, which
    /// the evaluator's cooperative checkpoints observe within one
    /// checkpoint stride. Entries are removed when the evaluation
    /// finishes (success or error) — the map only ever holds in-flight
    /// work.
    pub(crate) active_evals: Mutex<HashMap<TxKey, Vec<Arc<CancelToken>>>>,
    /// Monotone counts of evaluations stopped by a deadline (XRPC0004)
    /// and by an explicit cancel (XRPC0005), rendered on `/metrics` as
    /// the `xrpc_cancellations_total{kind=...}` counter.
    pub cancellations_deadline: AtomicU64,
    pub cancellations_cancelled: AtomicU64,
    /// The always-on slow-query log: every top-level execution reports its
    /// phase totals here, and those over the threshold are appended to a
    /// bounded in-memory ring served on `GET /slowlog` (see
    /// `xrpc_obs::slowlog`). Recording never blocks the request path.
    pub slowlog: Arc<SlowLog>,
}

/// Removes a call-handler's cancel token from [`Peer::active_evals`] when
/// the evaluation finishes — by any path, including the handler's many
/// `?` early returns.
struct EvalRegistration<'a> {
    peer: &'a Peer,
    key: TxKey,
    token: Arc<CancelToken>,
}

impl Drop for EvalRegistration<'_> {
    fn drop(&mut self) {
        let mut map = self.peer.active_evals.lock();
        if let Some(v) = map.get_mut(&self.key) {
            v.retain(|t| !Arc::ptr_eq(t, &self.token));
            if v.is_empty() {
                map.remove(&self.key);
            }
        }
    }
}

impl Peer {
    pub fn new(name: impl Into<String>, engine: EngineKind) -> Arc<Self> {
        Self::new_with_docs(name, engine, Arc::new(InMemoryDocs::new()))
    }

    /// Construct a peer over an existing document store. This is how the
    /// chaos/recovery tests model a restart: the document store stands in
    /// for the durable database (updates are only ever applied atomically
    /// between crash points), while all *coordination* state — snapshots,
    /// prepared ∆s, decisions — starts empty and must be re-entered from
    /// the WAL.
    pub fn new_with_docs(
        name: impl Into<String>,
        engine: EngineKind,
        docs: Arc<InMemoryDocs>,
    ) -> Arc<Self> {
        let name = name.into();
        let obs = Observability::new(&name);
        Arc::new(Peer {
            name: RwLock::new(name),
            engine,
            docs,
            modules: Arc::new(ModuleRegistry::new()),
            module_sources: RwLock::new(HashMap::new()),
            snapshots: SnapshotManager::new(),
            transport: RwLock::new(None),
            resilient: RwLock::new(None),
            obs,
            function_cache: FunctionCache::new(true),
            plan_cache: PlanCache::new(true),
            base_uri: RwLock::new(None),
            default_collation: RwLock::new(None),
            adaptive: Arc::new(AdaptiveBulk::new()),
            stats: PeerStats::default(),
            default_timeout_secs: 30,
            rpc_optimize: std::sync::atomic::AtomicBool::new(false),
            wal: RwLock::new(None),
            crash_switch: RwLock::new(None),
            twopc_metrics: TwoPcMetrics::new(),
            twopc_config: RwLock::new(TwoPcConfig::default()),
            coordinating: Mutex::new(HashSet::new()),
            coord_committed: Mutex::new(HashMap::new()),
            coord_redeliver: Mutex::new(HashMap::new()),
            recovered_coordinators: Mutex::new(HashMap::new()),
            coord_reabort: Mutex::new(HashMap::new()),
            last_qid_ts: AtomicU64::new(0),
            active_evals: Mutex::new(HashMap::new()),
            cancellations_deadline: AtomicU64::new(0),
            cancellations_cancelled: AtomicU64::new(0),
            slowlog: SlowLog::new(SlowLogConfig::default()),
        })
    }

    /// The peer's write-ahead log, when one is attached.
    pub fn wal(&self) -> Option<Arc<Wal>> {
        self.wal.read().clone()
    }

    /// Arm deterministic crash injection (chaos harness only). Forwarded
    /// to the attached WAL so its internal crash points (group-commit
    /// fsync, mid-rotation) share the same switch.
    pub fn set_crash_switch(&self, sw: Arc<CrashSwitch>) {
        if let Some(w) = self.wal() {
            w.set_crash_switch(sw.clone());
        }
        *self.crash_switch.write() = Some(sw);
    }

    /// A strictly-monotonic queryID timestamp: wall-clock millis, bumped
    /// past the previous value when queries start within one millisecond.
    pub(crate) fn next_qid_ts(&self) -> u64 {
        let now = crate::now_millis();
        let prev = self
            .last_qid_ts
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |prev| {
                Some(now.max(prev + 1))
            })
            .unwrap_or(0);
        now.max(prev + 1)
    }

    /// Tune the 2PC coordinator for queries originated at this peer.
    pub fn set_twopc_config(&self, config: TwoPcConfig) {
        *self.twopc_config.write() = config;
    }

    /// Simulate a crash *mid-request* at `point` if the switch is armed
    /// for it: the error propagates up, and the attached `SimNetwork`
    /// suppresses the response so the caller sees an ambiguous timeout.
    fn crash_mid(&self, point: &str) -> XdmResult<()> {
        if let Some(sw) = self.crash_switch.read().as_ref() {
            if sw.hit(point) {
                return Err(XdmError::xrpc(format!("simulated crash at {point}")));
            }
        }
        Ok(())
    }

    /// Simulate a crash *after* the current request completes: the
    /// response is still delivered, then the peer is down. Returns
    /// whether the switch fired (so the caller can tag its span).
    fn crash_after(&self, point: &str) -> bool {
        if let Some(sw) = self.crash_switch.read().as_ref() {
            return sw.hit_after(point);
        }
        false
    }

    /// **Deprecated** in favor of the feedback-driven controller (see
    /// [`crate::adaptive`]): bulk sizing is now adaptive by default — the
    /// controller reads per-call latency feedback and chooses the worker
    /// count per batch, so there is nothing to hand-tune. Calling this
    /// *pins* the controller to exactly `n` workers for every read-only
    /// bulk request (the explicit-override escape hatch, mirroring the
    /// reactor's `accept_poll_interval` override). Use
    /// [`set_bulk_adaptive`](Self::set_bulk_adaptive) to unpin.
    ///
    /// Responses are merged back in call order whatever the completion
    /// order, so callers observe identical results; updating bulk
    /// requests always stay sequential (their ∆s must compose in call
    /// order).
    pub fn set_bulk_threads(&self, n: usize) {
        self.adaptive.pin(n);
    }

    /// Return bulk sizing to the feedback-driven controller (the default;
    /// undoes a [`set_bulk_threads`](Self::set_bulk_threads) pin).
    pub fn set_bulk_adaptive(&self) {
        self.adaptive.unpin();
    }

    /// Enable/disable the distributed-optimizer behaviours (loop-invariant
    /// `execute at` hoisting + duplicate-call collapsing).
    pub fn set_rpc_optimize(&self, on: bool) {
        self.rpc_optimize.store(on, Ordering::SeqCst);
    }

    pub fn name(&self) -> String {
        self.name.read().clone()
    }

    /// Rename the peer (used when its network address is only known after
    /// binding a server socket).
    pub fn set_name(&self, name: impl Into<String>) {
        *self.name.write() = name.into();
    }

    /// Install the transport used for *outgoing* XRPC calls, wrapped in a
    /// [`ResilientTransport`] with conservative retry/breaker defaults.
    /// Use [`set_transport_with`](Self::set_transport_with) to tune, or
    /// [`set_transport_raw`](Self::set_transport_raw) to skip wrapping
    /// (e.g. when passing an already-resilient transport).
    pub fn set_transport(&self, t: Arc<dyn Transport>) {
        self.set_transport_with(t, RetryPolicy::conservative(), BreakerConfig::default());
    }

    /// Install the outgoing transport with explicit resilience settings.
    pub fn set_transport_with(
        &self,
        t: Arc<dyn Transport>,
        policy: RetryPolicy,
        breaker: BreakerConfig,
    ) {
        let rt = ResilientTransport::with_policy(t, policy, breaker);
        *self.resilient.write() = Some(rt.clone());
        *self.transport.write() = Some(rt);
    }

    /// Install the outgoing transport without resilience wrapping.
    pub fn set_transport_raw(&self, t: Arc<dyn Transport>) {
        *self.resilient.write() = None;
        *self.transport.write() = Some(t);
    }

    pub fn transport(&self) -> Option<Arc<dyn Transport>> {
        self.transport.read().clone()
    }

    /// The typed resilience decorator, when [`set_transport`]/
    /// [`set_transport_with`] installed one — the admin surface reads
    /// per-destination latency/retry stats and breaker states from it.
    ///
    /// [`set_transport`]: Self::set_transport
    /// [`set_transport_with`]: Self::set_transport_with
    pub fn resilient_transport(&self) -> Option<Arc<ResilientTransport>> {
        self.resilient.read().clone()
    }

    /// Load a document into the store.
    pub fn add_document(&self, uri: &str, xml: &str) -> XdmResult<()> {
        let doc =
            xmldom::parse_with_uri(xml, uri).map_err(|e| XdmError::doc_error(e.to_string()))?;
        self.docs.insert(uri, doc);
        Ok(())
    }

    /// Register a library module (retaining the source so the
    /// no-function-cache mode can re-translate it per request, §3.3).
    pub fn register_module(&self, source: &str) -> XdmResult<String> {
        let ns = self.modules.register_source(source)?;
        self.module_sources
            .write()
            .insert(ns.clone(), source.to_string());
        // Registering (or reloading) a module changes what cached plans
        // would compile to. The registry's generation bump already makes
        // stale keys unreachable; the explicit invalidation also frees
        // the stale entries (and is the observable contract).
        self.plan_cache.invalidate();
        Ok(ns)
    }

    /// Set the peer-level default base URI applied to queries that don't
    /// declare their own `declare base-uri`. Affects `fn:doc` resolution,
    /// and (being part of the plan-cache fingerprint) compiled plans for
    /// the old default stop being reachable.
    pub fn set_base_uri(&self, uri: Option<String>) {
        *self.base_uri.write() = uri;
    }

    pub fn base_uri(&self) -> Option<String> {
        self.base_uri.read().clone()
    }

    /// Set the peer-level default collation (same fingerprint rules as
    /// [`set_base_uri`](Self::set_base_uri)).
    pub fn set_default_collation(&self, uri: Option<String>) {
        *self.default_collation.write() = uri;
    }

    pub fn default_collation(&self) -> Option<String> {
        self.default_collation.read().clone()
    }

    /// Toggle the query plan cache. `false` selects the engine-tree
    /// fidelity mode: every query compiles from scratch (results must be
    /// byte-identical to the cached path — the cache may only ever be a
    /// performance observation).
    pub fn set_plan_cache_enabled(&self, on: bool) {
        self.plan_cache.set_enabled(on);
    }

    /// A SOAP handler closure for transports (SimNetwork / HttpServer).
    pub fn soap_handler(self: &Arc<Self>) -> xrpc_net::SoapHandler {
        let peer = self.clone();
        Arc::new(move |body: &[u8]| peer.handle_soap(body))
    }

    /// Handle one incoming SOAP message; always answers with a SOAP
    /// message (response or fault) — §2.1's error contract.
    pub fn handle_soap(&self, body: &[u8]) -> Vec<u8> {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => {
                return XrpcFault::from_error(&XdmError::xrpc("request is not UTF-8"))
                    .to_xml()
                    .into_bytes()
            }
        };
        match self.handle_message(text) {
            // serialize into a recycled transport buffer, pre-reserved from
            // the response's estimated wire size (the server returns the
            // buffer to the pool once it hits the socket)
            Ok(resp) => {
                let mut out = xrpc_net::BufferPool::global().get_string(resp.estimated_wire_size());
                match resp.write_xml(&mut out) {
                    Ok(()) => out.into_bytes(),
                    Err(e) => XrpcFault::from_error(&e).to_xml().into_bytes(),
                }
            }
            Err(e) => XrpcFault::from_error(&e).to_xml().into_bytes(),
        }
    }

    fn handle_message(&self, text: &str) -> XdmResult<XrpcResponse> {
        let parse_started = Instant::now();
        let req = match parse_message(text)? {
            XrpcMessage::Request(r) => r,
            _ => return Err(XdmError::xrpc("expected an xrpc:request")),
        };
        let parse_micros = parse_started.elapsed().as_micros() as u64;
        // Continue the caller's trace (the context parsed from the
        // envelope header) — or start a fresh root for an untraced
        // request. The span's context and this peer's tracer stay
        // ambient for everything the request triggers: nested client
        // dispatches, 2PC control handling, the engines.
        let _tracer = xrpc_obs::set_current_tracer(Some(self.obs.tracer.clone()));
        let mut span = match req.trace {
            Some(parent) => self.obs.tracer.child_span("server:handle", parent),
            None => self.obs.tracer.span_here("server:handle"),
        };
        span.tag("module", &req.module);
        span.tag("method", &req.method);
        self.obs
            .histogram("xrpc_message_bytes")
            .record(text.len() as u64);
        let out = if req.module == WSAT_MODULE {
            self.handle_control(&req)
        } else if req.module == crate::remote_docs::DOC_MODULE {
            self.handle_doc_fetch(&req)
        } else {
            // identifies a redelivered (transport-retried) request
            // byte-for-byte; only deferred updating calls consult it, so
            // spare the read-only hot path the full-message scan
            let request_hash = if req.deferred {
                fnv1a(text.as_bytes())
            } else {
                0
            };
            self.handle_call_request(req, request_hash, parse_micros)
        };
        if let Err(e) = &out {
            span.tag("error", e.to_string());
        }
        self.obs
            .histogram("xrpc_server_handle_micros")
            .record_micros(span.elapsed());
        out
    }

    /// WS-AtomicTransaction participant side (§2.3).
    fn handle_control(&self, req: &XrpcRequest) -> XdmResult<XrpcResponse> {
        self.stats.control_messages.fetch_add(1, Ordering::Relaxed);
        let qid = req
            .query_id
            .as_ref()
            .ok_or_else(|| XdmError::xrpc("coordination message without queryID"))?;
        // Every branch below is idempotent: the coordinator's decision
        // redelivery (and transport-level retries) may deliver any control
        // message more than once, and a participant must converge on the
        // same outcome rather than error on the replay.
        match req.method.as_str() {
            METHOD_PREPARE => {
                let mut span = self.obs.tracer.span_here("2pc:prepare");
                let snap = self.snapshots.get(qid)?;
                let mut prepared = snap.prepared.lock();
                if !*prepared {
                    // "It logs the union of the pending update lists to
                    // stable storage, ensuring q can commit later" —
                    // compatibility is the only thing that can refuse here.
                    snap.pul.lock().check_compatibility()?;
                    // A crash here is the presumed-abort case: nothing was
                    // logged, the ack is never sent, the coordinator
                    // aborts, and restart recovery finds no record.
                    if let Err(e) = self.crash_mid(crash_points::BEFORE_PREPARE_LOG) {
                        span.tag("crash_point", crash_points::BEFORE_PREPARE_LOG);
                        return Err(e);
                    }
                    // Force ∆_q + who to ask after a restart *before* the
                    // ack makes the promise.
                    if let Some(w) = self.wal() {
                        let delta = wal::serialize_pul(&snap.pul.lock())?;
                        let mut ws = self.obs.tracer.span_here("wal:force");
                        ws.tag("record", "prepared");
                        let lsn = w.append(&WalRecord::Prepared {
                            qid: qid.clone(),
                            coordinator: qid.host.clone(),
                            delta,
                        })?;
                        // the LSN this ∆ was logged under is the mark the
                        // apply will be guarded by (idempotent re-apply)
                        *snap.prepared_lsn.lock() = Some(lsn);
                    }
                    *prepared = true;
                    *snap.prepared_at.lock() = Some(Instant::now());
                }
                // re-Prepare of a prepared query: still prepared, answer OK
                drop(prepared);
                self.twopc_metrics.prepares.fetch_add(1, Ordering::Relaxed);
                // The ∆ is durable and the ack will be delivered — then
                // the peer dies holding prepared state (the in-doubt case
                // recovery must resolve by inquiry).
                if self.crash_after(crash_points::AFTER_PREPARE_ACK) {
                    span.tag("crash_point", crash_points::AFTER_PREPARE_ACK);
                }
                self.obs
                    .histogram("xrpc_twopc_prepare_micros")
                    .record_micros(span.elapsed());
            }
            METHOD_COMMIT => {
                let mut span = self.obs.tracer.span_here("2pc:commit");
                match self.snapshots.get(qid) {
                    Ok(snap) => {
                        if !*snap.prepared.lock() {
                            return Err(XdmError::xrpc("Commit before Prepare"));
                        }
                        // applyUpdates(∆_q) exactly once, even under concurrent
                        // redelivery: the `decided` slot is claimed before the
                        // apply and never released.
                        let mut decided = snap.decided.lock();
                        match *decided {
                            Some(Decision::Committed) => {}
                            Some(Decision::Aborted) => {
                                return Err(XdmError::xrpc("Commit after Abort"))
                            }
                            None => {
                                // Force the decision before acting on it, so a
                                // crash in the gap re-applies instead of
                                // forgetting a committed ∆.
                                if let Some(w) = self.wal() {
                                    let mut ws = self.obs.tracer.span_here("wal:force");
                                    ws.tag("record", "decision-committed");
                                    w.append(&WalRecord::Decision {
                                        qid: qid.clone(),
                                        decision: Decision::Committed,
                                    })?;
                                }
                                if let Err(e) = self.crash_mid(crash_points::AFTER_DECISION_LOG) {
                                    span.tag("crash_point", crash_points::AFTER_DECISION_LOG);
                                    return Err(e);
                                }
                                let pul = snap.pul.lock().clone();
                                let mark = *snap.prepared_lsn.lock();
                                self.apply_pul_marked(&pul, qid, mark)?;
                                *decided = Some(Decision::Committed);
                                // A crash in this gap leaves a committed
                                // decision with no Applied marker: restart
                                // replay re-drives the apply, which the
                                // applied-LSN mark turns into a no-op.
                                if let Err(e) =
                                    self.crash_mid(crash_points::AFTER_APPLY_BEFORE_MARKER)
                                {
                                    span.tag(
                                        "crash_point",
                                        crash_points::AFTER_APPLY_BEFORE_MARKER,
                                    );
                                    return Err(e);
                                }
                                if let Some(w) = self.wal() {
                                    w.append(&WalRecord::Applied {
                                        qid: qid.clone(),
                                        mark: mark.unwrap_or(0),
                                    })?;
                                }
                                self.twopc_metrics.commits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        drop(decided);
                        self.snapshots.finish_with(qid, Decision::Committed);
                    }
                    Err(e) => match self.snapshots.completed_decision(qid) {
                        // redelivered Commit after the snapshot was released:
                        // ∆_q is already applied, acknowledge again
                        Some(Decision::Committed) => {}
                        Some(Decision::Aborted) => {
                            return Err(XdmError::xrpc("Commit after Abort"))
                        }
                        None => return Err(e),
                    },
                }
                self.obs
                    .histogram("xrpc_twopc_commit_micros")
                    .record_micros(span.elapsed());
            }
            METHOD_ABORT => {
                let _span = self.obs.tracer.span_here("2pc:abort");
                // releases the snapshot; also used as end-of-query for
                // read-only repeatable queries. An Abort for an unknown or
                // already-finished query is acknowledged (presumed abort).
                if let Ok(snap) = self.snapshots.get(qid) {
                    // quiesce the prepared record (abort decisions need no
                    // durability of their own — absence of a commit record
                    // *is* the abort record — but the append retires the
                    // Prepared entry so the log can checkpoint)
                    if *snap.prepared.lock() && snap.decided.lock().is_none() {
                        if let Some(w) = self.wal() {
                            w.append(&WalRecord::Decision {
                                qid: qid.clone(),
                                decision: Decision::Aborted,
                            })?;
                        }
                    }
                    self.snapshots.finish_with(qid, Decision::Aborted);
                    self.twopc_metrics.aborts.fetch_add(1, Ordering::Relaxed);
                }
            }
            METHOD_INQUIRE => {
                // Coordinator side: a restarted participant holding a
                // prepared ∆ asks what was decided.
                let mut span = self.obs.tracer.span_here("2pc:inquire");
                self.twopc_metrics.inquiries.fetch_add(1, Ordering::Relaxed);
                let outcome = self.coordinator_outcome(qid);
                span.tag("outcome", format!("{outcome:?}"));
                return Ok(outcome.into_response());
            }
            METHOD_CANCEL => {
                // Best-effort stand-down from the originator: its budget
                // ran out (or its client vanished), so stop any in-flight
                // evaluations for this transaction and release the
                // snapshot — *unless* this participant has already
                // promised via Prepare, in which case the ∆ is durable
                // and only the decision protocol (Commit/Abort/Inquire)
                // may settle it. Idempotent: unknown qids just ack.
                let mut span = self.obs.tracer.span_here("2pc:cancel");
                self.twopc_metrics.cancels.fetch_add(1, Ordering::Relaxed);
                let tx_key = (qid.host.clone(), qid.timestamp_millis);
                let tokens: Vec<Arc<CancelToken>> = self
                    .active_evals
                    .lock()
                    .get(&tx_key)
                    .cloned()
                    .unwrap_or_default();
                span.tag("evals_cancelled", tokens.len().to_string());
                for t in &tokens {
                    t.cancel();
                }
                if let Ok(snap) = self.snapshots.get(qid) {
                    if *snap.prepared.lock() {
                        // point of no return: the promise stands
                        span.tag("outcome", "prepared-ignored");
                    } else {
                        self.snapshots.finish_with(qid, Decision::Aborted);
                        span.tag("outcome", "released");
                    }
                }
            }
            other => return Err(XdmError::xrpc(format!("unknown control method `{other}`"))),
        }
        let mut resp = XrpcResponse::new(WSAT_MODULE, req.method.clone());
        resp.results.push(Sequence::empty());
        Ok(resp)
    }

    /// What this peer, as coordinator, durably knows about `qid` — the
    /// presumed-abort answer to an `Inquire`.
    pub(crate) fn coordinator_outcome(&self, qid: &QueryId) -> TxOutcome {
        let key = (qid.host.clone(), qid.timestamp_millis);
        // the forced commit record is the decision, even if delivery (and
        // the coordinating entry's removal) is still in flight
        if self.coord_committed.lock().contains_key(&key) {
            return TxOutcome::Committed;
        }
        if self.coordinating.lock().contains(&key) {
            return TxOutcome::InDoubt;
        }
        // no commit record, not in flight: presumed abort
        TxOutcome::Aborted
    }

    /// Serve `fn:doc` data-shipping fetches (reserved module, see
    /// `remote_docs`). Respects the queryID snapshot when present.
    fn handle_doc_fetch(&self, req: &XrpcRequest) -> XdmResult<XrpcResponse> {
        self.stats.requests_handled.fetch_add(1, Ordering::Relaxed);
        let resolver: Arc<dyn DocResolver> = match &req.query_id {
            Some(qid) => self
                .snapshots
                .get_or_pin(qid, || self.docs.snapshot())?
                .resolver(),
            None => self.docs.clone(),
        };
        let mut resp = XrpcResponse::new(req.module.clone(), req.method.clone());
        for call in &req.calls {
            let path = call
                .first()
                .and_then(|s| s.first())
                .map(|i| i.string_value())
                .ok_or_else(|| XdmError::xrpc("doc fetch without a path"))?;
            let doc = resolver.resolve(&path)?;
            resp.results
                .push(Sequence::one(Item::Node(xmldom::NodeHandle::root(doc))));
        }
        resp.participating_peers = vec![self.name()];
        Ok(resp)
    }

    /// Handle an XRPC function-call request (possibly Bulk).
    fn handle_call_request(
        &self,
        req: XrpcRequest,
        request_hash: u64,
        parse_micros: u64,
    ) -> XdmResult<XrpcResponse> {
        let handle_started = Instant::now();
        // Continue the caller's profile when the request header asks for
        // one: this hop collects its own operator tree/phases and returns
        // them (plus any hops *it* gathered downstream) in the response.
        let collector = req
            .profile
            .as_ref()
            .filter(|p| p.mode.is_on())
            .map(|p| ProfileCollector::new(p.mode, &self.name(), &p.via, p.depth));
        if let Some(col) = &collector {
            col.add_phase(Phase::Parse, parse_micros);
        }
        self.stats.requests_handled.fetch_add(1, Ordering::Relaxed);
        self.stats
            .calls_handled
            .fetch_add(req.calls.len() as u64, Ordering::Relaxed);
        self.obs
            .histogram("xrpc_bulk_batch_calls")
            .record(req.calls.len() as u64);

        // The caller's remaining budget, already decremented for network
        // time at every hop. A budget exhausted on arrival is rejected
        // here, before preparing the function or pinning a snapshot — the
        // originator has already timed out, so any work would be wasted.
        let deadline = match req.budget_millis {
            Some(0) => {
                return Err(XdmError::xrpc_deadline(
                    "query budget exhausted on arrival (xrpc:timeout)",
                ))
            }
            Some(ms) => Some(Instant::now() + Duration::from_millis(ms)),
            None => None,
        };
        let cancel = match xrpc_net::current_job() {
            Some(job) => {
                job.set_deadline(deadline);
                CancelToken::with_external(deadline, job.flag())
            }
            None => CancelToken::new(deadline),
        };
        // Make the token reachable by a `Cancel` control message for the
        // same transaction; the guard deregisters on every exit path.
        let _eval_reg = req.query_id.as_ref().map(|qid| {
            let key = (qid.host.clone(), qid.timestamp_millis);
            self.active_evals
                .lock()
                .entry(key.clone())
                .or_default()
                .push(cancel.clone());
            EvalRegistration {
                peer: self,
                key,
                token: cancel.clone(),
            }
        });

        let key = (req.module.clone(), req.method.clone(), req.arity);
        let prepared = self
            .function_cache
            .get_or_prepare(key, || self.prepare_function(&req))?;

        // Isolation: pin (or reuse) a snapshot when a queryID is present.
        let (resolver, snap): (Arc<dyn DocResolver>, Option<Arc<QuerySnapshot>>) =
            match &req.query_id {
                Some(qid) => {
                    let s = self.snapshots.get_or_pin(qid, || self.docs.snapshot())?;
                    (s.resolver(), Some(s))
                }
                None => (self.docs.clone(), None),
            };

        // At-most-once ∆ merge for deferred updates (rule R'Fu): when the
        // response to an updating call is lost, the resilient transport
        // redelivers the identical request; merging its ∆ again would
        // double-insert or trip XQUF compatibility at Prepare. An updating
        // function's results are empty by XQUF, so the lost response can be
        // resynthesized without re-evaluating — but only if the original
        // execution *succeeded*: the hash is recorded after the merge (see
        // below), so a request that faulted re-evaluates on redelivery
        // instead of being masked as success. The replayed response carries
        // the original's participating-peer set so the originator's 2PC
        // participant list stays complete even when nested calls were made.
        let track_merge = req.deferred && prepared.decl.updating;
        if track_merge {
            if let Some(s) = &snap {
                if let Some(peers) = s.merged_requests.lock().get(&request_hash) {
                    let mut resp = XrpcResponse::new(req.module, req.method);
                    resp.results = vec![Sequence::empty(); req.calls.len()];
                    resp.participating_peers = peers.clone();
                    return Ok(resp);
                }
            }
        }

        // Dispatcher for nested XRPC calls made by the function body.
        let nested_client = self.transport().map(|t| {
            let mut c = XrpcClient::new(t);
            c.query_id = req.query_id.clone();
            c.deferred_updates = req.deferred;
            c.obs = Some(self.obs.clone());
            c.adaptive = Some(self.adaptive.clone());
            c.net_feedback = self.resilient_transport();
            c.cancel = Some(cancel.clone());
            c.profile = collector.clone();
            Arc::new(c)
        });

        let resolver: Arc<dyn DocResolver> = match &nested_client {
            Some(c) => crate::remote_docs::RemoteDocResolver::new(resolver, c.clone()),
            None => resolver,
        };
        let mut env = Environment::new(resolver).with_modules(self.modules.clone());
        env.cancel = Some(cancel.clone());
        env.profile = collector.clone();
        if let Some(c) = &nested_client {
            env.dispatcher = Some(c.clone() as Arc<dyn xqeval::context::RpcDispatcher>);
        }

        let ev = Evaluator {
            env: &env,
            sctx: Arc::new(prepared.sctx.clone()),
            local_functions: Arc::new(HashMap::new()),
        };

        // The server span's context is ambient on *this* thread; capture
        // it so worker-pool threads (parallel read-only bulk) keep the
        // trace across their nested dispatches too.
        let ambient = xrpc_obs::current_context();
        let ambient_tracer = xrpc_obs::current_tracer();
        let op_parent = xrpc_obs::profile::current_parent();
        let eval_one = |args: &[Sequence]| -> XdmResult<(Sequence, PendingUpdateList)> {
            let _trace = xrpc_obs::set_current_context(ambient);
            let _tracer = xrpc_obs::set_current_tracer(ambient_tracer.clone());
            let _op = xrpc_obs::profile::install_parent(op_parent);
            let mut st = EvalState::new();
            bind_params(&prepared.decl, args, &mut st)?;
            let r = ev.eval(&prepared.decl.body, &mut st, &Ctx::none())?;
            Ok((r, st.pul))
        };

        // Read-only bulk requests may fan the per-call evaluations over a
        // worker pool: every call shares the same immutable snapshot and
        // prepared function, so calls are independent. Updating bulk stays
        // sequential — ∆s must compose in call order (XQUF merge rules).
        // The worker count comes from the adaptive controller (or its
        // `set_bulk_threads` pin), and the batch's measured cost feeds
        // back into it below.
        let threads = self.adaptive.eval_threads(req.calls.len());
        let parallel = threads > 1 && !prepared.decl.updating;
        let eval_started = Instant::now();
        let per_call: Vec<XdmResult<(Sequence, PendingUpdateList)>> = if parallel {
            self.stats
                .parallel_bulk_requests
                .fetch_add(1, Ordering::Relaxed);
            eval_calls_parallel(&req.calls, threads, &eval_one)
        } else {
            let mut out = Vec::with_capacity(req.calls.len());
            for args in &req.calls {
                let r = eval_one(args);
                let failed = r.is_err();
                out.push(r);
                if failed {
                    break;
                }
            }
            out
        };
        self.adaptive.observe(
            per_call.len(),
            eval_started.elapsed(),
            if parallel { threads } else { 1 },
        );
        if let Some(col) = &collector {
            col.add_phase(Phase::Execute, eval_started.elapsed().as_micros() as u64);
        }

        // Merge in call order: response positions match request positions
        // exactly, and the lowest-index error wins (as it would have
        // sequentially — evaluation is deterministic and side-effect-free
        // up to the PUL, which is only applied after this loop).
        let mut results = Vec::with_capacity(req.calls.len());
        let mut pul_total = PendingUpdateList::new();
        for out in per_call {
            let (r, pul) = match out {
                Ok(v) => v,
                Err(e) => {
                    if e.code == "XRPC0004" || e.code == "XRPC0005" {
                        self.note_cancellation(&e.code, deadline);
                    }
                    return Err(e);
                }
            };
            // a non-updating function must not update (XQUF); tolerate
            // fn:put which the spec treats as updating
            pul_total.merge(pul);
            results.push(if prepared.decl.updating {
                Sequence::empty()
            } else {
                r
            });
        }

        if !pul_total.is_empty() {
            if req.deferred {
                // rule R'Fu: defer ∆ until 2PC commit
                let snap = snap.as_ref().ok_or_else(|| {
                    XdmError::xrpc("deferred updates require a queryID (isolation)")
                })?;
                // the PUL lives until 2PC commit: copy content fragments
                // out of the request's message arena so holding a ∆ does
                // not pin the whole (possibly multi-MiB) envelope
                pul_total.compact_sources();
                snap.pul.lock().merge(pul_total);
            } else {
                // rule RFu: apply immediately after the request
                self.apply_pul(&pul_total)?;
            }
        }

        // Piggyback the peers this handling (transitively) involved.
        let mut peers: Vec<String> = nested_client
            .map(|c| c.participants_snapshot())
            .unwrap_or_default();
        peers.push(self.name());
        peers.sort();
        peers.dedup();

        // Everything merged successfully — only now record the request as
        // seen, so redelivery of a *failed* execution re-evaluates rather
        // than replaying a synthesized success.
        if track_merge {
            if let Some(s) = &snap {
                s.merged_requests.lock().insert(request_hash, peers.clone());
            }
        }

        let mut resp = XrpcResponse::new(req.module, req.method);
        resp.results = results;
        resp.participating_peers = peers;
        if let Some(col) = &collector {
            // This hop's profile (own hop first, then everything gathered
            // from peers *we* called) rides home in the response header.
            // The span ids tie the hop to the PR 5 trace.
            let (trace_id, span_id) = xrpc_obs::current_context()
                .map(|c| (c.trace_id, c.span_id))
                .unwrap_or((0, 0));
            let total_micros = parse_micros + handle_started.elapsed().as_micros() as u64;
            resp.profile_hops = col.finish_hops(trace_id, span_id, total_micros);
        }
        Ok(resp)
    }

    fn prepare_function(&self, req: &XrpcRequest) -> XdmResult<PreparedFunction> {
        self.stats
            .functions_prepared
            .fetch_add(1, Ordering::Relaxed);
        let module = if self.function_cache.is_enabled() {
            self.modules
                .get_or_load(&req.module, req.location.as_deref())?
        } else {
            // No function cache: re-translate the module on every request,
            // the paper's "No Function Cache" column.
            match self.module_sources.read().get(&req.module) {
                Some(src) => {
                    let lib = xqast::parse_library_module(src)?;
                    Arc::new(CompiledModule::from_library(&lib))
                }
                None => self
                    .modules
                    .get_or_load(&req.module, req.location.as_deref())?,
            }
        };
        let decl = module.function(&req.method, req.arity).ok_or_else(|| {
            XdmError::unknown_function(format!(
                "module `{}` has no function {}#{}",
                req.module, req.method, req.arity
            ))
        })?;
        Ok(PreparedFunction {
            decl,
            sctx: module.sctx.clone(),
        })
    }

    pub(crate) fn apply_pul(&self, pul: &PendingUpdateList) -> XdmResult<()> {
        for edit in apply_updates(pul)? {
            if let Some(uri) = &edit.uri {
                self.docs.replace(uri, edit.new.clone())?;
            }
        }
        Ok(())
    }

    /// The key a transaction's applied-LSN mark is stored under in the
    /// document store.
    pub(crate) fn mark_key(qid: &QueryId) -> String {
        format!("{}@{}", qid.host, qid.timestamp_millis)
    }

    /// `applyUpdates(∆_q)` guarded by the store's applied-LSN mark: a ∆
    /// whose log sequence number is at-or-below the mark has already
    /// reached the documents (the crash or redelivery fell between the
    /// apply and the `Applied` marker), so replay skips it instead of
    /// double-applying. Returns whether the ∆ was actually applied.
    pub(crate) fn apply_pul_marked(
        &self,
        pul: &PendingUpdateList,
        qid: &QueryId,
        lsn: Option<u64>,
    ) -> XdmResult<bool> {
        let Some(lsn) = lsn else {
            // no WAL / no logged LSN: the pre-durability behavior
            self.apply_pul(pul)?;
            return Ok(true);
        };
        let key = Self::mark_key(qid);
        if self.docs.applied_mark(&key).is_some_and(|m| m >= lsn) {
            return Ok(false);
        }
        self.apply_pul(pul)?;
        self.docs.set_applied_mark(&key, lsn);
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Originator side
    // ------------------------------------------------------------------

    /// Execute a query at this peer (convenience over
    /// [`execute_detailed`](Self::execute_detailed)).
    pub fn execute(&self, query: &str) -> XdmResult<Sequence> {
        self.execute_detailed(query).map(|o| o.result)
    }

    /// Normalize query text for plan-cache keying. Only transformations
    /// that provably preserve XQuery semantics are allowed here — two
    /// *different* queries must never normalize to the same text (string
    /// literals make whitespace inside the body significant, so only line
    /// endings and outer padding are touched).
    pub fn normalize_query_text(query: &str) -> String {
        query.replace("\r\n", "\n").trim().to_string()
    }

    /// The ambient-static-context fingerprint folded into every plan-cache
    /// key: everything *outside* the query text that affects compilation.
    /// A module (re)registration, a peer default base-URI/collation
    /// change, or a different engine each produce a different fingerprint,
    /// so stale plans become unreachable rather than served.
    fn plan_fingerprint(&self) -> u64 {
        let ambient = StaticContext {
            base_uri: self.base_uri.read().clone(),
            default_collation: self.default_collation.read().clone(),
            ..StaticContext::default()
        };
        let mut h = ambient.fingerprint();
        h ^= self.modules.generation();
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        h ^= match self.engine {
            EngineKind::Tree => 0x7472_6565,
            EngineKind::Rel => 0x0072_656c,
        };
        h.wrapping_mul(0x0000_0100_0000_01B3)
    }

    /// Compile a query into its cacheable plan: parse, resolve the static
    /// context (query prolog over peer defaults), derive the execution
    /// options. This is the work a plan-cache hit skips.
    fn compile_query(&self, query: &str) -> XdmResult<QueryPlan> {
        let parse_started = Instant::now();
        let module = xqast::parse_main_module(query)?;
        let parse_micros = parse_started.elapsed().as_micros() as u64;
        let compile_started = Instant::now();
        let isolation = match module.prolog.option("xrpc", "isolation") {
            Some("repeatable") => IsolationLevel::Repeatable,
            Some("none") | None => IsolationLevel::None,
            Some(other) => {
                return Err(XdmError::xrpc(format!(
                    "unknown xrpc:isolation level `{other}`"
                )))
            }
        };
        // `xrpc:timeout "0"` means *explicitly no deadline* (the query may
        // run forever); anything non-integer or beyond u32 seconds is a
        // typed static error rather than a silent clamp.
        let timeout: u32 = match module.prolog.option("xrpc", "timeout") {
            Some(t) => {
                let parsed: u64 = t.trim().parse().map_err(|_| {
                    XdmError::xrpc(format!(
                        "xrpc:timeout must be a non-negative integer (seconds), got `{t}`"
                    ))
                })?;
                u32::try_from(parsed).map_err(|_| {
                    XdmError::xrpc(format!(
                        "xrpc:timeout `{t}` exceeds the maximum of {} seconds",
                        u32::MAX
                    ))
                })?
            }
            None => self.default_timeout_secs,
        };
        // Lenient by design: an unknown xrpc:profile value means "off" —
        // a profiling typo must never change query results.
        let profile = module
            .prolog
            .option("xrpc", "profile")
            .map(ProfileMode::parse)
            .unwrap_or(ProfileMode::Off);
        let mut sctx = StaticContext::from_prolog(&module.prolog);
        if sctx.base_uri.is_none() {
            sctx.base_uri = self.base_uri.read().clone();
        }
        if sctx.default_collation.is_none() {
            sctx.default_collation = self.default_collation.read().clone();
        }
        let compiled = CompiledMain::compile_with(Arc::new(module), sctx);
        Ok(QueryPlan {
            compiled,
            isolation,
            timeout_secs: timeout,
            profile,
            text_hash: fnv1a(Self::normalize_query_text(query).as_bytes()),
            parse_micros,
            compile_micros: compile_started.elapsed().as_micros() as u64,
        })
    }

    /// The cached plan for `query` — compiled on first sight (or on every
    /// call when the cache is disabled / the fingerprint changed).
    pub fn plan_for(&self, query: &str) -> XdmResult<Arc<QueryPlan>> {
        self.plan_for_disposed(query).map(|(p, _)| p)
    }

    /// [`plan_for`](Self::plan_for) plus the cache disposition of this
    /// lookup — `"hit"`, `"miss"`, or `"off"` — for the profiler and the
    /// slow-query log.
    fn plan_for_disposed(&self, query: &str) -> XdmResult<(Arc<QueryPlan>, &'static str)> {
        let key = (Self::normalize_query_text(query), self.plan_fingerprint());
        let compiled_now = std::cell::Cell::new(false);
        let plan = self.plan_cache.get_or_prepare(key, || {
            compiled_now.set(true);
            self.compile_query(query)
        })?;
        let disposition = if !self.plan_cache.is_enabled() {
            "off"
        } else if compiled_now.get() {
            "miss"
        } else {
            "hit"
        };
        Ok((plan, disposition))
    }

    /// Prepare a query for repeated execution: compile (or fetch the
    /// cached plan) once, bind parameters per execution via the query's
    /// `declare variable $x as T external` declarations.
    ///
    /// ```text
    /// let q = peer.prepare(r#"declare variable $pid external;
    ///                         doc("people.xml")//person[@id = $pid]"#)?;
    /// for pid in ids {
    ///     let r = peer.execute_prepared(&q, vec![("pid".into(), pid)])?;
    /// }
    /// ```
    pub fn prepare(&self, query: &str) -> XdmResult<PreparedQuery> {
        Ok(PreparedQuery {
            plan: self.plan_for(query)?,
        })
    }

    /// Execute a prepared query with `params` bound to its external
    /// variables (names without the `$`). Values are coerced by the
    /// function-conversion rules against each variable's declared type.
    pub fn execute_prepared(
        &self,
        prepared: &PreparedQuery,
        params: Vec<(String, Sequence)>,
    ) -> XdmResult<Sequence> {
        self.execute_prepared_detailed(prepared, params)
            .map(|o| o.result)
    }

    /// [`execute_prepared`](Self::execute_prepared) with the full outcome.
    pub fn execute_prepared_detailed(
        &self,
        prepared: &PreparedQuery,
        params: Vec<(String, Sequence)>,
    ) -> XdmResult<ExecOutcome> {
        // The prepared handle *is* the cache: compile cost was paid at
        // prepare() time, so an execution is always a hit.
        self.execute_plan(&prepared.plan, params, "hit", None)
    }

    /// Execute a query, honoring `declare option xrpc:isolation` /
    /// `xrpc:timeout`, driving deferred updates through 2PC when the query
    /// runs isolated.
    pub fn execute_detailed(&self, query: &str) -> XdmResult<ExecOutcome> {
        let (plan, cache) = self.plan_for_disposed(query)?;
        self.execute_plan(&plan, Vec::new(), cache, None)
    }

    /// Compile-only EXPLAIN: the plan's static properties as JSON, without
    /// executing anything. The runtime counterpart is
    /// [`explain_analyze`](Self::explain_analyze).
    pub fn explain(&self, query: &str) -> XdmResult<String> {
        let (plan, cache) = self.plan_for_disposed(query)?;
        Ok(format!(
            "{{\"engine\":\"{}\",\"cache\":\"{cache}\",\"isolation\":\"{}\",\"timeoutSecs\":{},\"profile\":\"{}\",\"queryHash\":\"{:016x}\",\"parseMicros\":{},\"compileMicros\":{}}}",
            match self.engine {
                EngineKind::Tree => "tree",
                EngineKind::Rel => "rel",
            },
            match plan.isolation {
                IsolationLevel::Repeatable => "repeatable",
                IsolationLevel::None => "none",
            },
            plan.timeout_secs,
            plan.profile.as_str(),
            plan.text_hash,
            plan.parse_micros,
            plan.compile_micros,
        ))
    }

    /// EXPLAIN ANALYZE: execute the query with full (stride-1) profiling
    /// forced on — regardless of its own `xrpc:profile` option — and
    /// return the result together with the assembled cross-peer profile.
    pub fn explain_analyze(&self, query: &str) -> XdmResult<(Sequence, QueryProfile)> {
        let (plan, cache) = self.plan_for_disposed(query)?;
        let out = self.execute_plan(&plan, Vec::new(), cache, Some(ProfileMode::Full))?;
        let profile = out
            .profile
            .ok_or_else(|| XdmError::xrpc("explain_analyze produced no profile"))?;
        Ok((out.result, profile))
    }

    /// Run a compiled plan: everything after parse + static analysis —
    /// snapshot pinning, engine dispatch, 2PC settlement. `cache` is the
    /// plan lookup's disposition; `force_profile` overrides the plan's own
    /// `xrpc:profile` option (how `explain_analyze` forces stride 1).
    fn execute_plan(
        &self,
        plan: &QueryPlan,
        external: Vec<(String, Sequence)>,
        cache: &'static str,
        force_profile: Option<ProfileMode>,
    ) -> XdmResult<ExecOutcome> {
        let started = Instant::now();
        let isolation = plan.isolation;
        let timeout = plan.timeout_secs;
        // `xrpc:timeout "0"` = no *execution* deadline, but the queryId's
        // timeout also bounds the snapshot window at every participant
        // (0 on the wire would mean an instantly-expired snapshot), so a
        // deadline-free query still stamps a generous snapshot window.
        const NO_DEADLINE_SNAPSHOT_SECS: u32 = 86_400;
        let wire_timeout = if timeout == 0 {
            NO_DEADLINE_SNAPSHOT_SECS
        } else {
            timeout
        };
        let qid = match isolation {
            IsolationLevel::Repeatable => {
                Some(QueryId::new(self.name(), self.next_qid_ts(), wire_timeout))
            }
            IsolationLevel::None => None,
        };

        // The query budget: a deadline derived from xrpc:timeout, carried
        // by a shared token that the evaluator checks cooperatively and
        // every outgoing hop decrements (each nested `execute at` sees
        // strictly less remaining budget). If this evaluation itself runs
        // inside a reactor worker, bridge the job's kill flag so a client
        // disconnect (or the sweep tick) cancels the token too.
        let deadline = (timeout > 0).then(|| Instant::now() + Duration::from_secs(timeout as u64));
        let cancel = match xrpc_net::current_job() {
            Some(job) => {
                job.set_deadline(deadline);
                CancelToken::with_external(deadline, job.flag())
            }
            None => CancelToken::new(deadline),
        };

        // Root span of the whole distributed execution. With a queryId
        // the trace id *is* a function of it, so every peer the query
        // touches — and this peer again after a crash/restart — derives
        // the same id with no coordination (see xrpc_obs::trace_id_from).
        let root_ctx = match &qid {
            Some(q) => TraceContext {
                trace_id: trace_id_from(&q.host, q.timestamp_millis),
                span_id: self.obs.tracer.next_span_id(),
                parent_id: None,
            },
            None => TraceContext {
                trace_id: trace_id_from(&self.name(), crate::now_millis()),
                span_id: self.obs.tracer.next_span_id(),
                parent_id: None,
            },
        };
        let _tracer = xrpc_obs::set_current_tracer(Some(self.obs.tracer.clone()));
        let mut root = self.obs.tracer.span("execute", root_ctx);
        root.tag(
            "isolation",
            match isolation {
                IsolationLevel::Repeatable => "repeatable",
                IsolationLevel::None => "none",
            },
        );

        // The originator's profile collector (depth 0, nobody called us).
        // Phase accounting for the slow-query log is NOT gated on this:
        // the log's phase totals come from a handful of `Instant` reads
        // this function takes anyway, so profiling-off stays free.
        let mode = force_profile.unwrap_or(plan.profile);
        let collector = mode
            .is_on()
            .then(|| ProfileCollector::new(mode, &self.name(), "", 0));
        if let Some(col) = &collector {
            col.set_cache(cache);
            if cache == "miss" {
                col.add_phase(Phase::Parse, plan.parse_micros);
                col.add_phase(Phase::Compile, plan.compile_micros);
            }
        }

        let client = self.transport().map(|t| {
            let mut c = XrpcClient::new(t);
            c.query_id = qid.clone();
            c.deferred_updates = isolation == IsolationLevel::Repeatable;
            c.obs = Some(self.obs.clone());
            c.adaptive = Some(self.adaptive.clone());
            c.net_feedback = self.resilient_transport();
            c.cancel = Some(cancel.clone());
            c.profile = collector.clone();
            Arc::new(c)
        });

        // Local repeatable read: evaluate against a pinned local snapshot.
        let resolver: Arc<dyn DocResolver> = match isolation {
            IsolationLevel::Repeatable => Arc::new(FrozenDocs {
                docs: self.docs.snapshot(),
            }),
            IsolationLevel::None => self.docs.clone(),
        };
        let resolver: Arc<dyn DocResolver> = match &client {
            Some(c) => crate::remote_docs::RemoteDocResolver::new(resolver, c.clone()),
            None => resolver,
        };
        let mut env = Environment::new(resolver).with_modules(self.modules.clone());
        env.rpc_optimize = self.rpc_optimize.load(Ordering::SeqCst);
        env.cancel = Some(cancel.clone());
        env.profile = collector.clone();
        if let Some(c) = &client {
            env.dispatcher = Some(c.clone() as Arc<dyn xqeval::context::RpcDispatcher>);
        }

        let exec_started = Instant::now();
        let engine_out = match self.engine {
            EngineKind::Tree => xqeval::eval::evaluate_compiled(&plan.compiled, &env, external),
            EngineKind::Rel => relalg::engine::execute_rel_compiled(&plan.compiled, &env, external),
        };
        let execute_micros = exec_started.elapsed().as_micros() as u64;
        if let Some(col) = &collector {
            col.add_phase(Phase::Execute, execute_micros);
        }
        let (result, local_pul) = match engine_out {
            Ok(out) => out,
            Err(e) => {
                // A deadline/cancel abort here means remote peers may still
                // be holding snapshots (and possibly evaluating) for this
                // query: tell them, best-effort, so they stop wasting work
                // and release their snapshot locks now rather than at
                // snapshot expiry.
                if e.code == "XRPC0004" || e.code == "XRPC0005" {
                    self.note_cancellation(&e.code, deadline);
                    if let (Some(c), Some(q)) = (&client, &qid) {
                        let own = self.name();
                        let dests: Vec<String> = c
                            .participants_snapshot()
                            .into_iter()
                            .filter(|p| p != &own)
                            .collect();
                        if !dests.is_empty() {
                            c.send_cancel(&dests, q);
                        }
                    }
                }
                return Err(e);
            }
        };

        let (requests_sent, calls_sent) = client
            .as_ref()
            .map(|c| {
                (
                    c.requests_sent.load(Ordering::Relaxed),
                    c.calls_sent.load(Ordering::Relaxed),
                )
            })
            .unwrap_or((0, 0));

        let mut commit = None;
        match (isolation, &client, &qid) {
            (IsolationLevel::Repeatable, Some(client), Some(qid)) => {
                let participants = client.participants_snapshot();
                // Own name may have flowed back through nested piggybacks.
                let own = self.name();
                let participants: Vec<String> =
                    participants.into_iter().filter(|p| p != &own).collect();
                if !participants.is_empty() {
                    // Point of no return: a budget that runs out *before*
                    // Prepare aborts the query cleanly (participants are
                    // told to stand down). Once `coordinate` starts, the
                    // token is no longer consulted — the decision protocol
                    // always runs to completion, deadline or not, so a
                    // forced promise can never be left in doubt.
                    if let Err(e) = cancel.check_now() {
                        self.note_cancellation(&e.code, deadline);
                        client.send_cancel(&participants, qid);
                        return Err(e);
                    }
                    // WAL appends inside the coordination are charged to
                    // their own phase; subtract them here so twopc + wal
                    // add up instead of double-counting.
                    let wal_before = collector.as_ref().map(|c| c.phases().wal_micros);
                    let twopc_started = Instant::now();
                    let outcome = self.coordinate(
                        qid,
                        client,
                        &participants,
                        &local_pul,
                        collector.as_deref(),
                    );
                    if let (Some(col), Some(before)) = (&collector, wal_before) {
                        let wal_during = col.phases().wal_micros.saturating_sub(before);
                        col.add_phase(
                            Phase::TwoPc,
                            (twopc_started.elapsed().as_micros() as u64).saturating_sub(wal_during),
                        );
                    }
                    commit = Some(outcome?);
                } else {
                    // no remote participants: apply the local ∆ directly
                    self.apply_pul(&local_pul)?;
                }
            }
            _ => {
                // isolation "none": remote updates were already applied per
                // request (rule RFu); apply the local ∆ now
                self.apply_pul(&local_pul)?;
            }
        }

        let total_micros = started.elapsed().as_micros() as u64;
        let profile = collector.as_ref().map(|col| QueryProfile {
            trace_id: root_ctx.trace_id,
            hops: col.finish_hops(root_ctx.trace_id, root_ctx.span_id, total_micros),
        });

        // Always-on slow-query log: threshold checked on every execution,
        // phase totals assembled from measurements this function already
        // took (no per-operator data unless the query was profiled).
        if self.slowlog.is_slow(total_micros) {
            let phases = match &collector {
                Some(col) => col.phases(),
                None => {
                    let mut p = xrpc_obs::Phases {
                        cache,
                        execute_micros,
                        ..Default::default()
                    };
                    if cache == "miss" {
                        p.parse_micros = plan.parse_micros;
                        p.compile_micros = plan.compile_micros;
                    }
                    p
                }
            };
            self.slowlog.record(&SlowLogEntry {
                ts_millis: crate::now_millis(),
                peer: self.name(),
                query_hash: plan.text_hash,
                trace_id: root_ctx.trace_id,
                total_micros,
                cache,
                engine: match self.engine {
                    EngineKind::Tree => "tree",
                    EngineKind::Rel => "rel",
                },
                phases,
                hops: profile.as_ref().map(|p| p.hops.len() as u32).unwrap_or(1),
            });
        }

        Ok(ExecOutcome {
            result,
            isolation,
            commit,
            requests_sent,
            calls_sent,
            profile,
        })
    }

    /// Record a deadline/cancellation abort in the peer's metrics:
    /// a per-kind counter, plus (when the query had a deadline) the
    /// latency from the deadline passing to the abort actually landing —
    /// the number the r1 bench gates on.
    fn note_cancellation(&self, code: &str, deadline: Option<Instant>) {
        if code == "XRPC0004" {
            self.cancellations_deadline.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cancellations_cancelled.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(d) = deadline {
            let now = Instant::now();
            if now > d {
                self.obs
                    .histogram("xrpc_time_to_cancel_micros")
                    .record_micros(now - d);
            }
        }
    }

    /// Drive 2PC as the originator/coordinator of `qid`, durably when a
    /// WAL is attached, and settle the query's *local* ∆ consistently
    /// with the global outcome.
    ///
    /// The local ∆ rides the same durability discipline as any remote
    /// participant's: it is logged as a `Prepared` record (with this peer
    /// as its own coordinator) before the commit point, so a coordinator
    /// crash can neither lose a committed local ∆ nor apply an aborted
    /// one — restart recovery resolves the record against the local
    /// commit-decision map exactly like a remote inquiry.
    fn coordinate(
        &self,
        qid: &QueryId,
        client: &XrpcClient,
        participants: &[String],
        local_pul: &PendingUpdateList,
        profile: Option<&ProfileCollector>,
    ) -> XdmResult<CommitOutcome> {
        let wal = self.wal();
        let self_logged = match (&wal, local_pul.is_empty()) {
            (Some(w), false) => {
                let wal_started = Instant::now();
                let lsn = w.append(&WalRecord::Prepared {
                    qid: qid.clone(),
                    coordinator: self.name(),
                    delta: wal::serialize_pul(local_pul)?,
                })?;
                if let Some(col) = profile {
                    col.add_phase(Phase::Wal, wal_started.elapsed().as_micros() as u64);
                }
                Some(lsn)
            }
            _ => None,
        };
        // Advisory begin record, unforced: recovery uses it only to drive
        // the re-abort sweep (proactively re-telling participants of a
        // crashed coordination to abort). Losing it costs an optimization,
        // never correctness — presumed abort covers the gap.
        if let Some(w) = &wal {
            let _ = w.append_nosync(&WalRecord::CoordinatorBegin {
                qid: qid.clone(),
                participants: participants.to_vec(),
            });
        }
        let key = (qid.host.clone(), qid.timestamp_millis);
        self.coordinating.lock().insert(key.clone());
        let switch = self.crash_switch.read().clone();
        let on_commit_logged = |q: &QueryId, parts: &[String]| {
            self.coord_committed
                .lock()
                .insert((q.host.clone(), q.timestamp_millis), parts.to_vec());
        };
        let ctx = twopc::CoordCtx {
            wal: wal.as_deref(),
            metrics: Some(&self.twopc_metrics),
            switch: switch.as_deref(),
            on_commit_logged: Some(&on_commit_logged),
            obs: Some(&self.obs),
        };
        let config = *self.twopc_config.read();
        let outcome = twopc::run_two_phase_commit_ctx(client, qid, participants, &config, ctx);
        self.coordinating.lock().remove(&key);

        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                // A *simulated* coordinator crash must not do post-mortem
                // work — the restarted peer recovers from the log instead.
                let dead = switch.as_ref().is_some_and(|s| s.is_down());
                if !dead {
                    if self.coord_committed.lock().contains_key(&key) {
                        // Heuristic hazard: the decision is durably *commit*,
                        // only some delivery failed. Settle the local ∆ with
                        // the decision before surfacing the hazard, or the
                        // originator itself would be the mixed outcome.
                        self.settle_local_commit(
                            qid,
                            local_pul,
                            self_logged,
                            wal.as_deref(),
                            profile,
                        )?;
                    } else if let Some(w) = &wal {
                        // presumed abort: retire the advisory begin record
                        // so the log can checkpoint (best-effort — absence
                        // of a commit record already *is* the decision)
                        let _ = w.append_nosync(&WalRecord::CoordinatorEnd { qid: qid.clone() });
                    }
                }
                return Err(e);
            }
        };

        if let CommitOutcome::Aborted { reason } = &outcome {
            if let Some(w) = &wal {
                if self_logged.is_some() {
                    // quiesce the local prepared record (absence of a commit
                    // record is the abort record; this just lets the log
                    // checkpoint)
                    w.append(&WalRecord::Decision {
                        qid: qid.clone(),
                        decision: Decision::Aborted,
                    })?;
                }
                let _ = w.append_nosync(&WalRecord::CoordinatorEnd { qid: qid.clone() });
            }
            return Err(XdmError::xrpc(format!(
                "distributed transaction aborted: {reason}"
            )));
        }
        self.settle_local_commit(qid, local_pul, self_logged, wal.as_deref(), profile)?;
        Ok(outcome)
    }

    /// Apply the originator's local ∆ for a committed transaction, under
    /// the participant logging discipline when the ∆ was logged.
    fn settle_local_commit(
        &self,
        qid: &QueryId,
        local_pul: &PendingUpdateList,
        self_logged: Option<u64>,
        wal: Option<&Wal>,
        profile: Option<&ProfileCollector>,
    ) -> XdmResult<()> {
        if let (Some(lsn), Some(w)) = (self_logged, wal) {
            let wal_started = Instant::now();
            w.append(&WalRecord::Decision {
                qid: qid.clone(),
                decision: Decision::Committed,
            })?;
            if let Some(col) = profile {
                col.add_phase(Phase::Wal, wal_started.elapsed().as_micros() as u64);
            }
            self.apply_pul_marked(local_pul, qid, Some(lsn))?;
            let wal_started = Instant::now();
            w.append(&WalRecord::Applied {
                qid: qid.clone(),
                mark: lsn,
            })?;
            if let Some(col) = profile {
                col.add_phase(Phase::Wal, wal_started.elapsed().as_micros() as u64);
            }
            return Ok(());
        }
        self.apply_pul(local_pul)
    }
}

/// FNV-1a — stable across processes, unlike `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A frozen map of documents (the originator's own repeatable-read view).
struct FrozenDocs {
    docs: HashMap<String, Arc<xmldom::Document>>,
}

impl DocResolver for FrozenDocs {
    fn resolve(&self, uri: &str) -> XdmResult<Arc<xmldom::Document>> {
        self.docs
            .get(uri)
            .cloned()
            .ok_or_else(|| XdmError::doc_error(format!("document not found: `{uri}`")))
    }
}

/// Per-call evaluation outcome: the result sequence plus the call's PUL.
type CallOutcome = XdmResult<(Sequence, PendingUpdateList)>;

/// Evaluate the calls of one bulk request with up to `threads` workers
/// (the calling thread is one of them), writing each result into the
/// slot of its call index so the response order is deterministic
/// regardless of completion order. Indices are claimed monotonically
/// from a shared counter; after the first error workers stop claiming
/// new calls, so the filled slots always form a prefix and the merge
/// loop in [`Peer::handle_call_request`] surfaces the lowest-index
/// error before it can reach an unfilled slot.
fn eval_calls_parallel<F>(calls: &[Vec<Sequence>], threads: usize, eval_one: &F) -> Vec<CallOutcome>
where
    F: Fn(&[Sequence]) -> CallOutcome + Sync,
{
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Vec<parking_lot::Mutex<Option<CallOutcome>>> = (0..calls.len())
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let worker = || loop {
        if failed.load(Ordering::Relaxed) {
            break;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= calls.len() {
            break;
        }
        let out = eval_one(&calls[i]);
        if out.is_err() {
            failed.store(true, Ordering::Relaxed);
        }
        *slots[i].lock() = Some(out);
    };
    std::thread::scope(|s| {
        for _ in 1..threads {
            // function bodies may recurse deeply — same stack headroom as
            // the HTTP server's request threads (see xqeval recursion cap)
            let _ = std::thread::Builder::new()
                .stack_size(32 * 1024 * 1024)
                .spawn_scoped(s, worker);
        }
        worker();
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|| Err(XdmError::xrpc("bulk call skipped after earlier failure")))
        })
        .collect()
}

/// Bind actual parameters with the XQuery function-conversion rules:
/// untyped atomics cast to the declared atomic type, otherwise the value
/// must match the declared sequence type.
fn bind_params(decl: &FunctionDecl, args: &[Sequence], st: &mut EvalState) -> XdmResult<()> {
    if args.len() != decl.params.len() {
        return Err(XdmError::type_error(format!(
            "function {} expects {} arguments, got {}",
            decl.name.lexical(),
            decl.params.len(),
            args.len()
        )));
    }
    for ((pname, pty), value) in decl.params.iter().zip(args.iter()) {
        let coerced = match pty {
            None => value.clone(),
            Some(t) => {
                if value.check_type(t).is_ok() {
                    value.clone()
                } else if let ItemKind::Atomic(at) = &t.kind {
                    // function conversion: atomize + cast untyped
                    let items: XdmResult<Vec<Item>> = value
                        .iter()
                        .map(|i| i.atomize().cast_to(*at).map(Item::Atomic))
                        .collect();
                    let s = Sequence::from_items(items?);
                    s.check_type(t)?;
                    s
                } else {
                    value.check_type(t)?;
                    unreachable!()
                }
            }
        };
        st.vars.push((pname.lexical(), coerced));
    }
    Ok(())
}
