//! The peer's admin surface: `/metrics` (Prometheus text exposition),
//! `/healthz` (JSON liveness/readiness) and `/slowlog` (the slow-query
//! log as JSON lines), routed on the same [`HttpServer`] that carries
//! XRPC traffic — the paper's "any XRPC endpoint doubles as a WS-AT
//! participant" philosophy extended to operations: any XRPC endpoint
//! is also scrapeable.
//!
//! `/metrics` aggregates every counter the runtime already keeps —
//! transport [`NetMetrics`] (client side from the peer's
//! [`ResilientTransport`](xrpc_net::ResilientTransport), server side
//! from the HTTP listener, distinguished by a `side` label), 2PC
//! counters, the global buffer pool, per-destination retry/latency
//! stats and circuit-breaker states — plus the peer's latency/size
//! histograms as summary families with p50/p90/p99.
//!
//! `/healthz` reports WAL attachment, in-doubt transaction count and
//! breaker states; status degrades (HTTP 503) when transactions are
//! stuck in doubt, any breaker is open, or the WAL is poisoned (a
//! durability fault means prepares can no longer be promised).

use crate::peer::Peer;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use xrpc_net::http::Handler;
use xrpc_net::metrics::MetricsSnapshot;
use xrpc_net::{BreakerState, BufferPool, HttpServer, NetError, NetMetrics};
use xrpc_obs::PromWriter;

/// Shared slot for the HTTP server's own [`NetMetrics`]: the server is
/// only constructed *after* its handler exists, so the handler captures
/// this cell and [`bind_admin`] fills it once the server is up.
pub type ServerMetricsSlot = Arc<OnceLock<Arc<NetMetrics>>>;

fn net_counters(w: &mut PromWriter, side: &str, s: &MetricsSnapshot) {
    for (name, v) in [
        ("xrpc_net_roundtrips_total", s.roundtrips),
        ("xrpc_net_bytes_sent_total", s.bytes_sent),
        ("xrpc_net_bytes_received_total", s.bytes_received),
        ("xrpc_net_failures_total", s.failures),
        ("xrpc_net_retries_total", s.retries),
        ("xrpc_net_timeouts_total", s.timeouts),
        ("xrpc_net_fast_failures_total", s.fast_failures),
        ("xrpc_net_breaker_opens_total", s.breaker_opens),
        ("xrpc_net_pool_hits_total", s.pool_hits),
        ("xrpc_net_pool_misses_total", s.pool_misses),
        ("xrpc_net_sheds_total", s.sheds),
    ] {
        w.counter_labeled(name, "side", side, v);
    }
}

/// Server-only admission/reactor families: connection and queue gauges
/// plus the reactor stage histograms (dispatch wait, wakeup latency).
/// Only the listener side has these — the client block never sheds.
fn net_server_gauges(w: &mut PromWriter, m: &NetMetrics) {
    w.gauge(
        "xrpc_net_active_connections",
        m.active_connections.load(Ordering::Relaxed),
    );
    w.gauge(
        "xrpc_net_accept_queue_depth",
        m.accept_queue_depth.load(Ordering::Relaxed),
    );
    w.summary(
        "xrpc_reactor_dispatch_micros",
        &m.reactor_dispatch_micros.snapshot(),
    );
    w.summary(
        "xrpc_reactor_wakeup_micros",
        &m.reactor_wakeup_micros.snapshot(),
    );
}

fn breaker_code(s: BreakerState) -> u64 {
    match s {
        BreakerState::Closed => 0,
        BreakerState::HalfOpen => 1,
        BreakerState::Open => 2,
    }
}

/// Render the full exposition document for one peer. `server_metrics`
/// is the HTTP listener's counter block, when the peer is served over
/// HTTP (see [`ServerMetricsSlot`]).
pub fn render_metrics(peer: &Peer, server_metrics: Option<&NetMetrics>) -> String {
    let mut w = PromWriter::new();

    if let Some(rt) = peer.resilient_transport() {
        net_counters(&mut w, "client", &rt.metrics.snapshot());
    }
    if let Some(m) = server_metrics {
        net_counters(&mut w, "server", &m.snapshot());
        net_server_gauges(&mut w, m);
    }

    let t = peer.twopc_metrics.snapshot();
    w.counter("xrpc_twopc_prepares_total", t.prepares);
    w.counter("xrpc_twopc_commits_total", t.commits);
    w.counter("xrpc_twopc_aborts_total", t.aborts);
    w.counter("xrpc_twopc_redeliveries_total", t.redeliveries);
    w.counter("xrpc_twopc_hazards_total", t.hazards);
    w.counter("xrpc_twopc_recoveries_total", t.recoveries);
    w.counter("xrpc_twopc_inquiries_total", t.inquiries);
    w.counter("xrpc_twopc_reaborts_total", t.reaborts);
    w.counter("xrpc_twopc_cancels_total", t.cancels);

    // Cooperative cancellation outcomes (deadline expiry vs explicit
    // cancel); the time-to-cancel histogram rides the summary families.
    w.counter_labeled(
        "xrpc_cancellations_total",
        "kind",
        "deadline",
        peer.cancellations_deadline.load(Ordering::Relaxed),
    );
    w.counter_labeled(
        "xrpc_cancellations_total",
        "kind",
        "cancelled",
        peer.cancellations_cancelled.load(Ordering::Relaxed),
    );

    // Plan-cache + function-cache effectiveness (the §3.3 function cache
    // generalized to whole-query plans).
    let pc = peer.plan_cache.stats();
    w.counter("xrpc_plan_cache_hits_total", pc.hits);
    w.counter("xrpc_plan_cache_misses_total", pc.misses);
    w.counter("xrpc_plan_cache_evictions_total", pc.evictions);
    w.counter("xrpc_plan_cache_invalidations_total", pc.invalidations);
    w.gauge("xrpc_plan_cache_size", pc.len as u64);
    w.gauge("xrpc_plan_cache_enabled", if pc.enabled { 1 } else { 0 });
    let fc = peer.function_cache.stats();
    w.counter("xrpc_function_cache_hits_total", fc.hits);
    w.counter("xrpc_function_cache_misses_total", fc.misses);
    w.counter("xrpc_function_cache_evictions_total", fc.evictions);
    w.gauge("xrpc_function_cache_size", fc.len as u64);

    // Adaptive bulk-sizing controller (see `xrpc_peer::adaptive`).
    let a = peer.adaptive.snapshot();
    w.gauge("xrpc_bulk_adaptive_pinned", a.pinned.unwrap_or(0) as u64);
    w.gauge("xrpc_bulk_ewma_call_micros", a.ewma_call_micros);
    w.gauge("xrpc_bulk_last_threads", a.last_threads as u64);
    w.counter("xrpc_bulk_decisions_total", a.decisions);
    w.counter("xrpc_bulk_parallel_decisions_total", a.parallel_decisions);
    w.counter("xrpc_bulk_observed_calls_total", a.observed_calls);
    w.counter("xrpc_bulk_split_dispatches_total", a.split_dispatches);

    // Tracing ring overflow (spans evicted before export) and the
    // slow-query log's volume/drop counters.
    w.counter(
        "xrpc_trace_spans_dropped_total",
        peer.obs.tracer.spans_dropped(),
    );
    w.counter("xrpc_slowlog_entries_total", peer.slowlog.entries_logged());
    w.counter("xrpc_slowlog_dropped_total", peer.slowlog.entries_dropped());
    w.gauge(
        "xrpc_slowlog_threshold_millis",
        peer.slowlog.threshold_millis(),
    );

    let p = BufferPool::global().stats();
    w.counter("xrpc_bufpool_hits_total", p.hits);
    w.counter("xrpc_bufpool_misses_total", p.misses);
    w.counter("xrpc_bufpool_recycled_total", p.recycled);
    w.counter("xrpc_bufpool_dropped_total", p.dropped);
    w.gauge("xrpc_bufpool_occupancy", p.occupancy);

    // the same readiness numbers /healthz reports, as gauges
    w.gauge(
        "xrpc_wal_attached",
        if peer.wal().is_some() { 1 } else { 0 },
    );
    w.gauge(
        "xrpc_wal_open_transactions",
        peer.wal()
            .map(|l| l.open_transactions() as u64)
            .unwrap_or(0),
    );
    w.gauge(
        "xrpc_in_doubt_transactions",
        peer.snapshots.prepared_undecided(Duration::ZERO).len() as u64,
    );
    w.gauge(
        "xrpc_active_snapshots",
        peer.snapshots.active_count() as u64,
    );

    // WAL durability surface: segment/byte gauges and the rotation,
    // group-commit and recovery counters (see `wal::WalStats`).
    if let Some(l) = peer.wal() {
        let s = l.stats();
        w.gauge("xrpc_wal_segments", s.segments);
        w.gauge("xrpc_wal_log_bytes", s.log_bytes);
        w.gauge("xrpc_wal_poisoned", if s.poisoned { 1 } else { 0 });
        w.counter("xrpc_wal_rotations_total", s.rotations);
        w.counter(
            "xrpc_wal_copy_forward_records_total",
            s.copy_forward_records,
        );
        w.counter(
            "xrpc_wal_torn_tail_recoveries_total",
            s.torn_tail_recoveries,
        );
        w.counter("xrpc_wal_group_fsyncs_total", s.fsyncs);
    }

    for (name, h) in peer.obs.histograms() {
        w.summary(&name, &h.snapshot());
    }
    for (name, vec) in peer.obs.histogram_vecs() {
        for (value, h) in vec.children() {
            w.summary_labeled(&name, vec.label(), &value, &h.snapshot());
        }
    }

    if let Some(rt) = peer.resilient_transport() {
        for (dest, st) in rt.dest_stats() {
            for (name, v) in [
                ("xrpc_dest_retries_total", &st.retries),
                ("xrpc_dest_failures_total", &st.failures),
                ("xrpc_dest_fast_failures_total", &st.fast_failures),
                ("xrpc_dest_calls_total", &st.calls),
            ] {
                w.counter_labeled(name, "dest", &dest, v.load(Ordering::Relaxed));
            }
            w.gauge_labeled(
                "xrpc_dest_ewma_call_micros",
                "dest",
                &dest,
                st.ewma_call_micros(),
            );
            w.summary_labeled(
                "xrpc_dest_latency_micros",
                "dest",
                &dest,
                &st.latency.snapshot(),
            );
        }
        for (dest, state) in rt.breaker_states() {
            w.gauge_labeled("xrpc_breaker_state", "dest", &dest, breaker_code(state));
        }
    }

    w.finish()
}

/// Render the health document and its HTTP status: `200 ok` when
/// nothing is stuck, `503 degraded` when transactions sit in doubt or a
/// circuit breaker is open (half-open — a probe under way — is healthy
/// enough to stay `ok`).
pub fn render_healthz(peer: &Peer) -> (u16, String) {
    let wal = peer.wal();
    let open = wal.as_ref().map(|l| l.open_transactions()).unwrap_or(0);
    let poisoned = wal.as_ref().is_some_and(|l| l.is_poisoned());
    let in_doubt = peer.snapshots.prepared_undecided(Duration::ZERO).len();
    let breakers = peer
        .resilient_transport()
        .map(|rt| rt.breaker_states())
        .unwrap_or_default();
    let any_open = breakers
        .iter()
        .any(|(_, s)| matches!(s, BreakerState::Open));
    // a poisoned WAL can no longer promise durability: fail readiness
    // so traffic drains away before a prepare is acked into a void
    let degraded = in_doubt > 0 || any_open || poisoned;

    let mut json = String::with_capacity(256);
    json.push_str("{\"status\":\"");
    json.push_str(if degraded { "degraded" } else { "ok" });
    json.push_str("\",\"peer\":\"");
    json.push_str(&json_escape(&peer.name()));
    json.push_str("\",\"wal_attached\":");
    json.push_str(if wal.is_some() { "true" } else { "false" });
    json.push_str(",\"wal_poisoned\":");
    json.push_str(if poisoned { "true" } else { "false" });
    json.push_str(&format!(
        ",\"wal_open_transactions\":{open},\"in_doubt\":{in_doubt},\"active_snapshots\":{}",
        peer.snapshots.active_count()
    ));
    json.push_str(",\"breakers\":{");
    for (i, (dest, state)) in breakers.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\"{}\":\"{state:?}\"", json_escape(dest)));
    }
    json.push_str("}}");
    (if degraded { 503 } else { 200 }, json)
}

fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Build the peer's HTTP handler with the admin routes in front:
/// `/metrics` and `/healthz` are answered directly, everything else
/// falls through to XRPC SOAP dispatch. Returns the handler plus the
/// [`ServerMetricsSlot`] to fill after binding (see [`bind_admin`]).
pub fn admin_handler(peer: &Arc<Peer>) -> (Arc<Handler>, ServerMetricsSlot) {
    let slot: ServerMetricsSlot = Arc::new(OnceLock::new());
    let p = peer.clone();
    let s = slot.clone();
    let soap = peer.soap_handler();
    let handler: Arc<Handler> = Arc::new(move |path, body| match path {
        "/metrics" => {
            let doc = render_metrics(&p, s.get().map(|m| m.as_ref()));
            (200, doc.into_bytes())
        }
        "/healthz" => {
            let (status, doc) = render_healthz(&p);
            (status, doc.into_bytes())
        }
        // The slow-query log as JSON lines, oldest retained entry first.
        "/slowlog" => (200, p.slowlog.render().into_bytes()),
        _ => (200, soap(body)),
    });
    (handler, slot)
}

/// Bind an HTTP server for `peer` with the admin routes enabled and the
/// server-side metrics slot wired up. The caller still names the peer
/// (usually `peer.set_name(server.url())`) and keeps the server alive.
pub fn bind_admin(peer: &Arc<Peer>, addr: &str) -> Result<HttpServer, NetError> {
    let (handler, slot) = admin_handler(peer);
    let server = HttpServer::bind(addr, handler)?;
    let _ = slot.set(server.metrics.clone());
    Ok(server)
}
