//! The XRPC wrapper (paper §4, Figure 3): a SOAP service handler that lets
//! an XRPC-*incapable* XQuery engine service Bulk XRPC requests.
//!
//! The wrapper stores the incoming SOAP request in a temporary location,
//! **generates an XQuery query** that (a) iterates over every `xrpc:call`
//! in the stored message, (b) unmarshals the parameters with an `n2s`
//! written in *pure XQuery*, (c) applies the requested module function and
//! (d) marshals each result back with a pure-XQuery `s2n`, constructing the
//! whole SOAP response envelope by element construction. The foreign
//! engine (our tree-walking evaluator here) never learns about XRPC.
//!
//! Per-phase timings (compile / treebuild / exec) are recorded the same
//! way the paper instruments Saxon for Table 3.
//!
//! The generated query depends only on the request's *shape* — (module,
//! method, arity, location) — because the stored-message location is a
//! fixed name resolved per request through an overlay resolver. Repeated
//! shapes therefore hit a plan cache and skip generate + parse entirely;
//! hits are reported distinctly in [`WrapperPhases`] (a hit's compile
//! column stays ≈ 0 instead of being folded into the compile total).

use parking_lot::Mutex;
use relalg::PlanCache;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdm::{XdmError, XdmResult};
use xqeval::context::{DocResolver, Environment};
use xqeval::{CompiledMain, InMemoryDocs, ModuleRegistry};
use xrpc_proto::XrpcFault;

/// The fixed URI the generated query reads the stored request message
/// from. Every request resolves it to *its own* message through a
/// per-request overlay resolver, so one generated query text (and one
/// cached plan) serves every request of the same shape — the
/// parameterization that makes the wrapper path cacheable.
pub const REQUEST_URI: &str = "xrpc:wrapper-request.xml";

/// The cached plan's key: the request shape the generated query depends on.
pub type WrapperPlanKey = (String, String, usize, Option<String>);

/// Accumulated phase timings (the columns of Table 3).
#[derive(Default, Debug, Clone, Copy)]
pub struct WrapperPhases {
    pub requests: u64,
    pub treebuild: Duration,
    pub compile: Duration,
    pub exec: Duration,
    /// Requests whose generated query came from the plan cache. Their
    /// (near-zero) lookup time lands in `cache_lookup`, NOT in `compile`
    /// — a warm wrapper's compile column reads ≈ 0 honestly.
    pub cache_hits: u64,
    pub cache_lookup: Duration,
}

impl WrapperPhases {
    pub fn total(&self) -> Duration {
        self.treebuild + self.compile + self.exec + self.cache_lookup
    }
}

/// The wrapper in front of a plain XQuery engine.
pub struct XrpcWrapper {
    /// The wrapped engine's documents (its own database).
    pub docs: Arc<InMemoryDocs>,
    /// The wrapped engine's module registry (modules the generated query
    /// imports; usually fed by a [`crate::ModuleWeb`] loader).
    pub modules: Arc<ModuleRegistry>,
    /// Compiled generated queries by request shape. Disable
    /// ([`set_plan_cache`](Self::set_plan_cache)) for the paper-faithful
    /// generate-and-compile-per-request behavior.
    pub plan_cache: PlanCache<WrapperPlanKey, CompiledMain>,
    /// Optional client for remote `fn:doc("xrpc://…")` fetches — the plain
    /// engine's equivalent of URL-based document access (data shipping).
    remote_docs: parking_lot::RwLock<Option<Arc<crate::client::XrpcClient>>>,
    phases: Mutex<WrapperPhases>,
}

impl XrpcWrapper {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Toggle the generated-query plan cache (`false` = compile every
    /// request, the engine-tree fidelity mode).
    pub fn set_plan_cache(&self, on: bool) {
        self.plan_cache.set_enabled(on);
    }

    /// Let the wrapped engine resolve `xrpc://…` document URIs over the
    /// given transport (plain data shipping, the way Saxon's `fn:doc`
    /// fetches URLs in the paper's §5 experiments).
    pub fn enable_remote_docs(&self, transport: Arc<dyn xrpc_net::Transport>) {
        *self.remote_docs.write() = Some(Arc::new(crate::client::XrpcClient::new(transport)));
    }

    /// SOAP handler closure for transports.
    pub fn soap_handler(self: &Arc<Self>) -> xrpc_net::SoapHandler {
        let w = self.clone();
        Arc::new(move |body: &[u8]| w.handle(body))
    }

    /// Snapshot + reset the phase accumulators.
    pub fn take_phases(&self) -> WrapperPhases {
        std::mem::take(&mut *self.phases.lock())
    }

    pub fn phases(&self) -> WrapperPhases {
        *self.phases.lock()
    }

    /// Handle one SOAP XRPC request.
    pub fn handle(&self, body: &[u8]) -> Vec<u8> {
        match self.handle_inner(body) {
            Ok(xml) => xml.into_bytes(),
            Err(e) => XrpcFault::from_error(&e).to_xml().into_bytes(),
        }
    }

    fn handle_inner(&self, body: &[u8]) -> XdmResult<String> {
        let text = std::str::from_utf8(body).map_err(|_| XdmError::xrpc("request is not UTF-8"))?;

        // --- treebuild: parse the request message into the engine's store
        let t0 = Instant::now();
        let reqdoc =
            xmldom::parse(text).map_err(|e| XdmError::xrpc(format!("bad request: {e}")))?;
        let (module, method, arity, location) = request_attrs(&reqdoc)?;
        if module == crate::remote_docs::DOC_MODULE {
            // protocol-level document shipping is handled by the wrapper
            // framework itself, not by a generated query
            return self.serve_doc_fetch(text);
        }
        let reqdoc = Arc::new(reqdoc);
        let treebuild = t0.elapsed();

        // --- compile: the cached plan for this request *shape*, or
        // generate + parse + compile on a miss. The request message itself
        // is not part of the plan: the generated query reads it from the
        // fixed [`REQUEST_URI`], resolved per request below.
        let t1 = Instant::now();
        let key = (module.clone(), method.clone(), arity, location.clone());
        let mut built = false;
        let plan = self.plan_cache.get_or_prepare(key, || {
            built = true;
            let query = generate_query(&module, &method, arity, location.as_deref(), REQUEST_URI);
            let parsed = xqast::parse_main_module(&query)?;
            Ok::<_, XdmError>(CompiledMain::compile(Arc::new(parsed)))
        })?;
        let compile = t1.elapsed();
        let hit = !built;

        // --- exec: run it on the wrapped engine and serialize
        let t2 = Instant::now();
        let base: Arc<dyn DocResolver> = match &*self.remote_docs.read() {
            Some(client) => {
                crate::remote_docs::RemoteDocResolver::new(self.docs.clone(), client.clone())
            }
            None => self.docs.clone(),
        };
        let resolver: Arc<dyn DocResolver> = Arc::new(RequestOverlay { doc: reqdoc, base });
        let env = Environment::new(resolver).with_modules(self.modules.clone());
        let (result, _) = xqeval::eval::evaluate_compiled(&plan, &env, Vec::new())?;
        let envelope = result
            .singleton()
            .map_err(|_| XdmError::xrpc("generated query did not produce one envelope"))?;
        let xml = match envelope {
            xdm::Item::Node(n) => {
                format!("<?xml version=\"1.0\" encoding=\"utf-8\"?>{}", n.to_xml())
            }
            _ => return Err(XdmError::xrpc("generated query produced a non-node")),
        };
        let exec = t2.elapsed();

        let mut ph = self.phases.lock();
        ph.requests += 1;
        ph.treebuild += treebuild;
        if hit {
            ph.cache_hits += 1;
            ph.cache_lookup += compile;
        } else {
            ph.compile += compile;
        }
        ph.exec += exec;
        Ok(xml)
    }

    fn serve_doc_fetch(&self, text: &str) -> XdmResult<String> {
        use xrpc_proto::{parse_message, XrpcMessage, XrpcResponse};
        let req = match parse_message(text)? {
            XrpcMessage::Request(r) => r,
            _ => return Err(XdmError::xrpc("expected a request")),
        };
        let mut resp = XrpcResponse::new(req.module, req.method);
        for call in &req.calls {
            let path = call
                .first()
                .and_then(|s| s.first())
                .map(|i| i.string_value())
                .ok_or_else(|| XdmError::xrpc("doc fetch without a path"))?;
            let doc = self
                .docs
                .get(&path)
                .ok_or_else(|| XdmError::doc_error(format!("no document `{path}`")))?;
            resp.results.push(xdm::Sequence::one(xdm::Item::Node(
                xmldom::NodeHandle::root(doc),
            )));
        }
        resp.to_xml()
    }
}

/// Resolves the fixed [`REQUEST_URI`] to this request's stored message;
/// everything else falls through to the wrapped engine's store. Replaces
/// the old per-request `/tmp/request{n}.xml` inserts (which also leaked
/// one document per request into the store).
struct RequestOverlay {
    doc: Arc<xmldom::Document>,
    base: Arc<dyn DocResolver>,
}

impl DocResolver for RequestOverlay {
    fn resolve(&self, uri: &str) -> XdmResult<Arc<xmldom::Document>> {
        if uri == REQUEST_URI {
            Ok(self.doc.clone())
        } else {
            self.base.resolve(uri)
        }
    }
}

/// Pull module/method/arity/location off the request element without any
/// XRPC-specific machinery (plain DOM work, as a wrapper script would).
fn request_attrs(doc: &xmldom::Document) -> XdmResult<(String, String, usize, Option<String>)> {
    use xmldom::qname::{NS_SOAP_ENV, NS_XRPC};
    use xmldom::QName;
    let envelope = doc
        .child_elements(doc.root())
        .into_iter()
        .next()
        .ok_or_else(|| XdmError::xrpc("empty request"))?;
    let body = doc
        .child_element(envelope, &QName::ns("env", NS_SOAP_ENV, "Body"))
        .ok_or_else(|| XdmError::xrpc("missing Body"))?;
    let req = doc
        .child_element(body, &QName::ns("xrpc", NS_XRPC, "request"))
        .ok_or_else(|| XdmError::xrpc("missing xrpc:request"))?;
    let module = doc
        .attr_local(req, "module")
        .ok_or_else(|| XdmError::xrpc("missing @module"))?
        .to_string();
    let method = doc
        .attr_local(req, "method")
        .ok_or_else(|| XdmError::xrpc("missing @method"))?
        .to_string();
    let arity: usize = doc
        .attr_local(req, "arity")
        .ok_or_else(|| XdmError::xrpc("missing @arity"))?
        .parse()
        .map_err(|_| XdmError::xrpc("bad @arity"))?;
    let location = doc.attr_local(req, "location").map(|s| s.to_string());
    Ok((module, method, arity, location))
}

/// Generate the Figure-3 query: the import, the pure-XQuery `n2s`/`s2n`
/// helper functions, and the response construction loop.
pub fn generate_query(
    module: &str,
    method: &str,
    arity: usize,
    location: Option<&str>,
    req_uri: &str,
) -> String {
    let mut q = String::new();
    match location {
        Some(loc) => q.push_str(&format!(
            "import module namespace func = \"{module}\" at \"{loc}\";\n"
        )),
        None => q.push_str(&format!("import module namespace func = \"{module}\";\n")),
    }
    q.push_str(
        r#"declare namespace env = "http://www.w3.org/2003/05/soap-envelope";
declare namespace xrpc = "http://monetdb.cwi.nl/XQuery";
declare namespace xsi = "http://www.w3.org/2001/XMLSchema-instance";
declare namespace xs = "http://www.w3.org/2001/XMLSchema";

declare function local:atom($v as node()) as item() {
  let $t := string($v/@xsi:type)
  return if ($t = "xs:integer") then string($v) cast as xs:integer
    else if ($t = "xs:double") then string($v) cast as xs:double
    else if ($t = "xs:decimal") then string($v) cast as xs:decimal
    else if ($t = "xs:boolean") then string($v) cast as xs:boolean
    else if ($t = "xs:date") then string($v) cast as xs:date
    else if ($t = "xs:time") then string($v) cast as xs:time
    else if ($t = "xs:dateTime") then string($v) cast as xs:dateTime
    else if ($t = "xs:anyURI") then string($v) cast as xs:anyURI
    else if ($t = "xs:untypedAtomic") then string($v) cast as xs:untypedAtomic
    else string($v)
};

declare function local:n2s($s as node()) as item()* {
  for $v in $s/*
  return
    if (local-name($v) = "atomic-value") then local:atom($v)
    else if (local-name($v) = "element") then $v/*
    else if (local-name($v) = "document") then document { $v/node() }
    else if (local-name($v) = "text") then text { string($v) }
    else if (local-name($v) = "comment") then comment { string($v) }
    else if (local-name($v) = "pi") then $v/processing-instruction()
    else if (local-name($v) = "attribute") then $v/@*
    else ()
};

declare function local:s2n-item($i as item()) as node() {
  typeswitch ($i)
    case element() return <xrpc:element>{$i}</xrpc:element>
    case document-node() return <xrpc:document>{$i}</xrpc:document>
    case text() return <xrpc:text>{string($i)}</xrpc:text>
    case comment() return <xrpc:comment>{string($i)}</xrpc:comment>
    case processing-instruction() return <xrpc:pi>{$i}</xrpc:pi>
    case attribute() return <xrpc:attribute>{$i}</xrpc:attribute>
    case xs:integer return <xrpc:atomic-value xsi:type="xs:integer">{string($i)}</xrpc:atomic-value>
    case xs:boolean return <xrpc:atomic-value xsi:type="xs:boolean">{string($i)}</xrpc:atomic-value>
    case xs:decimal return <xrpc:atomic-value xsi:type="xs:decimal">{string($i)}</xrpc:atomic-value>
    case xs:double return <xrpc:atomic-value xsi:type="xs:double">{string($i)}</xrpc:atomic-value>
    case xs:date return <xrpc:atomic-value xsi:type="xs:date">{string($i)}</xrpc:atomic-value>
    case xs:dateTime return <xrpc:atomic-value xsi:type="xs:dateTime">{string($i)}</xrpc:atomic-value>
    default return <xrpc:atomic-value xsi:type="xs:string">{string($i)}</xrpc:atomic-value>
};

declare function local:s2n($items as item()*) as node() {
  <xrpc:sequence>{ for $i in $items return local:s2n-item($i) }</xrpc:sequence>
};

"#,
    );
    q.push_str(
        "<env:Envelope xmlns:env=\"http://www.w3.org/2003/05/soap-envelope\"\n \
         xmlns:xrpc=\"http://monetdb.cwi.nl/XQuery\"\n \
         xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"\n \
         xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\">\n<env:Body>\n",
    );
    q.push_str(&format!(
        "<xrpc:response module=\"{module}\" method=\"{method}\">{{\n"
    ));
    q.push_str(&format!("  for $call in doc(\"{req_uri}\")//xrpc:call\n"));
    let mut params = Vec::new();
    for i in 1..=arity {
        q.push_str(&format!(
            "  let $param{i} := local:n2s($call/xrpc:sequence[{i}])\n"
        ));
        params.push(format!("$param{i}"));
    }
    q.push_str(&format!(
        "  return local:s2n(func:{method}({}))\n",
        params.join(", ")
    ));
    q.push_str("}</xrpc:response>\n</env:Body>\n</env:Envelope>");
    q
}

impl Default for XrpcWrapper {
    fn default() -> Self {
        XrpcWrapper {
            docs: Arc::new(InMemoryDocs::new()),
            modules: Arc::new(ModuleRegistry::new()),
            plan_cache: PlanCache::new(true),
            remote_docs: parking_lot::RwLock::new(None),
            phases: Mutex::new(WrapperPhases::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::{Item, Sequence};
    use xrpc_proto::{parse_message, XrpcMessage, XrpcRequest};

    const FUNCTIONS_MODULE: &str = r#"
        module namespace func = "functions";
        declare function func:getPerson($doc as xs:string, $pid as xs:string) as node()?
        { zero-or-one(doc($doc)//person[@id = $pid]) };
        declare function func:echoVoid() { () };
        declare function func:add($a as xs:integer, $b as xs:integer) { $a + $b };
    "#;

    fn wrapper_with_people() -> Arc<XrpcWrapper> {
        let w = XrpcWrapper::new();
        w.modules.register_source(FUNCTIONS_MODULE).unwrap();
        w.docs.insert(
            "people.xml",
            xmldom::parse(
                r#"<site><person id="p0"><name>Ann</name></person>
                   <person id="p1"><name>Bob</name></person></site>"#,
            )
            .unwrap(),
        );
        w
    }

    fn call(w: &XrpcWrapper, req: &XrpcRequest) -> Vec<Sequence> {
        let out = w.handle(req.to_xml().unwrap().as_bytes());
        match parse_message(std::str::from_utf8(&out).unwrap()).unwrap() {
            XrpcMessage::Response(r) => r.results,
            XrpcMessage::Fault(f) => panic!("fault: {}", f.reason),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn get_person_via_generated_query() {
        let w = wrapper_with_people();
        let mut req = XrpcRequest::new("functions", "getPerson", 2);
        req.push_call(vec![
            Sequence::one(Item::string("people.xml")),
            Sequence::one(Item::string("p1")),
        ]);
        let results = call(&w, &req);
        assert_eq!(results.len(), 1);
        let node = results[0].items()[0].as_node().unwrap();
        assert!(node.to_xml().contains("<name>Bob</name>"));
        let ph = w.phases();
        assert_eq!(ph.requests, 1);
        assert!(ph.compile > Duration::ZERO);
    }

    #[test]
    fn bulk_request_answers_every_call() {
        let w = wrapper_with_people();
        let mut req = XrpcRequest::new("functions", "getPerson", 2);
        for pid in ["p0", "p1", "missing"] {
            req.push_call(vec![
                Sequence::one(Item::string("people.xml")),
                Sequence::one(Item::string(pid)),
            ]);
        }
        let results = call(&w, &req);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].len(), 1);
        assert_eq!(results[1].len(), 1);
        assert!(results[2].is_empty());
    }

    #[test]
    fn atomic_parameters_and_results() {
        let w = wrapper_with_people();
        let mut req = XrpcRequest::new("functions", "add", 2);
        req.push_call(vec![
            Sequence::one(Item::integer(40)),
            Sequence::one(Item::integer(2)),
        ]);
        let results = call(&w, &req);
        let v = results[0].items()[0].atomize();
        assert_eq!(v.lexical(), "42");
        assert_eq!(v.atomic_type(), xdm::AtomicType::Integer);
    }

    #[test]
    fn zero_arity_echo_void() {
        let w = wrapper_with_people();
        let mut req = XrpcRequest::new("functions", "echoVoid", 0);
        req.push_call(vec![]);
        let results = call(&w, &req);
        assert_eq!(results.len(), 1);
        assert!(results[0].is_empty());
    }

    #[test]
    fn unknown_module_yields_fault() {
        let w = XrpcWrapper::new();
        let mut req = XrpcRequest::new("nonexistent", "f", 0);
        req.push_call(vec![]);
        let out = w.handle(req.to_xml().unwrap().as_bytes());
        match parse_message(std::str::from_utf8(&out).unwrap()).unwrap() {
            XrpcMessage::Fault(f) => assert!(f.reason.contains("could not load module!")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn generated_query_text_matches_figure3_shape() {
        let q = generate_query(
            "functions",
            "getPerson",
            2,
            Some("http://example.org/functions.xq"),
            "/tmp/request0.xml",
        );
        assert!(q.contains(
            "import module namespace func = \"functions\" at \"http://example.org/functions.xq\";"
        ));
        assert!(q.contains("for $call in doc(\"/tmp/request0.xml\")//xrpc:call"));
        assert!(q.contains("let $param1 := local:n2s($call/xrpc:sequence[1])"));
        assert!(q.contains("let $param2 := local:n2s($call/xrpc:sequence[2])"));
        assert!(q.contains("local:s2n(func:getPerson($param1, $param2))"));
        assert!(q.contains("<xrpc:response module=\"functions\" method=\"getPerson\">"));
        // and it parses
        xqast::parse_main_module(&q).unwrap();
    }

    #[test]
    fn repeated_shape_hits_plan_cache_with_zero_compile() {
        use std::sync::atomic::Ordering;
        let w = wrapper_with_people();
        let mut req = XrpcRequest::new("functions", "getPerson", 2);
        req.push_call(vec![
            Sequence::one(Item::string("people.xml")),
            Sequence::one(Item::string("p0")),
        ]);
        call(&w, &req);
        let cold = w.phases();
        assert_eq!(cold.cache_hits, 0);
        assert!(cold.compile > Duration::ZERO);

        // same shape, different arguments → plan-cache hit
        let mut req2 = XrpcRequest::new("functions", "getPerson", 2);
        req2.push_call(vec![
            Sequence::one(Item::string("people.xml")),
            Sequence::one(Item::string("p1")),
        ]);
        let warm_results = call(&w, &req2);
        let warm = w.phases();
        assert_eq!(warm.cache_hits, 1);
        assert_eq!(
            warm.compile, cold.compile,
            "a hit must not be folded into the compile column"
        );
        assert_eq!(w.plan_cache.hits.load(Ordering::Relaxed), 1);
        let warm_xml = warm_results[0].items()[0].as_node().unwrap().to_xml();
        assert!(warm_xml.contains("<name>Bob</name>"));

        // fidelity mode: compile-every-request must give identical bytes
        w.set_plan_cache(false);
        let fidelity_results = call(&w, &req2);
        assert_eq!(
            fidelity_results[0].items()[0].as_node().unwrap().to_xml(),
            warm_xml
        );
        assert_eq!(w.phases().cache_hits, 1, "disabled cache never hits");
    }

    #[test]
    fn different_shapes_get_distinct_plans() {
        use std::sync::atomic::Ordering;
        let w = wrapper_with_people();
        let mut get = XrpcRequest::new("functions", "getPerson", 2);
        get.push_call(vec![
            Sequence::one(Item::string("people.xml")),
            Sequence::one(Item::string("p0")),
        ]);
        let mut add = XrpcRequest::new("functions", "add", 2);
        add.push_call(vec![
            Sequence::one(Item::integer(1)),
            Sequence::one(Item::integer(2)),
        ]);
        call(&w, &get);
        call(&w, &add);
        assert_eq!(w.plan_cache.len(), 2);
        assert_eq!(w.plan_cache.hits.load(Ordering::Relaxed), 0);
        // the store no longer leaks one request document per call
        assert!(w.docs.get(REQUEST_URI).is_none());
    }

    #[test]
    fn phase_timers_accumulate_and_reset() {
        let w = wrapper_with_people();
        let mut req = XrpcRequest::new("functions", "echoVoid", 0);
        req.push_call(vec![]);
        call(&w, &req);
        call(&w, &req);
        let ph = w.take_phases();
        assert_eq!(ph.requests, 2);
        assert!(ph.total() > Duration::ZERO);
        assert_eq!(w.phases().requests, 0);
    }
}
