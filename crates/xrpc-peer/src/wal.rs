//! Write-ahead coordination log: the durable half of WS-AT 2PC (§2.3).
//!
//! The paper hand-waves "it logs the union of the pending update lists to
//! stable storage, ensuring q can commit later" — this module is that
//! stable storage. One append-only file per peer holds length-prefixed,
//! CRC-checked records for both 2PC roles:
//!
//! * **participant**: a [`WalRecord::Prepared`] (serialized ∆_q with the
//!   queryId and coordinator address) is forced *before* the `Prepare`
//!   ack leaves, and a [`WalRecord::Decision`] is forced on receiving
//!   the outcome before it is applied;
//! * **coordinator**: a [`WalRecord::CoordinatorCommit`] is forced after
//!   unanimous prepare and before any `Commit` delivery — the classic
//!   presumed-abort commit point (aborts are never logged: no record at
//!   the coordinator *means* abort).
//!
//! On disk the log is a *directory* of numbered segments. Each segment
//! starts with an 8-byte magic and holds frames of
//! `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`; every record
//! carries a monotonic **LSN**. Three mechanisms keep the log fast and
//! bounded under update-heavy traffic:
//!
//! * **group commit** — under [`FsyncPolicy::Always`] concurrent appends
//!   coalesce into one fsync via a leader/follower protocol: whoever
//!   finds no leader syncing becomes the leader, syncs everything written
//!   so far, and wakes the followers whose records rode along;
//! * **segment rotation with copy-forward** — when the active segment
//!   outgrows `rotate_bytes`, the records of still-open transactions are
//!   copied (with their original LSNs) into a fresh segment and the old
//!   generation is reclaimed, so one long-lived prepared transaction no
//!   longer pins the whole log. Replay walks segments in order and
//!   deduplicates by LSN, which makes a crash *between* copy-forward and
//!   reclaim (both generations on disk) harmless;
//! * **quiesce truncation** — whenever an append leaves no transaction
//!   open, the active segment is truncated to its magic and older
//!   segments deleted: log length tracks in-flight transactions, not
//!   query history.
//!
//! Replay truncates a torn or CRC-damaged tail of the *last* segment back
//! to the final intact frame (a crash mid-append loses at most the record
//! being written); damage in any earlier segment is a hard error, since
//! nothing after it can be trusted. A log that fails an append or fsync
//! is **poisoned**: every later append fails fast with a typed XRPC0003
//! durability error instead of half-logging transactions.
//!
//! Single-file `XRPCWAL1` logs from older builds are migrated in place:
//! their records are lifted, stamped with LSNs, and rewritten as the
//! first segment.

use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use xdm::{XdmError, XdmResult};
use xmldom::{Document, NodeHandle, NodeKind, QName};
use xqeval::pul::{PendingUpdateList, UpdatePrimitive};
use xqeval::InMemoryDocs;
use xrpc_net::{crash_points, CrashSwitch};
use xrpc_proto::QueryId;

use crate::store::Decision;

/// Segment magic: identifies (and versions) the segmented log format.
const MAGIC: &[u8; 8] = b"XRPCWAL2";
/// Magic of the legacy single-file format (migrated on open).
const MAGIC_V1: &[u8; 8] = b"XRPCWAL1";

/// When to `fsync` after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Force every record to disk before the append returns (the default;
    /// the only policy that makes the Prepare ack a real promise).
    #[default]
    Always,
    /// Buffered writes only — crash-consistent against *process* crashes
    /// (the OS still has the bytes) but not power loss. For benchmarks
    /// and tests where thousands of fsyncs would dominate.
    Never,
}

/// Tunables for one log. `Default` is the production shape: forced
/// appends with group commit, ~1 MiB segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    pub fsync: FsyncPolicy,
    /// Coalesce concurrent forced appends into one fsync. Off = every
    /// append pays its own fsync (the pre-overhaul behaviour, kept for
    /// the BENCH_U1 before/after comparison).
    pub group_commit: bool,
    /// Rotate the active segment once it exceeds this many bytes (and at
    /// least one transaction is still open — otherwise quiesce truncation
    /// already reset it).
    pub rotate_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Always,
            group_commit: true,
            rotate_bytes: 1 << 20,
        }
    }
}

/// One durable coordination event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Participant side: ∆_q was logged and this peer promised to commit
    /// on request. `coordinator` is where to send `Inquire` after a
    /// restart (the queryID's origin host).
    Prepared {
        qid: QueryId,
        coordinator: String,
        delta: Vec<SerializedPrimitive>,
    },
    /// Participant side: the coordinator's decision arrived (forced
    /// before ∆_q is applied, so a crash between receipt and apply
    /// re-applies instead of forgetting).
    Decision { qid: QueryId, decision: Decision },
    /// Participant side: a committed ∆_q has been applied to the store.
    /// `mark` is the LSN of the Prepared record whose ∆ was discharged —
    /// replaying it re-seeds the store's applied mark, so a redelivered
    /// or replayed decision can never apply the same ∆ twice.
    Applied { qid: QueryId, mark: u64 },
    /// Coordinator side: 2PC is starting for these participants. Written
    /// unforced (losing it costs nothing — no commit record still means
    /// abort); surviving one without a commit or end lets the restarted
    /// coordinator *re-abort* proactively instead of leaving participants
    /// in doubt until they inquire.
    CoordinatorBegin {
        qid: QueryId,
        participants: Vec<String>,
    },
    /// Coordinator side: the commit point — every participant prepared.
    CoordinatorCommit {
        qid: QueryId,
        participants: Vec<String>,
    },
    /// Coordinator side: every participant acknowledged the decision.
    CoordinatorEnd { qid: QueryId },
}

impl WalRecord {
    pub fn qid(&self) -> &QueryId {
        match self {
            WalRecord::Prepared { qid, .. }
            | WalRecord::Decision { qid, .. }
            | WalRecord::Applied { qid, .. }
            | WalRecord::CoordinatorBegin { qid, .. }
            | WalRecord::CoordinatorCommit { qid, .. }
            | WalRecord::CoordinatorEnd { qid } => qid,
        }
    }
}

/// A record as it exists in the log: the payload plus its log sequence
/// number. LSNs are monotonic per log and survive copy-forward rotation
/// unchanged, which is what lets replay deduplicate across generations.
#[derive(Debug, Clone, PartialEq)]
pub struct SequencedRecord {
    pub lsn: u64,
    pub record: WalRecord,
}

/// A target node addressed durably: the store document's URI plus a
/// structural path from the document node (`c<i>` = i-th child, `a<i>` =
/// i-th attribute). Survives restart because the store re-loads the same
/// documents and the path re-resolves against the re-parsed arena.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePath {
    pub doc_uri: String,
    pub steps: Vec<PathStep>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathStep {
    Child(u32),
    Attr(u32),
}

/// A content fragment serialized by value: either generic XML (elements,
/// text, comments, PIs — re-parsed inside a wrapper element) or an
/// attribute node (not well-formed XML on its own, so stored as fields).
#[derive(Debug, Clone, PartialEq)]
pub enum SerializedFragment {
    Xml(String),
    Attribute {
        prefix: Option<String>,
        ns_uri: Option<String>,
        local: String,
        value: String,
    },
}

/// One [`UpdatePrimitive`] in durable form.
#[derive(Debug, Clone, PartialEq)]
pub enum SerializedPrimitive {
    InsertInto {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    InsertFirst {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    InsertLast {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    InsertBefore {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    InsertAfter {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    Delete {
        target: NodePath,
    },
    ReplaceNode {
        target: NodePath,
        replacement: Vec<SerializedFragment>,
    },
    ReplaceValue {
        target: NodePath,
        value: String,
    },
    Rename {
        target: NodePath,
        prefix: Option<String>,
        ns_uri: Option<String>,
        local: String,
    },
    Put {
        node: SerializedFragment,
        uri: String,
    },
}

// ---------------------------------------------------------------------
// PUL <-> durable form
// ---------------------------------------------------------------------

fn node_path(h: &NodeHandle) -> XdmResult<NodePath> {
    let doc_uri =
        h.doc.uri.clone().ok_or_else(|| {
            XdmError::xrpc("cannot log an update targeting a document with no URI")
        })?;
    let mut steps = Vec::new();
    let mut id = h.id;
    loop {
        let node = h.doc.node(id);
        let Some(parent) = node.parent else { break };
        let p = h.doc.node(parent);
        let step = if node.kind == NodeKind::Attribute {
            let i = p.attributes.iter().position(|&a| a == id).ok_or_else(|| {
                XdmError::xrpc("update target attribute detached from its element")
            })?;
            PathStep::Attr(i as u32)
        } else {
            let i = p
                .children
                .iter()
                .position(|&c| c == id)
                .ok_or_else(|| XdmError::xrpc("update target detached from its parent"))?;
            PathStep::Child(i as u32)
        };
        steps.push(step);
        id = parent;
    }
    if id != h.doc.root() {
        return Err(XdmError::xrpc(
            "update target is not attached to its document root",
        ));
    }
    steps.reverse();
    Ok(NodePath { doc_uri, steps })
}

fn resolve_path(docs: &InMemoryDocs, path: &NodePath) -> XdmResult<NodeHandle> {
    let doc = docs.get(&path.doc_uri).ok_or_else(|| {
        XdmError::doc_error(format!(
            "recovered update targets unknown document `{}`",
            path.doc_uri
        ))
    })?;
    let mut id = doc.root();
    for step in &path.steps {
        let node = doc.node(id);
        id = match *step {
            PathStep::Child(i) => *node.children.get(i as usize).ok_or_else(|| {
                XdmError::xrpc(format!(
                    "recovered update path no longer resolves in `{}`",
                    path.doc_uri
                ))
            })?,
            PathStep::Attr(i) => *node.attributes.get(i as usize).ok_or_else(|| {
                XdmError::xrpc(format!(
                    "recovered update path no longer resolves in `{}`",
                    path.doc_uri
                ))
            })?,
        };
    }
    Ok(NodeHandle::new(doc, id))
}

fn serialize_fragment(h: &NodeHandle) -> SerializedFragment {
    if h.kind() == NodeKind::Attribute {
        let name = h.name().cloned().unwrap_or_else(|| QName::local("attr"));
        SerializedFragment::Attribute {
            prefix: name.prefix,
            ns_uri: name.ns_uri,
            local: name.local,
            value: h.data().value.clone(),
        }
    } else {
        SerializedFragment::Xml(h.to_xml())
    }
}

fn parse_fragment(f: &SerializedFragment) -> XdmResult<NodeHandle> {
    match f {
        SerializedFragment::Attribute {
            prefix,
            ns_uri,
            local,
            value,
        } => {
            let name = match (prefix, ns_uri) {
                (Some(p), Some(u)) => QName::ns(p.clone(), u.clone(), local.clone()),
                _ => QName::local(local.clone()),
            };
            let mut d = Document::new();
            let id = d.create_attribute(name, value.clone());
            Ok(NodeHandle::new(Arc::new(d), id))
        }
        SerializedFragment::Xml(xml) => {
            // wrap so text/comment/PI fragments (not well-formed documents
            // on their own) re-parse too
            let wrapped = format!("<w>{xml}</w>");
            let d = Arc::new(xmldom::parse(&wrapped).map_err(|e| {
                XdmError::xrpc(format!("recovered content fragment failed to parse: {e}"))
            })?);
            let w = d.children(d.root())[0];
            let kids = d.children(w).to_vec();
            match kids[..] {
                [only] => Ok(NodeHandle::new(d, only)),
                _ => Err(XdmError::xrpc(format!(
                    "recovered content fragment has {} roots, expected 1",
                    kids.len()
                ))),
            }
        }
    }
}

fn serialize_fragments(hs: &[NodeHandle]) -> Vec<SerializedFragment> {
    hs.iter().map(serialize_fragment).collect()
}

fn parse_fragments(fs: &[SerializedFragment]) -> XdmResult<Vec<NodeHandle>> {
    fs.iter().map(parse_fragment).collect()
}

/// Serialize a PUL into its durable form. Fails when a target lives in a
/// URI-less document (nothing durable to re-resolve against).
pub fn serialize_pul(pul: &PendingUpdateList) -> XdmResult<Vec<SerializedPrimitive>> {
    pul.primitives
        .iter()
        .map(|p| {
            Ok(match p {
                UpdatePrimitive::InsertInto { target, content } => {
                    SerializedPrimitive::InsertInto {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::InsertFirst { target, content } => {
                    SerializedPrimitive::InsertFirst {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::InsertLast { target, content } => {
                    SerializedPrimitive::InsertLast {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::InsertBefore { target, content } => {
                    SerializedPrimitive::InsertBefore {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::InsertAfter { target, content } => {
                    SerializedPrimitive::InsertAfter {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::Delete { target } => SerializedPrimitive::Delete {
                    target: node_path(target)?,
                },
                UpdatePrimitive::ReplaceNode {
                    target,
                    replacement,
                } => SerializedPrimitive::ReplaceNode {
                    target: node_path(target)?,
                    replacement: serialize_fragments(replacement),
                },
                UpdatePrimitive::ReplaceValue { target, value } => {
                    SerializedPrimitive::ReplaceValue {
                        target: node_path(target)?,
                        value: value.clone(),
                    }
                }
                UpdatePrimitive::Rename { target, name } => SerializedPrimitive::Rename {
                    target: node_path(target)?,
                    prefix: name.prefix.clone(),
                    ns_uri: name.ns_uri.clone(),
                    local: name.local.clone(),
                },
                UpdatePrimitive::Put { node, uri } => SerializedPrimitive::Put {
                    node: serialize_fragment(node),
                    uri: uri.clone(),
                },
            })
        })
        .collect()
}

/// Rebuild a PUL against the current document store (after a restart the
/// paths re-resolve to the re-loaded documents — the store's contents at
/// Prepare time, which is exactly what the snapshot held: a participant
/// in prepared state blocks conflicting commits until decided).
pub fn deserialize_pul(
    docs: &InMemoryDocs,
    prims: &[SerializedPrimitive],
) -> XdmResult<PendingUpdateList> {
    let mut pul = PendingUpdateList::new();
    for p in prims {
        pul.push(match p {
            SerializedPrimitive::InsertInto { target, content } => UpdatePrimitive::InsertInto {
                target: resolve_path(docs, target)?,
                content: parse_fragments(content)?,
            },
            SerializedPrimitive::InsertFirst { target, content } => UpdatePrimitive::InsertFirst {
                target: resolve_path(docs, target)?,
                content: parse_fragments(content)?,
            },
            SerializedPrimitive::InsertLast { target, content } => UpdatePrimitive::InsertLast {
                target: resolve_path(docs, target)?,
                content: parse_fragments(content)?,
            },
            SerializedPrimitive::InsertBefore { target, content } => {
                UpdatePrimitive::InsertBefore {
                    target: resolve_path(docs, target)?,
                    content: parse_fragments(content)?,
                }
            }
            SerializedPrimitive::InsertAfter { target, content } => UpdatePrimitive::InsertAfter {
                target: resolve_path(docs, target)?,
                content: parse_fragments(content)?,
            },
            SerializedPrimitive::Delete { target } => UpdatePrimitive::Delete {
                target: resolve_path(docs, target)?,
            },
            SerializedPrimitive::ReplaceNode {
                target,
                replacement,
            } => UpdatePrimitive::ReplaceNode {
                target: resolve_path(docs, target)?,
                replacement: parse_fragments(replacement)?,
            },
            SerializedPrimitive::ReplaceValue { target, value } => UpdatePrimitive::ReplaceValue {
                target: resolve_path(docs, target)?,
                value: value.clone(),
            },
            SerializedPrimitive::Rename {
                target,
                prefix,
                ns_uri,
                local,
            } => UpdatePrimitive::Rename {
                target: resolve_path(docs, target)?,
                name: match (prefix, ns_uri) {
                    (Some(p), Some(u)) => QName::ns(p.clone(), u.clone(), local.clone()),
                    _ => QName::local(local.clone()),
                },
            },
            SerializedPrimitive::Put { node, uri } => UpdatePrimitive::Put {
                node: parse_fragment(node)?,
                uri: uri.clone(),
            },
        });
    }
    Ok(pul)
}

// ---------------------------------------------------------------------
// Record payload encoding (line-oriented, values percent-escaped)
// ---------------------------------------------------------------------

fn esc(s: &str, out: &mut String) {
    // besides line structure (%, newlines), escape every separator any
    // encoder below uses (tab, pipe, slash, unit separator) so free-text
    // fields can never be confused with framing
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            '\t' => out.push_str("%09"),
            '|' => out.push_str("%7C"),
            '/' => out.push_str("%2F"),
            '\u{1f}' => out.push_str("%1F"),
            c => out.push(c),
        }
    }
}

fn unesc(s: &str) -> XdmResult<String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| XdmError::xrpc("bad escape in WAL record"))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| XdmError::xrpc("bad escape in WAL record"))?;
            out.push(v as char);
            i += 3;
        } else {
            // payload is checked UTF-8; walk to the next char boundary
            let ch = s[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Ok(out)
}

fn push_field(out: &mut String, key: &str, value: &str) {
    out.push_str(key);
    out.push('=');
    esc(value, out);
    out.push('\n');
}

fn encode_qid(out: &mut String, qid: &QueryId) {
    push_field(out, "qid.host", &qid.host);
    push_field(out, "qid.ts", &qid.timestamp_millis.to_string());
    push_field(out, "qid.timeout", &qid.timeout_secs.to_string());
}

fn path_to_string(p: &NodePath) -> String {
    let mut s = String::new();
    esc(&p.doc_uri, &mut s);
    for step in &p.steps {
        match step {
            PathStep::Child(i) => s.push_str(&format!("/c{i}")),
            PathStep::Attr(i) => s.push_str(&format!("/a{i}")),
        }
    }
    s
}

fn path_from_string(s: &str) -> XdmResult<NodePath> {
    let mut parts = s.split('/');
    let uri = unesc(parts.next().unwrap_or(""))?;
    let mut steps = Vec::new();
    for p in parts {
        if p.is_empty() {
            return Err(XdmError::xrpc("empty path step in WAL record"));
        }
        let (kind, idx) = p.split_at(1);
        let i: u32 = idx
            .parse()
            .map_err(|_| XdmError::xrpc("bad path step in WAL record"))?;
        steps.push(match kind {
            "c" => PathStep::Child(i),
            "a" => PathStep::Attr(i),
            _ => return Err(XdmError::xrpc("bad path step kind in WAL record")),
        });
    }
    Ok(NodePath {
        doc_uri: uri,
        steps,
    })
}

fn frag_to_string(f: &SerializedFragment) -> String {
    let mut s = String::new();
    match f {
        SerializedFragment::Xml(xml) => {
            s.push_str("X:");
            esc(xml, &mut s);
        }
        SerializedFragment::Attribute {
            prefix,
            ns_uri,
            local,
            value,
        } => {
            s.push_str("A:");
            esc(prefix.as_deref().unwrap_or(""), &mut s);
            s.push('\t');
            esc(ns_uri.as_deref().unwrap_or(""), &mut s);
            s.push('\t');
            esc(local, &mut s);
            s.push('\t');
            esc(value, &mut s);
        }
    }
    s
}

fn frag_from_string(s: &str) -> XdmResult<SerializedFragment> {
    if let Some(xml) = s.strip_prefix("X:") {
        return Ok(SerializedFragment::Xml(unesc(xml)?));
    }
    let body = s
        .strip_prefix("A:")
        .ok_or_else(|| XdmError::xrpc("bad fragment kind in WAL record"))?;
    let fields: Vec<&str> = body.split('\t').collect();
    if fields.len() != 4 {
        return Err(XdmError::xrpc("bad attribute fragment in WAL record"));
    }
    let opt = |s: String| if s.is_empty() { None } else { Some(s) };
    Ok(SerializedFragment::Attribute {
        prefix: opt(unesc(fields[0])?),
        ns_uri: opt(unesc(fields[1])?),
        local: unesc(fields[2])?,
        value: unesc(fields[3])?,
    })
}

/// `prim=<op>|<target-or-frag>|<field>|...` — fields are pre-escaped by
/// their own encoders, `|` never appears unescaped inside them because
/// path/fragment encoders escape `%` and the separators they use.
fn prim_to_string(p: &SerializedPrimitive) -> String {
    fn frags(fs: &[SerializedFragment]) -> String {
        fs.iter()
            .map(frag_to_string)
            .collect::<Vec<_>>()
            .join("\u{1f}")
    }
    match p {
        SerializedPrimitive::InsertInto { target, content } => {
            format!("InsertInto|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::InsertFirst { target, content } => {
            format!("InsertFirst|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::InsertLast { target, content } => {
            format!("InsertLast|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::InsertBefore { target, content } => {
            format!("InsertBefore|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::InsertAfter { target, content } => {
            format!("InsertAfter|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::Delete { target } => {
            format!("Delete|{}", path_to_string(target))
        }
        SerializedPrimitive::ReplaceNode {
            target,
            replacement,
        } => format!(
            "ReplaceNode|{}|{}",
            path_to_string(target),
            frags(replacement)
        ),
        SerializedPrimitive::ReplaceValue { target, value } => {
            let mut v = String::new();
            esc(value, &mut v);
            format!("ReplaceValue|{}|{v}", path_to_string(target))
        }
        SerializedPrimitive::Rename {
            target,
            prefix,
            ns_uri,
            local,
        } => {
            let mut f = String::new();
            esc(prefix.as_deref().unwrap_or(""), &mut f);
            f.push('\t');
            esc(ns_uri.as_deref().unwrap_or(""), &mut f);
            f.push('\t');
            esc(local, &mut f);
            format!("Rename|{}|{f}", path_to_string(target))
        }
        SerializedPrimitive::Put { node, uri } => {
            let mut u = String::new();
            esc(uri, &mut u);
            format!("Put|{}|{u}", frag_to_string(node))
        }
    }
}

fn prim_from_string(s: &str) -> XdmResult<SerializedPrimitive> {
    let mut parts = s.splitn(3, '|');
    let op = parts.next().unwrap_or("");
    let f1 = parts.next().unwrap_or("");
    let f2 = parts.next().unwrap_or("");
    let frags = |s: &str| -> XdmResult<Vec<SerializedFragment>> {
        if s.is_empty() {
            return Ok(Vec::new());
        }
        s.split('\u{1f}').map(frag_from_string).collect()
    };
    Ok(match op {
        "InsertInto" => SerializedPrimitive::InsertInto {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "InsertFirst" => SerializedPrimitive::InsertFirst {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "InsertLast" => SerializedPrimitive::InsertLast {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "InsertBefore" => SerializedPrimitive::InsertBefore {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "InsertAfter" => SerializedPrimitive::InsertAfter {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "Delete" => SerializedPrimitive::Delete {
            target: path_from_string(f1)?,
        },
        "ReplaceNode" => SerializedPrimitive::ReplaceNode {
            target: path_from_string(f1)?,
            replacement: frags(f2)?,
        },
        "ReplaceValue" => SerializedPrimitive::ReplaceValue {
            target: path_from_string(f1)?,
            value: unesc(f2)?,
        },
        "Rename" => {
            let fields: Vec<&str> = f2.split('\t').collect();
            if fields.len() != 3 {
                return Err(XdmError::xrpc("bad Rename fields in WAL record"));
            }
            let opt = |s: String| if s.is_empty() { None } else { Some(s) };
            SerializedPrimitive::Rename {
                target: path_from_string(f1)?,
                prefix: opt(unesc(fields[0])?),
                ns_uri: opt(unesc(fields[1])?),
                local: unesc(fields[2])?,
            }
        }
        "Put" => SerializedPrimitive::Put {
            node: frag_from_string(f1)?,
            uri: unesc(f2)?,
        },
        other => {
            return Err(XdmError::xrpc(format!(
                "unknown update primitive `{other}` in WAL record"
            )))
        }
    })
}

fn encode_record(rec: &WalRecord, lsn: u64) -> String {
    let mut out = String::new();
    match rec {
        WalRecord::Prepared {
            qid,
            coordinator,
            delta,
        } => {
            out.push_str("prepared\n");
            encode_qid(&mut out, qid);
            push_field(&mut out, "coordinator", coordinator);
            for p in delta {
                push_field(&mut out, "prim", &prim_to_string(p));
            }
        }
        WalRecord::Decision { qid, decision } => {
            out.push_str("decision\n");
            encode_qid(&mut out, qid);
            push_field(
                &mut out,
                "outcome",
                match decision {
                    Decision::Committed => "committed",
                    Decision::Aborted => "aborted",
                },
            );
        }
        WalRecord::Applied { qid, mark } => {
            out.push_str("applied\n");
            encode_qid(&mut out, qid);
            push_field(&mut out, "mark", &mark.to_string());
        }
        WalRecord::CoordinatorBegin { qid, participants } => {
            out.push_str("coord-begin\n");
            encode_qid(&mut out, qid);
            for p in participants {
                push_field(&mut out, "participant", p);
            }
        }
        WalRecord::CoordinatorCommit { qid, participants } => {
            out.push_str("coord-commit\n");
            encode_qid(&mut out, qid);
            for p in participants {
                push_field(&mut out, "participant", p);
            }
        }
        WalRecord::CoordinatorEnd { qid } => {
            out.push_str("coord-end\n");
            encode_qid(&mut out, qid);
        }
    }
    push_field(&mut out, "lsn", &lsn.to_string());
    out
}

fn decode_record(payload: &[u8]) -> XdmResult<SequencedRecord> {
    let text =
        std::str::from_utf8(payload).map_err(|_| XdmError::xrpc("WAL record is not UTF-8"))?;
    let mut lines = text.lines();
    let kind = lines.next().unwrap_or("");
    let mut host = String::new();
    let mut ts: u64 = 0;
    let mut timeout: u32 = 0;
    let mut coordinator = String::new();
    let mut outcome = String::new();
    let mut prims = Vec::new();
    let mut participants = Vec::new();
    let mut lsn: u64 = 0;
    let mut mark: u64 = 0;
    for line in lines {
        let Some((key, raw)) = line.split_once('=') else {
            continue;
        };
        match key {
            "qid.host" => host = unesc(raw)?,
            "qid.ts" => {
                ts = raw
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad qid.ts in WAL record"))?
            }
            "qid.timeout" => {
                timeout = raw
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad qid.timeout in WAL record"))?
            }
            "coordinator" => coordinator = unesc(raw)?,
            "outcome" => outcome = raw.to_string(),
            // the line layer escaped the whole prim string (its own field
            // escapes survive as %25-doubled sequences); peel one layer
            // before splitting on the `|` separators
            "prim" => prims.push(prim_from_string(&unesc(raw)?)?),
            "participant" => participants.push(unesc(raw)?),
            // absent in legacy records: lsn 0 = "before sequencing"
            "lsn" => {
                lsn = raw
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad lsn in WAL record"))?
            }
            "mark" => {
                mark = raw
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad mark in WAL record"))?
            }
            _ => {} // forward compatibility: ignore unknown fields
        }
    }
    let qid = QueryId::new(host, ts, timeout);
    let record = match kind {
        "prepared" => WalRecord::Prepared {
            qid,
            coordinator,
            delta: prims,
        },
        "decision" => WalRecord::Decision {
            qid,
            decision: match outcome.as_str() {
                "committed" => Decision::Committed,
                "aborted" => Decision::Aborted,
                other => {
                    return Err(XdmError::xrpc(format!(
                        "unknown decision outcome `{other}` in WAL record"
                    )))
                }
            },
        },
        "applied" => WalRecord::Applied { qid, mark },
        "coord-begin" => WalRecord::CoordinatorBegin { qid, participants },
        "coord-commit" => WalRecord::CoordinatorCommit { qid, participants },
        "coord-end" => WalRecord::CoordinatorEnd { qid },
        other => return Err(XdmError::xrpc(format!("unknown WAL record kind `{other}`"))),
    };
    Ok(SequencedRecord { lsn, record })
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled, no external crates
// ---------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data` (the common zlib/PNG polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------

/// Outcome of opening a log: the surviving records plus what the opener
/// observed about the tail.
pub struct Replay {
    pub records: Vec<SequencedRecord>,
    /// True when replay stopped early at a torn or corrupt tail of the
    /// last segment (which was truncated away before the log re-opened
    /// for appends).
    pub tail_damaged: bool,
}

/// Monotonic counters the admin surface exports; see
/// [`Wal::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Segments currently on disk (1 except briefly around rotation, or
    /// after a mid-rotation crash until the next rotation/quiesce).
    pub segments: u64,
    /// Total bytes across all segments.
    pub log_bytes: u64,
    /// Rotations performed since open.
    pub rotations: u64,
    /// Live records copied forward across all rotations.
    pub copy_forward_records: u64,
    /// Torn/corrupt segment tails truncated at open.
    pub torn_tail_recoveries: u64,
    /// Physical fsyncs issued (each may cover a whole group-commit batch).
    pub fsyncs: u64,
    /// True once an append or fsync has failed: the log refuses further
    /// appends with an XRPC0003 durability error.
    pub poisoned: bool,
}

/// Append-latency/fsync/batch observers, installed by `Peer::attach_wal`;
/// absent for standalone logs.
#[derive(Default)]
struct Observers {
    /// Whole-append latency (encode + write + force wait), µs.
    append: Option<Arc<xrpc_obs::Histogram>>,
    /// Physical fsync latency, µs.
    fsync: Option<Arc<xrpc_obs::Histogram>>,
    /// Records made durable per physical fsync (group-commit batch size).
    batch: Option<Arc<xrpc_obs::Histogram>>,
}

/// An open write-ahead log (a directory of segments).
pub struct Wal {
    path: PathBuf,
    config: WalConfig,
    inner: Mutex<WalInner>,
    /// Every record at-or-below this LSN is on stable storage (or
    /// closed, which is just as good — a transaction with no obligation
    /// needs no durable record). Lock-free so the group-commit leader
    /// publishes durability with one `fetch_max` instead of queueing on
    /// a contended mutex behind every runnable committer.
    durable_lsn: AtomicU64,
    /// Group-commit leaders in flight: whoever CAS-claims a free slot
    /// drains the staged batch and fsyncs it. Two slots pipeline the
    /// log: while one leader sleeps in `fdatasync`, the next batch is
    /// already drained and queued behind it in the filesystem journal,
    /// so the publish → wake → accumulate gap overlaps with real I/O
    /// instead of leaving the disk idle.
    sync_inflight: AtomicU64,
    /// Parking lot for group-commit followers, and the serialization
    /// lock for solo-mode forces. Guards no data — `durable_lsn` is the
    /// predicate — so waiters use a bounded `wait_timeout` and a missed
    /// notify costs at most one timeout, never a hang.
    sync: Mutex<()>,
    sync_cond: Condvar,
    /// Highest LSN written to the active segment (advanced under `inner`).
    written_lsn: AtomicU64,
    poisoned: AtomicBool,
    poison_reason: Mutex<Option<String>>,
    /// Crash-point switch for deterministic fault injection (chaos tests).
    crash: Mutex<Option<Arc<CrashSwitch>>>,
    observers: Mutex<Observers>,
    rotations: AtomicU64,
    copy_forward_records: AtomicU64,
    torn_tail_recoveries: AtomicU64,
    fsyncs: AtomicU64,
}

/// Key of one undischarged durable obligation: queryID plus *role* — the
/// same peer can hold both a participant obligation (its own prepared
/// ∆_q) and a coordinator obligation (an undelivered commit decision)
/// for one transaction, e.g. an originator with local updates. They
/// discharge independently, so they must not share an entry.
type OpenKey = (String, u64, Role);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Role {
    Participant,
    Coordinator,
}

struct WalInner {
    /// Active segment, positioned at its end.
    file: File,
    /// Clone of the active segment's handle; the group-commit leader
    /// fsyncs through it *outside* the `inner` lock so appenders keep
    /// staging (and solo/`Never` writers keep writing) during the sync.
    sync_handle: Arc<File>,
    /// Active segment sequence number (file name `{seq:016x}.seg`).
    seg_seq: u64,
    /// Every segment on disk, ascending; last = active. More than one
    /// only until the next rotation or quiesce reclaims the older
    /// generation (e.g. after a mid-rotation crash).
    segs: Vec<u64>,
    /// Logical size of the active segment: magic + every framed record,
    /// including ones still staged. The physical file may extend further
    /// with preallocated zeros (see [`prealloc_len`]).
    seg_bytes: u64,
    /// Total size of the non-active segments.
    older_bytes: u64,
    next_lsn: u64,
    /// Records of transactions that still demand action after a crash,
    /// per obligation — exactly what copy-forward must preserve across a
    /// rotation. Empty map after an append = quiesced → truncate.
    live: HashMap<OpenKey, Vec<SequencedRecord>>,
    /// Group-commit staging buffer: framed records appended but not yet
    /// written to the active segment. The batch leader drains it with
    /// one `write_all` immediately before its fsync, so the file is
    /// write-quiescent while the flush runs — concurrent appends during
    /// an fdatasync keep re-dirtying the inode and stretch the flush
    /// with the batch size. Only used when staging applies (group commit
    /// under `FsyncPolicy::Always`); empty otherwise.
    staged: Vec<u8>,
}

fn seg_name(seq: u64) -> String {
    format!("{seq:016x}.seg")
}

/// Filesystem page size assumed for drain padding and preallocation.
const PAGE: u64 = 4096;

/// Group-commit fsyncs allowed in flight at once (see
/// `Wal::sync_inflight`). One slot maximizes batching; the second
/// pipelines the next batch behind the running fsync so the log never
/// waits for leader wakeup before starting more I/O.
const MAX_INFLIGHT_SYNCS: u64 = 2;

/// Preallocated length of an active segment under staging. fdatasync of
/// a growing file must journal the extent/size change, which makes its
/// latency scale with the batch size — exactly the tail group commit is
/// supposed to amortize away. Zero-filling the segment up front turns
/// every drain into an in-place overwrite with a flat flush cost. Slack
/// beyond `rotate_bytes` absorbs the overshoot of the append that trips
/// rotation; the cap keeps absurd `rotate_bytes` settings from writing
/// gigabytes of zeros.
fn prealloc_len(config: &WalConfig) -> u64 {
    config
        .rotate_bytes
        .saturating_add(64 * 1024)
        .min(4 * 1024 * 1024)
}

fn zero_fill(file: &mut File, from: u64, to: u64) -> std::io::Result<()> {
    if to <= from {
        return Ok(());
    }
    file.seek(SeekFrom::Start(from))?;
    let zeros = vec![0u8; 64 * 1024];
    let mut remaining = to - from;
    while remaining > 0 {
        let n = remaining.min(zeros.len() as u64) as usize;
        file.write_all(&zeros[..n])?;
        remaining -= n as u64;
    }
    Ok(())
}

fn frame_bytes(payload: &str) -> Vec<u8> {
    let payload = payload.as_bytes();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Scan `buf` from `start` for frames. Returns the decoded records, the
/// offset just past the last intact frame, and whether the tail beyond it
/// was damaged (torn, CRC mismatch, or undecodable payload).
fn scan_frames(buf: &[u8], start: usize) -> (Vec<SequencedRecord>, usize, bool) {
    let mut records = Vec::new();
    let mut pos = start;
    loop {
        let Some(header) = buf.get(pos..pos + 8) else {
            return (records, pos, pos != buf.len());
        };
        let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len == 0 && crc == 0 {
            // an all-zero header is the logical end of a preallocated or
            // page-padded segment, not damage: a real frame never has
            // len 0, and a torn frame's bytes were never acked durable
            return (records, pos, false);
        }
        let Some(payload) = buf.get(pos + 8..pos + 8 + len) else {
            return (records, pos, true);
        };
        if crc32(payload) != crc {
            return (records, pos, true);
        }
        match decode_record(payload) {
            Ok(r) => records.push(r),
            // intact frame, unintelligible payload: stop here like a
            // torn tail rather than guessing
            Err(_) => return (records, pos, true),
        }
        pos += 8 + len;
    }
}

impl Wal {
    /// Open (creating if absent) the log at `path` with default tunables
    /// and the given fsync policy.
    pub fn open(path: impl AsRef<Path>, fsync: FsyncPolicy) -> XdmResult<(Arc<Wal>, Replay)> {
        Self::open_with(
            path,
            WalConfig {
                fsync,
                ..WalConfig::default()
            },
        )
    }

    /// Open (creating if absent) the log directory at `path`, replaying
    /// every intact record segment by segment, deduplicated by LSN. A
    /// torn or CRC-damaged tail of the *last* segment ends the replay —
    /// that segment is truncated back to its last intact frame so appends
    /// resume cleanly; damage in an earlier segment is a hard error. A
    /// legacy single-file `XRPCWAL1` log is migrated into the segmented
    /// layout first.
    pub fn open_with(path: impl AsRef<Path>, config: WalConfig) -> XdmResult<(Arc<Wal>, Replay)> {
        let path = path.as_ref().to_path_buf();
        let io = |e: std::io::Error| XdmError::xrpc(format!("WAL {}: {e}", path.display()));

        // ---- legacy single-file log? lift its records for migration ----
        let mut migrated: Vec<SequencedRecord> = Vec::new();
        let mut tail_damaged = false;
        let mut torn_recoveries = 0u64;
        if std::fs::metadata(&path)
            .map(|m| m.is_file())
            .unwrap_or(false)
        {
            let buf = std::fs::read(&path).map_err(io)?;
            if buf.is_empty() {
                // a never-written placeholder: adopt it as a fresh log
                std::fs::remove_file(&path).map_err(io)?;
            } else if buf.len() < MAGIC_V1.len() || &buf[..MAGIC_V1.len()] != MAGIC_V1 {
                return Err(XdmError::xrpc(format!(
                    "{} is not an XRPC WAL (bad magic)",
                    path.display()
                )));
            } else {
                let (records, _, damaged) = scan_frames(&buf, MAGIC_V1.len());
                // legacy records carry no LSNs; stamp them in log order
                migrated = records
                    .into_iter()
                    .enumerate()
                    .map(|(i, sr)| SequencedRecord {
                        lsn: i as u64 + 1,
                        record: sr.record,
                    })
                    .collect();
                if damaged {
                    tail_damaged = true;
                    torn_recoveries += 1;
                }
                std::fs::remove_file(&path).map_err(io)?;
            }
        }

        std::fs::create_dir_all(&path).map_err(io)?;

        // ---- enumerate segments ----
        let mut segs: Vec<u64> = Vec::new();
        for entry in std::fs::read_dir(&path).map_err(io)? {
            let entry = entry.map_err(io)?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_suffix(".seg") {
                if let Ok(seq) = u64::from_str_radix(stem, 16) {
                    segs.push(seq);
                }
            }
        }
        segs.sort_unstable();

        // ---- replay, deduplicating by LSN across generations ----
        let mut records: Vec<SequencedRecord> = migrated;
        let mut seen: HashSet<u64> = records.iter().map(|r| r.lsn).collect();
        // logical end of the last segment: where appends resume (the
        // physical file may extend further with preallocated zeros)
        let mut active_end = MAGIC.len() as u64;
        for (i, &seq) in segs.iter().enumerate() {
            let seg_path = path.join(seg_name(seq));
            let buf = std::fs::read(&seg_path).map_err(io)?;
            let last = i + 1 == segs.len();
            let intact_magic = buf.len() >= MAGIC.len() && &buf[..MAGIC.len()] == MAGIC;
            if !intact_magic {
                if last {
                    // crash between segment creation and its magic write:
                    // an empty shell, recoverable
                    std::fs::write(&seg_path, MAGIC).map_err(io)?;
                    active_end = MAGIC.len() as u64;
                    tail_damaged = true;
                    torn_recoveries += 1;
                    continue;
                }
                return Err(XdmError::xrpc(format!(
                    "WAL segment {} is damaged (bad magic) before the final segment",
                    seg_path.display()
                )));
            }
            let (frames, end, damaged) = scan_frames(&buf, MAGIC.len());
            if last {
                active_end = end as u64;
            }
            if damaged {
                if !last {
                    return Err(XdmError::xrpc(format!(
                        "WAL segment {} is corrupt before the final segment",
                        seg_path.display()
                    )));
                }
                OpenOptions::new()
                    .write(true)
                    .open(&seg_path)
                    .map_err(io)?
                    .set_len(end as u64)
                    .map_err(io)?;
                tail_damaged = true;
                torn_recoveries += 1;
            }
            for sr in frames {
                // lsn 0 marks a pre-sequencing record and is never
                // emitted by this writer; don't let it collapse dedup
                if sr.lsn == 0 || seen.insert(sr.lsn) {
                    records.push(sr);
                }
            }
        }
        records.sort_by_key(|r| r.lsn);

        let next_lsn = records.iter().map(|r| r.lsn).max().unwrap_or(0) + 1;
        let mut live: HashMap<OpenKey, Vec<SequencedRecord>> = HashMap::new();
        for sr in &records {
            apply_live(&mut live, sr);
        }

        // ---- set up the active segment ----
        let (seg_seq, mut file) = if let Some(&active) = segs.last() {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(path.join(seg_name(active)))
                .map_err(io)?;
            f.seek(SeekFrom::Start(active_end)).map_err(io)?;
            (active, f)
        } else {
            // fresh log (or legacy migration): write segment 1 with the
            // lifted records, if any
            let seg_path = path.join(seg_name(1));
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&seg_path)
                .map_err(io)?;
            f.write_all(MAGIC).map_err(io)?;
            for sr in &records {
                f.write_all(&frame_bytes(&encode_record(&sr.record, sr.lsn)))
                    .map_err(io)?;
            }
            if config.fsync == FsyncPolicy::Always && !records.is_empty() {
                f.sync_data().map_err(io)?;
            }
            active_end = f.stream_position().map_err(io)?;
            segs = vec![1];
            (1, f)
        };
        if config.group_commit && config.fsync == FsyncPolicy::Always {
            // staging mode: preallocate so group drains overwrite in place
            let physical = file.metadata().map_err(io)?.len();
            let target = prealloc_len(&config);
            if physical < target {
                zero_fill(&mut file, physical, target).map_err(io)?;
                file.sync_data().map_err(io)?;
                file.seek(SeekFrom::Start(active_end)).map_err(io)?;
            }
        }
        let seg_bytes = active_end;
        let older_bytes = segs[..segs.len() - 1]
            .iter()
            .map(|&s| {
                std::fs::metadata(path.join(seg_name(s)))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum();
        let sync_handle = Arc::new(file.try_clone().map_err(io)?);

        let written = next_lsn - 1;
        let wal = Arc::new(Wal {
            path,
            config,
            inner: Mutex::new(WalInner {
                file,
                sync_handle,
                seg_seq,
                segs,
                seg_bytes,
                older_bytes,
                next_lsn,
                live,
                staged: Vec::new(),
            }),
            durable_lsn: AtomicU64::new(written),
            sync_inflight: AtomicU64::new(0),
            sync: Mutex::new(()),
            sync_cond: Condvar::new(),
            written_lsn: AtomicU64::new(written),
            poisoned: AtomicBool::new(false),
            poison_reason: Mutex::new(None),
            crash: Mutex::new(None),
            observers: Mutex::new(Observers::default()),
            rotations: AtomicU64::new(0),
            copy_forward_records: AtomicU64::new(0),
            torn_tail_recoveries: AtomicU64::new(torn_recoveries),
            fsyncs: AtomicU64::new(0),
        });
        Ok((
            wal,
            Replay {
                records,
                tail_damaged,
            },
        ))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn config(&self) -> WalConfig {
        self.config
    }

    /// Record append latency, fsync latency and group-commit batch size
    /// into the given histograms (any may be shared with `xrpc-obs`).
    pub fn set_observers(
        &self,
        append: Arc<xrpc_obs::Histogram>,
        fsync: Arc<xrpc_obs::Histogram>,
        batch: Arc<xrpc_obs::Histogram>,
    ) {
        *self.observers.lock() = Observers {
            append: Some(append),
            fsync: Some(fsync),
            batch: Some(batch),
        };
    }

    /// Consult this switch at the WAL-internal crash points
    /// ([`crash_points::WAL_GROUP_FSYNC`], [`crash_points::WAL_MID_ROTATION`]).
    pub fn set_crash_switch(&self, sw: Arc<CrashSwitch>) {
        *self.crash.lock() = Some(sw);
    }

    /// Mark the log unusable: every subsequent append fails fast with an
    /// XRPC0003 durability error. Called internally on the first real
    /// append/fsync I/O failure; public as an operational kill switch
    /// (e.g. when the operator knows the volume is failing).
    pub fn poison(&self, reason: impl Into<String>) {
        let reason = reason.into();
        self.poisoned.store(true, Ordering::SeqCst);
        let mut slot = self.poison_reason.lock();
        if slot.is_none() {
            *slot = Some(reason);
        }
        // wake any group-commit waiters so they observe the poisoning
        self.sync_cond.notify_all();
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    pub fn poison_reason(&self) -> Option<String> {
        self.poison_reason.lock().clone()
    }

    fn check_poisoned(&self) -> XdmResult<()> {
        if self.is_poisoned() {
            let why = self.poison_reason().unwrap_or_else(|| "unknown".into());
            return Err(XdmError::xrpc_durability(format!(
                "WAL {} is poisoned ({why}); refusing to log",
                self.path.display()
            )));
        }
        Ok(())
    }

    /// Route a real I/O failure through poisoning and produce the typed
    /// durability error. Simulated crash-point trips never come here.
    fn io_poison(&self, what: &str, e: std::io::Error) -> XdmError {
        let msg = format!("WAL {} {what} failed: {e}", self.path.display());
        self.poison(msg.clone());
        XdmError::xrpc_durability(msg)
    }

    fn crash_hit(&self, point: &str) -> XdmResult<()> {
        let sw = self.crash.lock().clone();
        if let Some(sw) = sw {
            if sw.hit(point) {
                return Err(XdmError::xrpc(format!("simulated crash at {point}")));
            }
        }
        Ok(())
    }

    /// Counter snapshot for `/metrics`.
    pub fn stats(&self) -> WalStats {
        let inner = self.inner.lock();
        WalStats {
            segments: inner.segs.len() as u64,
            log_bytes: inner.seg_bytes + inner.older_bytes,
            rotations: self.rotations.load(Ordering::Relaxed),
            copy_forward_records: self.copy_forward_records.load(Ordering::Relaxed),
            torn_tail_recoveries: self.torn_tail_recoveries.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            poisoned: self.is_poisoned(),
        }
    }

    /// Append one record and force it per policy; returns its LSN. When
    /// the append leaves no transaction open the log is truncated instead
    /// — checkpoint-on-quiesce.
    pub fn append(&self, rec: &WalRecord) -> XdmResult<u64> {
        self.append_impl(rec, true)
    }

    /// Append one record *without* waiting for it to reach stable
    /// storage, even under [`FsyncPolicy::Always`]. For records whose
    /// loss is free under presumed abort (CoordinatorBegin/End): the next
    /// forced append still carries them to disk.
    pub fn append_nosync(&self, rec: &WalRecord) -> XdmResult<u64> {
        self.append_impl(rec, false)
    }

    fn append_impl(&self, rec: &WalRecord, force: bool) -> XdmResult<u64> {
        let started = std::time::Instant::now();
        self.check_poisoned()?;

        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        let sr = SequencedRecord {
            lsn,
            record: rec.clone(),
        };
        apply_live(&mut inner.live, &sr);

        if inner.live.is_empty() {
            // quiesced: everything durable is also done — truncate instead
            // of appending one more record nobody will ever need
            self.quiesce_locked(&mut inner)?;
            self.written_lsn.store(lsn, Ordering::Release);
            drop(inner);
            self.advance_durable(lsn);
            self.observe_append(started);
            return Ok(lsn);
        }

        let frame = frame_bytes(&encode_record(rec, lsn));
        if self.staging() {
            inner.staged.extend_from_slice(&frame);
        } else if let Err(e) = inner.file.write_all(&frame) {
            return Err(self.io_poison("append", e));
        }
        inner.seg_bytes += frame.len() as u64;
        self.written_lsn.store(lsn, Ordering::Release);

        if inner.seg_bytes > self.config.rotate_bytes {
            self.rotate_locked(&mut inner)?;
        }
        drop(inner);

        if force {
            self.force(lsn)?;
        }
        self.observe_append(started);
        Ok(lsn)
    }

    fn observe_append(&self, started: std::time::Instant) {
        if let Some(h) = self.observers.lock().append.as_ref() {
            h.record_micros(started.elapsed());
        }
    }

    /// Raise the durable horizon (no fsync needed: used when the bytes at
    /// or below `lsn` are already stable or closed) and wake waiters.
    fn advance_durable(&self, lsn: u64) {
        if self.durable_lsn.fetch_max(lsn, Ordering::AcqRel) < lsn {
            self.wake_waiters();
        }
    }

    /// Wake parked group-commit followers. Bouncing through the park
    /// lock first closes the race with a follower that has re-checked
    /// the predicate but not yet begun waiting: after the bounce, every
    /// such follower is inside `wait_timeout` and receives the notify.
    /// Must not be called while holding `sync` (the solo-mode serial
    /// path instead relies on the followers' wait timeout).
    fn wake_waiters(&self) {
        drop(self.sync.lock());
        self.sync_cond.notify_all();
    }

    /// Quiesce checkpoint: reclaim every older segment and truncate the
    /// active one to its magic. Caller holds `inner`.
    fn quiesce_locked(&self, inner: &mut WalInner) -> XdmResult<()> {
        // anything still staged belongs to a closed transaction now
        inner.staged.clear();
        let active = inner.seg_seq;
        inner.segs.retain(|&s| s != active);
        for seq in std::mem::take(&mut inner.segs) {
            let _ = std::fs::remove_file(self.path.join(seg_name(seq)));
        }
        inner.segs = vec![active];
        inner.older_bytes = 0;
        let res = if self.staging() {
            // keep the preallocation: zero the used prefix instead of
            // truncating, so later drains stay in-place overwrites (the
            // zeros also stop any stale frame from resurrecting on replay)
            zero_fill(&mut inner.file, MAGIC.len() as u64, inner.seg_bytes)
        } else {
            inner.file.set_len(MAGIC.len() as u64)
        };
        if let Err(e) = res.and_then(|_| inner.file.seek(SeekFrom::Start(MAGIC.len() as u64))) {
            return Err(self.io_poison("truncate", e));
        }
        inner.seg_bytes = MAGIC.len() as u64;
        if self.config.fsync == FsyncPolicy::Always {
            if let Err(e) = inner.file.sync_data() {
                return Err(self.io_poison("fsync", e));
            }
        }
        Ok(())
    }

    /// Rotate: copy every live record (with its original LSN) into a new
    /// segment, sync it, reclaim the old generation, and swap the active
    /// handle. Caller holds `inner`. After a successful rotation every
    /// LSN written so far is durable-or-closed, so the group-commit
    /// horizon advances without an extra fsync.
    fn rotate_locked(&self, inner: &mut WalInner) -> XdmResult<()> {
        // staged frames are subsumed by the copy-forward below: live
        // records are rewritten from memory into the new segment, closed
        // ones owe nothing
        inner.staged.clear();
        let new_seq = inner.seg_seq + 1;
        let seg_path = self.path.join(seg_name(new_seq));
        let res: std::io::Result<(File, u64, u64)> = (|| {
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&seg_path)?;
            f.write_all(MAGIC)?;
            let mut bytes = MAGIC.len() as u64;
            let mut fwd: Vec<&SequencedRecord> = inner.live.values().flatten().collect();
            fwd.sort_by_key(|sr| sr.lsn);
            let copied = fwd.len() as u64;
            for sr in fwd {
                let frame = frame_bytes(&encode_record(&sr.record, sr.lsn));
                f.write_all(&frame)?;
                bytes += frame.len() as u64;
            }
            if self.staging() {
                let target = prealloc_len(&self.config);
                if bytes < target {
                    zero_fill(&mut f, bytes, target)?;
                    f.seek(SeekFrom::Start(bytes))?;
                }
            }
            if self.config.fsync == FsyncPolicy::Always {
                f.sync_data()?;
            }
            Ok((f, bytes, copied))
        })();
        let (file, bytes, copied) = match res {
            Ok(v) => v,
            Err(e) => return Err(self.io_poison("rotation", e)),
        };

        // the copy-forward generation is durable, the old one not yet
        // reclaimed: dying here leaves both on disk — replay dedups by LSN
        self.crash_hit(crash_points::WAL_MID_ROTATION)?;

        for &seq in &inner.segs {
            let _ = std::fs::remove_file(self.path.join(seg_name(seq)));
        }
        if let Ok(dir) = File::open(&self.path) {
            let _ = dir.sync_all();
        }
        let sync_handle = match file.try_clone() {
            Ok(f) => Arc::new(f),
            Err(e) => return Err(self.io_poison("rotation", e)),
        };
        inner.file = file;
        inner.sync_handle = sync_handle;
        inner.seg_seq = new_seq;
        inner.segs = vec![new_seq];
        inner.seg_bytes = bytes;
        inner.older_bytes = 0;
        self.rotations.fetch_add(1, Ordering::Relaxed);
        self.copy_forward_records
            .fetch_add(copied, Ordering::Relaxed);

        // every live record ≤ written_lsn now sits in the synced new
        // segment; every other record ≤ written_lsn is closed — either
        // way there is nothing left to force
        self.advance_durable(self.written_lsn.load(Ordering::Acquire));
        Ok(())
    }

    /// Wait until `lsn` is durable, fsyncing as needed. Under group
    /// commit, whoever arrives while nobody is syncing becomes the batch
    /// leader; everyone else rides the leader's fsync.
    fn force(&self, lsn: u64) -> XdmResult<()> {
        if self.config.fsync == FsyncPolicy::Never {
            return Ok(());
        }
        if !self.config.group_commit {
            // solo mode: every append pays its own fsync, serialized on
            // the log like a classic force-log-at-commit implementation.
            // Without the serialization, concurrent fdatasync calls on
            // the same inode coalesce inside the filesystem journal —
            // which is group commit by another name, done below the
            // syscall boundary where it can't be observed or tuned.
            let (handle, target) = self.drain_and_capture()?;
            let _serial = self.sync.lock();
            self.crash_hit(crash_points::WAL_GROUP_FSYNC)?;
            let t0 = std::time::Instant::now();
            if let Err(e) = handle.sync_data() {
                return Err(self.io_poison("fsync", e));
            }
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.observe_fsync(t0, 1);
            self.durable_lsn
                .fetch_max(target.max(lsn), Ordering::AcqRel);
            return Ok(());
        }

        loop {
            if self.durable_lsn.load(Ordering::Acquire) >= lsn {
                return Ok(());
            }
            self.check_poisoned()?;
            let claimed = {
                let inflight = self.sync_inflight.load(Ordering::Acquire);
                inflight < MAX_INFLIGHT_SYNCS
                    && self
                        .sync_inflight
                        .compare_exchange(
                            inflight,
                            inflight + 1,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
            };
            if !claimed {
                // follower: park until a leader publishes. Leaders touch
                // the park lock before notifying, so a notify can't slip
                // between our re-check and the wait; the timeout is only
                // a backstop (e.g. poisoning races).
                let mut g = self.sync.lock();
                if self.durable_lsn.load(Ordering::Acquire) < lsn
                    && self.sync_inflight.load(Ordering::Acquire) > 0
                    && !self.is_poisoned()
                {
                    self.sync_cond
                        .wait_timeout(&mut g, std::time::Duration::from_millis(5));
                }
                continue;
            }

            // leader: drain the staged batch and capture handle +
            // horizon. After the drain every record ≤ target is either in
            // the file this handle refers to (drained or copied forward)
            // or closed, and appenders only stage until the fsync is done.
            let durable_before = self.durable_lsn.load(Ordering::Acquire);
            let (handle, target) = match self
                .drain_and_capture()
                .and_then(|ht| self.crash_hit(crash_points::WAL_GROUP_FSYNC).map(|()| ht))
            {
                Ok(ht) => ht,
                Err(e) => {
                    self.sync_inflight.fetch_sub(1, Ordering::AcqRel);
                    self.wake_waiters();
                    return Err(e);
                }
            };
            let t0 = std::time::Instant::now();
            match handle.sync_data() {
                Ok(()) => {
                    // publish before stepping down: a successor leader
                    // must see the new horizon, and followers return on
                    // the atomic alone
                    self.durable_lsn.fetch_max(target, Ordering::AcqRel);
                    self.sync_inflight.fetch_sub(1, Ordering::AcqRel);
                    self.wake_waiters();
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                    self.observe_fsync(t0, target.saturating_sub(durable_before));
                }
                Err(e) => {
                    self.sync_inflight.fetch_sub(1, Ordering::AcqRel);
                    let err = self.io_poison("fsync", e);
                    self.wake_waiters();
                    return Err(err);
                }
            }
        }
    }

    /// Does this log stage appends in memory until a batch leader drains
    /// them? Only worthwhile when there are real fsyncs to protect from
    /// concurrent writes; solo mode and `FsyncPolicy::Never` write
    /// through so the file always holds everything appended.
    fn staging(&self) -> bool {
        self.config.group_commit && self.config.fsync == FsyncPolicy::Always
    }

    /// Drain any staged frames into the active segment with a single
    /// write, then snapshot (active-segment handle, written horizon)
    /// consistently: every record ≤ the horizon is in the file this
    /// handle refers to (appended, drained, or copied forward) or closed.
    fn drain_and_capture(&self) -> XdmResult<(Arc<File>, u64)> {
        let mut inner = self.inner.lock();
        if !inner.staged.is_empty() {
            let mut batch = std::mem::take(&mut inner.staged);
            // `seg_bytes` counts staged frames the moment they are staged,
            // so the logical end of the file is what lies before them
            let start = inner.seg_bytes - batch.len() as u64;
            // pad to the next page boundary: the flush then writes whole
            // preallocated pages, and the zeros double as the end-of-log
            // sentinel. Padding is not part of the logical log — the next
            // drain seeks back to `start + batch` and overwrites it.
            let end = start + batch.len() as u64;
            batch.resize(batch.len() + ((PAGE - end % PAGE) % PAGE) as usize, 0);
            if let Err(e) = inner
                .file
                .seek(SeekFrom::Start(start))
                .and_then(|_| inner.file.write_all(&batch))
            {
                return Err(self.io_poison("append", e));
            }
        }
        Ok((
            inner.sync_handle.clone(),
            self.written_lsn.load(Ordering::Acquire),
        ))
    }

    fn observe_fsync(&self, t0: std::time::Instant, batch: u64) {
        let obs = self.observers.lock();
        if let Some(h) = obs.fsync.as_ref() {
            h.record_micros(t0.elapsed());
        }
        if let Some(h) = obs.batch.as_ref() {
            h.record(batch);
        }
    }

    /// Number of durable obligations (per transaction *and role*) still
    /// demanding future action.
    pub fn open_transactions(&self) -> usize {
        self.inner.lock().live.len()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort drain on shutdown: unforced advisory records
        // (CoordinatorBegin/End) may still sit in the staging buffer.
        // Their loss is free under presumed abort, but writing them out
        // keeps a clean process exit equivalent to write-through — the
        // restart sweep can then re-abort eagerly instead of waiting for
        // participant inquiries.
        let mut inner = self.inner.lock();
        if !inner.staged.is_empty() {
            let staged = std::mem::take(&mut inner.staged);
            let start = inner.seg_bytes - staged.len() as u64;
            let _ = inner
                .file
                .seek(SeekFrom::Start(start))
                .and_then(|_| inner.file.write_all(&staged));
        }
    }
}

/// Track the records of transactions with undischarged durable state —
/// exactly the set a rotation must copy forward.
fn apply_live(live: &mut HashMap<OpenKey, Vec<SequencedRecord>>, sr: &SequencedRecord) {
    let key = |q: &QueryId, r: Role| (q.host.clone(), q.timestamp_millis, r);
    match &sr.record {
        WalRecord::Prepared { qid, .. } => {
            live.insert(key(qid, Role::Participant), vec![sr.clone()]);
        }
        WalRecord::Decision { qid, decision } => {
            // an aborted transaction needs nothing further; a committed
            // one stays open (prepared ∆ + decision) until applied
            if *decision == Decision::Aborted {
                live.remove(&key(qid, Role::Participant));
            } else {
                live.entry(key(qid, Role::Participant))
                    .or_default()
                    .push(sr.clone());
            }
        }
        WalRecord::Applied { qid, .. } => {
            live.remove(&key(qid, Role::Participant));
        }
        WalRecord::CoordinatorBegin { qid, .. } => {
            live.insert(key(qid, Role::Coordinator), vec![sr.clone()]);
        }
        WalRecord::CoordinatorCommit { qid, .. } => {
            // the commit point supersedes the begin record
            live.insert(key(qid, Role::Coordinator), vec![sr.clone()]);
        }
        WalRecord::CoordinatorEnd { qid } => {
            live.remove(&key(qid, Role::Coordinator));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "xrpc-wal-test-{}-{n}-{name}.wal",
            std::process::id()
        ))
    }

    fn cleanup(p: &Path) {
        let _ = std::fs::remove_dir_all(p);
        let _ = std::fs::remove_file(p);
    }

    /// Segment files of log directory `p`, ascending.
    fn seg_files(p: &Path) -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = std::fs::read_dir(p)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|f| f.extension().is_some_and(|e| e == "seg"))
            .collect();
        v.sort();
        v
    }

    fn active_seg(p: &Path) -> PathBuf {
        seg_files(p).pop().expect("log has at least one segment")
    }

    fn plain(replay: &Replay) -> Vec<WalRecord> {
        replay.records.iter().map(|sr| sr.record.clone()).collect()
    }

    fn qid(ts: u64) -> QueryId {
        QueryId::new("xrpc://origin", ts, 30)
    }

    fn sample_prepared(ts: u64) -> WalRecord {
        WalRecord::Prepared {
            qid: qid(ts),
            coordinator: "xrpc://origin".into(),
            delta: vec![
                SerializedPrimitive::InsertLast {
                    target: NodePath {
                        doc_uri: "log.xml".into(),
                        steps: vec![PathStep::Child(0)],
                    },
                    content: vec![SerializedFragment::Xml("<e>hi%|there\n</e>".into())],
                },
                SerializedPrimitive::ReplaceValue {
                    target: NodePath {
                        doc_uri: "log.xml".into(),
                        steps: vec![PathStep::Child(0), PathStep::Attr(1)],
                    },
                    value: "new\tvalue".into(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_records_through_reopen() {
        let p = tmp("roundtrip");
        let recs = vec![
            sample_prepared(1),
            WalRecord::Decision {
                qid: qid(1),
                decision: Decision::Committed,
            },
            WalRecord::CoordinatorCommit {
                qid: qid(2),
                participants: vec!["xrpc://b".into(), "xrpc://c".into()],
            },
        ];
        {
            let (w, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
            assert!(replay.records.is_empty());
            for r in &recs {
                w.append(r).unwrap();
            }
            assert_eq!(w.open_transactions(), 2);
        }
        let (_, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        assert!(!replay.tail_damaged);
        assert_eq!(plain(&replay), recs);
        assert_eq!(
            replay.records.iter().map(|sr| sr.lsn).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "LSNs are stamped in append order"
        );
        cleanup(&p);
    }

    #[test]
    fn truncated_tail_detected_and_dropped() {
        let p = tmp("torn");
        {
            let (w, _) = Wal::open(&p, FsyncPolicy::Always).unwrap();
            w.append(&sample_prepared(1)).unwrap();
            w.append(&sample_prepared(2)).unwrap();
        }
        // tear the last frame: chop off its final 3 bytes. The frame
        // chain ends at the logical end — under group commit the file
        // extends further with preallocated zeros, so physical length
        // is not where the tear belongs.
        let seg = active_seg(&p);
        let buf = std::fs::read(&seg).unwrap();
        let (_, end, _) = scan_frames(&buf, MAGIC.len());
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(end as u64 - 3)
            .unwrap();
        let (w, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        assert!(replay.tail_damaged, "torn tail must be reported");
        assert_eq!(plain(&replay), vec![sample_prepared(1)]);
        assert_eq!(w.stats().torn_tail_recoveries, 1);
        // the log keeps working after the repair
        w.append(&sample_prepared(3)).unwrap();
        drop(w);
        let (_, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        assert!(!replay.tail_damaged);
        assert_eq!(plain(&replay), vec![sample_prepared(1), sample_prepared(3)]);
        cleanup(&p);
    }

    #[test]
    fn bitflip_in_tail_detected_by_crc() {
        let p = tmp("bitflip");
        {
            let (w, _) = Wal::open(&p, FsyncPolicy::Always).unwrap();
            w.append(&sample_prepared(1)).unwrap();
            w.append(&sample_prepared(2)).unwrap();
        }
        // flip one bit inside the *last* record's payload (the frame
        // chain ends at the logical end, before any preallocated zeros)
        let seg = active_seg(&p);
        let mut bytes = std::fs::read(&seg).unwrap();
        let (_, end, _) = scan_frames(&bytes, MAGIC.len());
        bytes[end - 5] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        let (_, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        assert!(replay.tail_damaged, "bit flip must be reported");
        assert_eq!(
            plain(&replay),
            vec![sample_prepared(1)],
            "recovery proceeds from the last intact record"
        );
        cleanup(&p);
    }

    #[test]
    fn quiesce_truncates_log() {
        let p = tmp("quiesce");
        let (w, _) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        w.append(&sample_prepared(1)).unwrap();
        w.append(&WalRecord::Decision {
            qid: qid(1),
            decision: Decision::Committed,
        })
        .unwrap();
        assert_eq!(w.open_transactions(), 1, "committed but not yet applied");
        let before = std::fs::metadata(active_seg(&p)).unwrap().len();
        assert!(before > MAGIC.len() as u64);
        w.append(&WalRecord::Applied {
            qid: qid(1),
            mark: 1,
        })
        .unwrap();
        assert_eq!(w.open_transactions(), 0);
        assert_eq!(
            std::fs::metadata(active_seg(&p)).unwrap().len(),
            MAGIC.len() as u64,
            "quiesced log is truncated to just the magic"
        );
        assert_eq!(w.stats().log_bytes, MAGIC.len() as u64);
        cleanup(&p);
    }

    #[test]
    fn aborted_decision_quiesces_without_apply() {
        let p = tmp("abort-quiesce");
        let (w, _) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        w.append(&sample_prepared(1)).unwrap();
        w.append(&WalRecord::Decision {
            qid: qid(1),
            decision: Decision::Aborted,
        })
        .unwrap();
        assert_eq!(w.open_transactions(), 0);
        cleanup(&p);
    }

    #[test]
    fn non_wal_file_rejected() {
        let p = tmp("not-a-wal");
        std::fs::write(&p, b"definitely not a WAL file").unwrap();
        assert!(Wal::open(&p, FsyncPolicy::Never).is_err());
        cleanup(&p);
    }

    #[test]
    fn rotation_copies_live_records_forward() {
        let p = tmp("rotate");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            group_commit: true,
            rotate_bytes: 1, // rotate on every non-quiescing append
        };
        let (w, _) = Wal::open_with(&p, cfg).unwrap();
        for ts in 1..=3 {
            w.append(&sample_prepared(ts)).unwrap();
        }
        let s = w.stats();
        assert_eq!(s.rotations, 3);
        assert_eq!(s.segments, 1, "old generations are reclaimed");
        assert_eq!(
            s.copy_forward_records,
            1 + 2 + 3,
            "each rotation copies every live record forward"
        );
        drop(w);
        let (w, replay) = Wal::open_with(&p, cfg).unwrap();
        assert_eq!(
            plain(&replay),
            vec![sample_prepared(1), sample_prepared(2), sample_prepared(3)],
            "copy-forward preserves records and order"
        );
        assert_eq!(
            replay.records.iter().map(|sr| sr.lsn).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "copy-forward preserves original LSNs"
        );
        // closing every transaction quiesces the rotated log too
        for ts in 1..=3 {
            w.append(&WalRecord::Decision {
                qid: qid(ts),
                decision: Decision::Aborted,
            })
            .unwrap();
        }
        assert_eq!(w.stats().log_bytes, MAGIC.len() as u64);
        cleanup(&p);
    }

    #[test]
    fn mid_rotation_crash_replays_without_duplicates() {
        use xrpc_net::{crash_points, CrashSwitch};
        let p = tmp("mid-rotation");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            group_commit: true,
            rotate_bytes: 1,
        };
        let (w, _) = Wal::open_with(&p, cfg).unwrap();
        let sw = CrashSwitch::new();
        w.set_crash_switch(sw.clone());
        sw.arm(crash_points::WAL_MID_ROTATION);
        let err = w.append(&sample_prepared(1)).unwrap_err();
        assert!(err.message.contains("simulated crash"), "{err}");
        drop(w);
        // both generations are on disk: the old segment with the record
        // and the copy-forward segment with the same LSN
        assert_eq!(seg_files(&p).len(), 2);
        let (w, replay) = Wal::open_with(&p, cfg).unwrap();
        assert_eq!(
            plain(&replay),
            vec![sample_prepared(1)],
            "replay deduplicates by LSN across generations"
        );
        // the next quiesce reclaims the stale generation
        w.append(&WalRecord::Decision {
            qid: qid(1),
            decision: Decision::Aborted,
        })
        .unwrap();
        assert_eq!(seg_files(&p).len(), 1);
        cleanup(&p);
    }

    #[test]
    fn legacy_v1_log_migrates_to_segments() {
        let p = tmp("legacy");
        // hand-build an XRPCWAL1 single-file log
        let mut bytes = MAGIC_V1.to_vec();
        let recs = vec![
            sample_prepared(1),
            WalRecord::Decision {
                qid: qid(1),
                decision: Decision::Committed,
            },
        ];
        for r in &recs {
            // legacy payloads had no lsn= field; the decoder defaults it,
            // so encoding with lsn 0 models an old record faithfully
            bytes.extend_from_slice(&frame_bytes(&encode_record(r, 0)));
        }
        std::fs::write(&p, &bytes).unwrap();
        let (w, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        assert!(std::fs::metadata(&p).unwrap().is_dir(), "migrated in place");
        assert_eq!(plain(&replay), recs);
        assert_eq!(
            replay.records.iter().map(|sr| sr.lsn).collect::<Vec<_>>(),
            vec![1, 2],
            "migration stamps LSNs in log order"
        );
        assert_eq!(w.open_transactions(), 1);
        cleanup(&p);
    }

    #[test]
    fn poisoned_log_fails_fast_with_durability_error() {
        let p = tmp("poison");
        let (w, _) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        w.append(&sample_prepared(1)).unwrap();
        w.poison("injected: device out of space");
        assert!(w.is_poisoned());
        let err = w.append(&sample_prepared(2)).unwrap_err();
        assert_eq!(err.code, "XRPC0003");
        assert!(err.message.contains("poisoned"), "{err}");
        assert!(w.stats().poisoned);
        cleanup(&p);
    }

    #[test]
    fn group_commit_coalesces_concurrent_appends() {
        let p = tmp("group");
        let cfg = WalConfig {
            fsync: FsyncPolicy::Always,
            group_commit: true,
            rotate_bytes: 1 << 20,
        };
        let (w, _) = Wal::open_with(&p, cfg).unwrap();
        let threads = 8;
        let per = 4;
        std::thread::scope(|s| {
            for t in 0..threads {
                let w = &w;
                s.spawn(move || {
                    for i in 0..per {
                        w.append(&sample_prepared((t * per + i + 1) as u64))
                            .unwrap();
                    }
                });
            }
        });
        let s = w.stats();
        assert!(
            s.fsyncs >= 1 && s.fsyncs <= (threads * per) as u64,
            "fsyncs {} out of range",
            s.fsyncs
        );
        assert_eq!(w.open_transactions(), threads * per);
        let (_, replay) = Wal::open_with(&p, cfg).unwrap();
        assert_eq!(replay.records.len(), threads * per);
        cleanup(&p);
    }

    #[test]
    fn crc32_known_vector() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn pul_roundtrip_through_serialized_form() {
        use xqeval::pul::UpdatePrimitive;
        let docs = InMemoryDocs::new();
        docs.insert(
            "db.xml",
            xmldom::parse_with_uri(
                r#"<root><item k="v">one</item><item>two</item></root>"#,
                "db.xml",
            )
            .unwrap(),
        );
        let doc = docs.get("db.xml").unwrap();
        let root_el = doc.children(doc.root())[0];
        let item0 = doc.children(root_el)[0];
        let attr = doc.attributes(item0)[0];
        let frag = {
            let d = Arc::new(xmldom::parse("<new>content &amp; more</new>").unwrap());
            let id = d.children(d.root())[0];
            NodeHandle::new(d, id)
        };
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::InsertLast {
            target: NodeHandle::new(doc.clone(), root_el),
            content: vec![frag],
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: NodeHandle::new(doc.clone(), attr),
            value: "v2".into(),
        });
        pul.push(UpdatePrimitive::Delete {
            target: NodeHandle::new(doc.clone(), doc.children(root_el)[1]),
        });
        pul.push(UpdatePrimitive::Rename {
            target: NodeHandle::new(doc.clone(), item0),
            name: QName::local("renamed"),
        });

        let ser = serialize_pul(&pul).unwrap();
        // survive the wire: encode into a record payload and back
        let rec = WalRecord::Prepared {
            qid: qid(7),
            coordinator: "xrpc://origin".into(),
            delta: ser,
        };
        let decoded = decode_record(encode_record(&rec, 7).as_bytes()).unwrap();
        assert_eq!(decoded.lsn, 7);
        let WalRecord::Prepared { delta, .. } = decoded.record else {
            panic!()
        };

        let restored = deserialize_pul(&docs, &delta).unwrap();
        let before = xqeval::pul::apply_updates(&pul).unwrap();
        let after = xqeval::pul::apply_updates(&restored).unwrap();
        assert_eq!(before.len(), after.len());
        let opts = Default::default();
        assert_eq!(
            xmldom::serialize_document(&before[0].new, &opts),
            xmldom::serialize_document(&after[0].new, &opts),
            "recovered PUL must produce the identical document"
        );
    }

    #[test]
    fn pul_serialization_rejects_uriless_doc() {
        let d = Arc::new(xmldom::parse("<a/>").unwrap());
        let target = NodeHandle::new(d.clone(), d.children(d.root())[0]);
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::Delete { target });
        assert!(serialize_pul(&pul).is_err());
    }
}
