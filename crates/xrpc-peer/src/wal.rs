//! Write-ahead coordination log: the durable half of WS-AT 2PC (§2.3).
//!
//! The paper hand-waves "it logs the union of the pending update lists to
//! stable storage, ensuring q can commit later" — this module is that
//! stable storage. One append-only file per peer holds length-prefixed,
//! CRC-checked records for both 2PC roles:
//!
//! * **participant**: a [`WalRecord::Prepared`] (serialized ∆_q with the
//!   queryId and coordinator address) is forced *before* the `Prepare`
//!   ack leaves, and a [`WalRecord::Decision`] is forced on receiving
//!   the outcome before it is applied;
//! * **coordinator**: a [`WalRecord::CoordinatorCommit`] is forced after
//!   unanimous prepare and before any `Commit` delivery — the classic
//!   presumed-abort commit point (aborts are never logged: no record at
//!   the coordinator *means* abort).
//!
//! Frame format: `[payload_len: u32 LE][crc32(payload): u32 LE][payload]`
//! after an 8-byte magic. Replay stops at the first frame that is
//! truncated or fails its CRC — a torn tail from a crash mid-append loses
//! at most the record being written, never an earlier one — and the file
//! is truncated back to the last intact frame before appending resumes.
//! The log self-checkpoints: whenever an append leaves no transaction
//! open (every prepared entry decided+applied, every coordinator commit
//! ended), the file is truncated to empty — quiesce-time truncation, so
//! the log length tracks the number of in-flight transactions, not query
//! history.

use parking_lot::Mutex;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xdm::{XdmError, XdmResult};
use xmldom::{Document, NodeHandle, NodeKind, QName};
use xqeval::pul::{PendingUpdateList, UpdatePrimitive};
use xqeval::InMemoryDocs;
use xrpc_proto::QueryId;

use crate::store::Decision;

/// File magic: identifies (and versions) the log format.
const MAGIC: &[u8; 8] = b"XRPCWAL1";

/// When to `fsync` after an append.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Force every record to disk before the append returns (the default;
    /// the only policy that makes the Prepare ack a real promise).
    #[default]
    Always,
    /// Buffered writes only — crash-consistent against *process* crashes
    /// (the OS still has the bytes) but not power loss. For benchmarks
    /// and tests where thousands of fsyncs would dominate.
    Never,
}

/// One durable coordination event.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Participant side: ∆_q was logged and this peer promised to commit
    /// on request. `coordinator` is where to send `Inquire` after a
    /// restart (the queryID's origin host).
    Prepared {
        qid: QueryId,
        coordinator: String,
        delta: Vec<SerializedPrimitive>,
    },
    /// Participant side: the coordinator's decision arrived (forced
    /// before ∆_q is applied, so a crash between receipt and apply
    /// re-applies instead of forgetting).
    Decision { qid: QueryId, decision: Decision },
    /// Participant side: a committed ∆_q has been applied to the store.
    Applied { qid: QueryId },
    /// Coordinator side: the commit point — every participant prepared.
    CoordinatorCommit {
        qid: QueryId,
        participants: Vec<String>,
    },
    /// Coordinator side: every participant acknowledged the decision.
    CoordinatorEnd { qid: QueryId },
}

impl WalRecord {
    pub fn qid(&self) -> &QueryId {
        match self {
            WalRecord::Prepared { qid, .. }
            | WalRecord::Decision { qid, .. }
            | WalRecord::Applied { qid }
            | WalRecord::CoordinatorCommit { qid, .. }
            | WalRecord::CoordinatorEnd { qid } => qid,
        }
    }
}

/// A target node addressed durably: the store document's URI plus a
/// structural path from the document node (`c<i>` = i-th child, `a<i>` =
/// i-th attribute). Survives restart because the store re-loads the same
/// documents and the path re-resolves against the re-parsed arena.
#[derive(Debug, Clone, PartialEq)]
pub struct NodePath {
    pub doc_uri: String,
    pub steps: Vec<PathStep>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathStep {
    Child(u32),
    Attr(u32),
}

/// A content fragment serialized by value: either generic XML (elements,
/// text, comments, PIs — re-parsed inside a wrapper element) or an
/// attribute node (not well-formed XML on its own, so stored as fields).
#[derive(Debug, Clone, PartialEq)]
pub enum SerializedFragment {
    Xml(String),
    Attribute {
        prefix: Option<String>,
        ns_uri: Option<String>,
        local: String,
        value: String,
    },
}

/// One [`UpdatePrimitive`] in durable form.
#[derive(Debug, Clone, PartialEq)]
pub enum SerializedPrimitive {
    InsertInto {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    InsertFirst {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    InsertLast {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    InsertBefore {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    InsertAfter {
        target: NodePath,
        content: Vec<SerializedFragment>,
    },
    Delete {
        target: NodePath,
    },
    ReplaceNode {
        target: NodePath,
        replacement: Vec<SerializedFragment>,
    },
    ReplaceValue {
        target: NodePath,
        value: String,
    },
    Rename {
        target: NodePath,
        prefix: Option<String>,
        ns_uri: Option<String>,
        local: String,
    },
    Put {
        node: SerializedFragment,
        uri: String,
    },
}

// ---------------------------------------------------------------------
// PUL <-> durable form
// ---------------------------------------------------------------------

fn node_path(h: &NodeHandle) -> XdmResult<NodePath> {
    let doc_uri =
        h.doc.uri.clone().ok_or_else(|| {
            XdmError::xrpc("cannot log an update targeting a document with no URI")
        })?;
    let mut steps = Vec::new();
    let mut id = h.id;
    loop {
        let node = h.doc.node(id);
        let Some(parent) = node.parent else { break };
        let p = h.doc.node(parent);
        let step = if node.kind == NodeKind::Attribute {
            let i = p.attributes.iter().position(|&a| a == id).ok_or_else(|| {
                XdmError::xrpc("update target attribute detached from its element")
            })?;
            PathStep::Attr(i as u32)
        } else {
            let i = p
                .children
                .iter()
                .position(|&c| c == id)
                .ok_or_else(|| XdmError::xrpc("update target detached from its parent"))?;
            PathStep::Child(i as u32)
        };
        steps.push(step);
        id = parent;
    }
    if id != h.doc.root() {
        return Err(XdmError::xrpc(
            "update target is not attached to its document root",
        ));
    }
    steps.reverse();
    Ok(NodePath { doc_uri, steps })
}

fn resolve_path(docs: &InMemoryDocs, path: &NodePath) -> XdmResult<NodeHandle> {
    let doc = docs.get(&path.doc_uri).ok_or_else(|| {
        XdmError::doc_error(format!(
            "recovered update targets unknown document `{}`",
            path.doc_uri
        ))
    })?;
    let mut id = doc.root();
    for step in &path.steps {
        let node = doc.node(id);
        id = match *step {
            PathStep::Child(i) => *node.children.get(i as usize).ok_or_else(|| {
                XdmError::xrpc(format!(
                    "recovered update path no longer resolves in `{}`",
                    path.doc_uri
                ))
            })?,
            PathStep::Attr(i) => *node.attributes.get(i as usize).ok_or_else(|| {
                XdmError::xrpc(format!(
                    "recovered update path no longer resolves in `{}`",
                    path.doc_uri
                ))
            })?,
        };
    }
    Ok(NodeHandle::new(doc, id))
}

fn serialize_fragment(h: &NodeHandle) -> SerializedFragment {
    if h.kind() == NodeKind::Attribute {
        let name = h.name().cloned().unwrap_or_else(|| QName::local("attr"));
        SerializedFragment::Attribute {
            prefix: name.prefix,
            ns_uri: name.ns_uri,
            local: name.local,
            value: h.data().value.clone(),
        }
    } else {
        SerializedFragment::Xml(h.to_xml())
    }
}

fn parse_fragment(f: &SerializedFragment) -> XdmResult<NodeHandle> {
    match f {
        SerializedFragment::Attribute {
            prefix,
            ns_uri,
            local,
            value,
        } => {
            let name = match (prefix, ns_uri) {
                (Some(p), Some(u)) => QName::ns(p.clone(), u.clone(), local.clone()),
                _ => QName::local(local.clone()),
            };
            let mut d = Document::new();
            let id = d.create_attribute(name, value.clone());
            Ok(NodeHandle::new(Arc::new(d), id))
        }
        SerializedFragment::Xml(xml) => {
            // wrap so text/comment/PI fragments (not well-formed documents
            // on their own) re-parse too
            let wrapped = format!("<w>{xml}</w>");
            let d = Arc::new(xmldom::parse(&wrapped).map_err(|e| {
                XdmError::xrpc(format!("recovered content fragment failed to parse: {e}"))
            })?);
            let w = d.children(d.root())[0];
            let kids = d.children(w).to_vec();
            match kids[..] {
                [only] => Ok(NodeHandle::new(d, only)),
                _ => Err(XdmError::xrpc(format!(
                    "recovered content fragment has {} roots, expected 1",
                    kids.len()
                ))),
            }
        }
    }
}

fn serialize_fragments(hs: &[NodeHandle]) -> Vec<SerializedFragment> {
    hs.iter().map(serialize_fragment).collect()
}

fn parse_fragments(fs: &[SerializedFragment]) -> XdmResult<Vec<NodeHandle>> {
    fs.iter().map(parse_fragment).collect()
}

/// Serialize a PUL into its durable form. Fails when a target lives in a
/// URI-less document (nothing durable to re-resolve against).
pub fn serialize_pul(pul: &PendingUpdateList) -> XdmResult<Vec<SerializedPrimitive>> {
    pul.primitives
        .iter()
        .map(|p| {
            Ok(match p {
                UpdatePrimitive::InsertInto { target, content } => {
                    SerializedPrimitive::InsertInto {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::InsertFirst { target, content } => {
                    SerializedPrimitive::InsertFirst {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::InsertLast { target, content } => {
                    SerializedPrimitive::InsertLast {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::InsertBefore { target, content } => {
                    SerializedPrimitive::InsertBefore {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::InsertAfter { target, content } => {
                    SerializedPrimitive::InsertAfter {
                        target: node_path(target)?,
                        content: serialize_fragments(content),
                    }
                }
                UpdatePrimitive::Delete { target } => SerializedPrimitive::Delete {
                    target: node_path(target)?,
                },
                UpdatePrimitive::ReplaceNode {
                    target,
                    replacement,
                } => SerializedPrimitive::ReplaceNode {
                    target: node_path(target)?,
                    replacement: serialize_fragments(replacement),
                },
                UpdatePrimitive::ReplaceValue { target, value } => {
                    SerializedPrimitive::ReplaceValue {
                        target: node_path(target)?,
                        value: value.clone(),
                    }
                }
                UpdatePrimitive::Rename { target, name } => SerializedPrimitive::Rename {
                    target: node_path(target)?,
                    prefix: name.prefix.clone(),
                    ns_uri: name.ns_uri.clone(),
                    local: name.local.clone(),
                },
                UpdatePrimitive::Put { node, uri } => SerializedPrimitive::Put {
                    node: serialize_fragment(node),
                    uri: uri.clone(),
                },
            })
        })
        .collect()
}

/// Rebuild a PUL against the current document store (after a restart the
/// paths re-resolve to the re-loaded documents — the store's contents at
/// Prepare time, which is exactly what the snapshot held: a participant
/// in prepared state blocks conflicting commits until decided).
pub fn deserialize_pul(
    docs: &InMemoryDocs,
    prims: &[SerializedPrimitive],
) -> XdmResult<PendingUpdateList> {
    let mut pul = PendingUpdateList::new();
    for p in prims {
        pul.push(match p {
            SerializedPrimitive::InsertInto { target, content } => UpdatePrimitive::InsertInto {
                target: resolve_path(docs, target)?,
                content: parse_fragments(content)?,
            },
            SerializedPrimitive::InsertFirst { target, content } => UpdatePrimitive::InsertFirst {
                target: resolve_path(docs, target)?,
                content: parse_fragments(content)?,
            },
            SerializedPrimitive::InsertLast { target, content } => UpdatePrimitive::InsertLast {
                target: resolve_path(docs, target)?,
                content: parse_fragments(content)?,
            },
            SerializedPrimitive::InsertBefore { target, content } => {
                UpdatePrimitive::InsertBefore {
                    target: resolve_path(docs, target)?,
                    content: parse_fragments(content)?,
                }
            }
            SerializedPrimitive::InsertAfter { target, content } => UpdatePrimitive::InsertAfter {
                target: resolve_path(docs, target)?,
                content: parse_fragments(content)?,
            },
            SerializedPrimitive::Delete { target } => UpdatePrimitive::Delete {
                target: resolve_path(docs, target)?,
            },
            SerializedPrimitive::ReplaceNode {
                target,
                replacement,
            } => UpdatePrimitive::ReplaceNode {
                target: resolve_path(docs, target)?,
                replacement: parse_fragments(replacement)?,
            },
            SerializedPrimitive::ReplaceValue { target, value } => UpdatePrimitive::ReplaceValue {
                target: resolve_path(docs, target)?,
                value: value.clone(),
            },
            SerializedPrimitive::Rename {
                target,
                prefix,
                ns_uri,
                local,
            } => UpdatePrimitive::Rename {
                target: resolve_path(docs, target)?,
                name: match (prefix, ns_uri) {
                    (Some(p), Some(u)) => QName::ns(p.clone(), u.clone(), local.clone()),
                    _ => QName::local(local.clone()),
                },
            },
            SerializedPrimitive::Put { node, uri } => UpdatePrimitive::Put {
                node: parse_fragment(node)?,
                uri: uri.clone(),
            },
        });
    }
    Ok(pul)
}

// ---------------------------------------------------------------------
// Record payload encoding (line-oriented, values percent-escaped)
// ---------------------------------------------------------------------

fn esc(s: &str, out: &mut String) {
    // besides line structure (%, newlines), escape every separator any
    // encoder below uses (tab, pipe, slash, unit separator) so free-text
    // fields can never be confused with framing
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            '\t' => out.push_str("%09"),
            '|' => out.push_str("%7C"),
            '/' => out.push_str("%2F"),
            '\u{1f}' => out.push_str("%1F"),
            c => out.push(c),
        }
    }
}

fn unesc(s: &str) -> XdmResult<String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s
                .get(i + 1..i + 3)
                .ok_or_else(|| XdmError::xrpc("bad escape in WAL record"))?;
            let v = u8::from_str_radix(hex, 16)
                .map_err(|_| XdmError::xrpc("bad escape in WAL record"))?;
            out.push(v as char);
            i += 3;
        } else {
            // payload is checked UTF-8; walk to the next char boundary
            let ch = s[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Ok(out)
}

fn push_field(out: &mut String, key: &str, value: &str) {
    out.push_str(key);
    out.push('=');
    esc(value, out);
    out.push('\n');
}

fn encode_qid(out: &mut String, qid: &QueryId) {
    push_field(out, "qid.host", &qid.host);
    push_field(out, "qid.ts", &qid.timestamp_millis.to_string());
    push_field(out, "qid.timeout", &qid.timeout_secs.to_string());
}

fn path_to_string(p: &NodePath) -> String {
    let mut s = String::new();
    esc(&p.doc_uri, &mut s);
    for step in &p.steps {
        match step {
            PathStep::Child(i) => s.push_str(&format!("/c{i}")),
            PathStep::Attr(i) => s.push_str(&format!("/a{i}")),
        }
    }
    s
}

fn path_from_string(s: &str) -> XdmResult<NodePath> {
    let mut parts = s.split('/');
    let uri = unesc(parts.next().unwrap_or(""))?;
    let mut steps = Vec::new();
    for p in parts {
        if p.is_empty() {
            return Err(XdmError::xrpc("empty path step in WAL record"));
        }
        let (kind, idx) = p.split_at(1);
        let i: u32 = idx
            .parse()
            .map_err(|_| XdmError::xrpc("bad path step in WAL record"))?;
        steps.push(match kind {
            "c" => PathStep::Child(i),
            "a" => PathStep::Attr(i),
            _ => return Err(XdmError::xrpc("bad path step kind in WAL record")),
        });
    }
    Ok(NodePath {
        doc_uri: uri,
        steps,
    })
}

fn frag_to_string(f: &SerializedFragment) -> String {
    let mut s = String::new();
    match f {
        SerializedFragment::Xml(xml) => {
            s.push_str("X:");
            esc(xml, &mut s);
        }
        SerializedFragment::Attribute {
            prefix,
            ns_uri,
            local,
            value,
        } => {
            s.push_str("A:");
            esc(prefix.as_deref().unwrap_or(""), &mut s);
            s.push('\t');
            esc(ns_uri.as_deref().unwrap_or(""), &mut s);
            s.push('\t');
            esc(local, &mut s);
            s.push('\t');
            esc(value, &mut s);
        }
    }
    s
}

fn frag_from_string(s: &str) -> XdmResult<SerializedFragment> {
    if let Some(xml) = s.strip_prefix("X:") {
        return Ok(SerializedFragment::Xml(unesc(xml)?));
    }
    let body = s
        .strip_prefix("A:")
        .ok_or_else(|| XdmError::xrpc("bad fragment kind in WAL record"))?;
    let fields: Vec<&str> = body.split('\t').collect();
    if fields.len() != 4 {
        return Err(XdmError::xrpc("bad attribute fragment in WAL record"));
    }
    let opt = |s: String| if s.is_empty() { None } else { Some(s) };
    Ok(SerializedFragment::Attribute {
        prefix: opt(unesc(fields[0])?),
        ns_uri: opt(unesc(fields[1])?),
        local: unesc(fields[2])?,
        value: unesc(fields[3])?,
    })
}

/// `prim=<op>|<target-or-frag>|<field>|...` — fields are pre-escaped by
/// their own encoders, `|` never appears unescaped inside them because
/// path/fragment encoders escape `%` and the separators they use.
fn prim_to_string(p: &SerializedPrimitive) -> String {
    fn frags(fs: &[SerializedFragment]) -> String {
        fs.iter()
            .map(frag_to_string)
            .collect::<Vec<_>>()
            .join("\u{1f}")
    }
    match p {
        SerializedPrimitive::InsertInto { target, content } => {
            format!("InsertInto|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::InsertFirst { target, content } => {
            format!("InsertFirst|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::InsertLast { target, content } => {
            format!("InsertLast|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::InsertBefore { target, content } => {
            format!("InsertBefore|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::InsertAfter { target, content } => {
            format!("InsertAfter|{}|{}", path_to_string(target), frags(content))
        }
        SerializedPrimitive::Delete { target } => {
            format!("Delete|{}", path_to_string(target))
        }
        SerializedPrimitive::ReplaceNode {
            target,
            replacement,
        } => format!(
            "ReplaceNode|{}|{}",
            path_to_string(target),
            frags(replacement)
        ),
        SerializedPrimitive::ReplaceValue { target, value } => {
            let mut v = String::new();
            esc(value, &mut v);
            format!("ReplaceValue|{}|{v}", path_to_string(target))
        }
        SerializedPrimitive::Rename {
            target,
            prefix,
            ns_uri,
            local,
        } => {
            let mut f = String::new();
            esc(prefix.as_deref().unwrap_or(""), &mut f);
            f.push('\t');
            esc(ns_uri.as_deref().unwrap_or(""), &mut f);
            f.push('\t');
            esc(local, &mut f);
            format!("Rename|{}|{f}", path_to_string(target))
        }
        SerializedPrimitive::Put { node, uri } => {
            let mut u = String::new();
            esc(uri, &mut u);
            format!("Put|{}|{u}", frag_to_string(node))
        }
    }
}

fn prim_from_string(s: &str) -> XdmResult<SerializedPrimitive> {
    let mut parts = s.splitn(3, '|');
    let op = parts.next().unwrap_or("");
    let f1 = parts.next().unwrap_or("");
    let f2 = parts.next().unwrap_or("");
    let frags = |s: &str| -> XdmResult<Vec<SerializedFragment>> {
        if s.is_empty() {
            return Ok(Vec::new());
        }
        s.split('\u{1f}').map(frag_from_string).collect()
    };
    Ok(match op {
        "InsertInto" => SerializedPrimitive::InsertInto {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "InsertFirst" => SerializedPrimitive::InsertFirst {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "InsertLast" => SerializedPrimitive::InsertLast {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "InsertBefore" => SerializedPrimitive::InsertBefore {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "InsertAfter" => SerializedPrimitive::InsertAfter {
            target: path_from_string(f1)?,
            content: frags(f2)?,
        },
        "Delete" => SerializedPrimitive::Delete {
            target: path_from_string(f1)?,
        },
        "ReplaceNode" => SerializedPrimitive::ReplaceNode {
            target: path_from_string(f1)?,
            replacement: frags(f2)?,
        },
        "ReplaceValue" => SerializedPrimitive::ReplaceValue {
            target: path_from_string(f1)?,
            value: unesc(f2)?,
        },
        "Rename" => {
            let fields: Vec<&str> = f2.split('\t').collect();
            if fields.len() != 3 {
                return Err(XdmError::xrpc("bad Rename fields in WAL record"));
            }
            let opt = |s: String| if s.is_empty() { None } else { Some(s) };
            SerializedPrimitive::Rename {
                target: path_from_string(f1)?,
                prefix: opt(unesc(fields[0])?),
                ns_uri: opt(unesc(fields[1])?),
                local: unesc(fields[2])?,
            }
        }
        "Put" => SerializedPrimitive::Put {
            node: frag_from_string(f1)?,
            uri: unesc(f2)?,
        },
        other => {
            return Err(XdmError::xrpc(format!(
                "unknown update primitive `{other}` in WAL record"
            )))
        }
    })
}

fn encode_record(rec: &WalRecord) -> String {
    let mut out = String::new();
    match rec {
        WalRecord::Prepared {
            qid,
            coordinator,
            delta,
        } => {
            out.push_str("prepared\n");
            encode_qid(&mut out, qid);
            push_field(&mut out, "coordinator", coordinator);
            for p in delta {
                push_field(&mut out, "prim", &prim_to_string(p));
            }
        }
        WalRecord::Decision { qid, decision } => {
            out.push_str("decision\n");
            encode_qid(&mut out, qid);
            push_field(
                &mut out,
                "outcome",
                match decision {
                    Decision::Committed => "committed",
                    Decision::Aborted => "aborted",
                },
            );
        }
        WalRecord::Applied { qid } => {
            out.push_str("applied\n");
            encode_qid(&mut out, qid);
        }
        WalRecord::CoordinatorCommit { qid, participants } => {
            out.push_str("coord-commit\n");
            encode_qid(&mut out, qid);
            for p in participants {
                push_field(&mut out, "participant", p);
            }
        }
        WalRecord::CoordinatorEnd { qid } => {
            out.push_str("coord-end\n");
            encode_qid(&mut out, qid);
        }
    }
    out
}

fn decode_record(payload: &[u8]) -> XdmResult<WalRecord> {
    let text =
        std::str::from_utf8(payload).map_err(|_| XdmError::xrpc("WAL record is not UTF-8"))?;
    let mut lines = text.lines();
    let kind = lines.next().unwrap_or("");
    let mut host = String::new();
    let mut ts: u64 = 0;
    let mut timeout: u32 = 0;
    let mut coordinator = String::new();
    let mut outcome = String::new();
    let mut prims = Vec::new();
    let mut participants = Vec::new();
    for line in lines {
        let Some((key, raw)) = line.split_once('=') else {
            continue;
        };
        match key {
            "qid.host" => host = unesc(raw)?,
            "qid.ts" => {
                ts = raw
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad qid.ts in WAL record"))?
            }
            "qid.timeout" => {
                timeout = raw
                    .parse()
                    .map_err(|_| XdmError::xrpc("bad qid.timeout in WAL record"))?
            }
            "coordinator" => coordinator = unesc(raw)?,
            "outcome" => outcome = raw.to_string(),
            // the line layer escaped the whole prim string (its own field
            // escapes survive as %25-doubled sequences); peel one layer
            // before splitting on the `|` separators
            "prim" => prims.push(prim_from_string(&unesc(raw)?)?),
            "participant" => participants.push(unesc(raw)?),
            _ => {} // forward compatibility: ignore unknown fields
        }
    }
    let qid = QueryId::new(host, ts, timeout);
    Ok(match kind {
        "prepared" => WalRecord::Prepared {
            qid,
            coordinator,
            delta: prims,
        },
        "decision" => WalRecord::Decision {
            qid,
            decision: match outcome.as_str() {
                "committed" => Decision::Committed,
                "aborted" => Decision::Aborted,
                other => {
                    return Err(XdmError::xrpc(format!(
                        "unknown decision outcome `{other}` in WAL record"
                    )))
                }
            },
        },
        "applied" => WalRecord::Applied { qid },
        "coord-commit" => WalRecord::CoordinatorCommit { qid, participants },
        "coord-end" => WalRecord::CoordinatorEnd { qid },
        other => return Err(XdmError::xrpc(format!("unknown WAL record kind `{other}`"))),
    })
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled, no external crates
// ---------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 of `data` (the common zlib/PNG polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------

/// Outcome of opening a log: the surviving records plus what the opener
/// observed about the tail.
pub struct Replay {
    pub records: Vec<WalRecord>,
    /// True when replay stopped early at a torn or corrupt tail (which
    /// was truncated away before the log re-opened for appends).
    pub tail_damaged: bool,
}

/// An open write-ahead log.
pub struct Wal {
    path: PathBuf,
    fsync: FsyncPolicy,
    inner: Mutex<WalInner>,
    /// Latency observer for appends (encode + write + fsync), in µs.
    /// Installed by `Peer::attach_wal`; absent for standalone logs.
    observer: Mutex<Option<Arc<xrpc_obs::Histogram>>>,
}

/// Key of one undischarged durable obligation: queryID plus *role* — the
/// same peer can hold both a participant obligation (its own prepared
/// ∆_q) and a coordinator obligation (an undelivered commit decision)
/// for one transaction, e.g. an originator with local updates. They
/// discharge independently, so they must not share a set entry.
type OpenKey = (String, u64, Role);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Role {
    Participant,
    Coordinator,
}

struct WalInner {
    file: File,
    /// Transactions with a durable record that still demands action after
    /// a crash. Empty set after an append = quiesced → truncate.
    open: HashSet<OpenKey>,
}

impl Wal {
    /// Open (creating if absent) the log at `path`, replaying every intact
    /// record. A torn or CRC-damaged tail ends the replay — the file is
    /// truncated back to the last intact frame so appends resume cleanly.
    pub fn open(path: impl AsRef<Path>, fsync: FsyncPolicy) -> XdmResult<(Arc<Wal>, Replay)> {
        let path = path.as_ref().to_path_buf();
        let io = |e: std::io::Error| XdmError::xrpc(format!("WAL {}: {e}", path.display()));
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf).map_err(io)?;

        let mut records = Vec::new();
        let mut pos;
        let mut tail_damaged = false;
        if buf.is_empty() {
            file.write_all(MAGIC).map_err(io)?;
            pos = MAGIC.len();
        } else if buf.len() >= MAGIC.len() && &buf[..MAGIC.len()] == MAGIC {
            pos = MAGIC.len();
            loop {
                let Some(header) = buf.get(pos..pos + 8) else {
                    tail_damaged = pos != buf.len();
                    break;
                };
                let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
                let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
                let Some(payload) = buf.get(pos + 8..pos + 8 + len) else {
                    tail_damaged = true;
                    break;
                };
                if crc32(payload) != crc {
                    tail_damaged = true;
                    break;
                }
                match decode_record(payload) {
                    Ok(r) => records.push(r),
                    Err(_) => {
                        // intact frame, unintelligible payload: stop here
                        // like a torn tail rather than guessing
                        tail_damaged = true;
                        break;
                    }
                }
                pos += 8 + len;
            }
        } else {
            return Err(XdmError::xrpc(format!(
                "{} is not an XRPC WAL (bad magic)",
                path.display()
            )));
        }
        if tail_damaged {
            file.set_len(pos as u64).map_err(io)?;
        }
        file.seek(SeekFrom::Start(pos as u64)).map_err(io)?;

        let mut open = HashSet::new();
        for r in &records {
            apply_open(&mut open, r);
        }

        let wal = Arc::new(Wal {
            path,
            fsync,
            inner: Mutex::new(WalInner { file, open }),
            observer: Mutex::new(None),
        });
        Ok((
            wal,
            Replay {
                records,
                tail_damaged,
            },
        ))
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Record every future append's latency (µs, including the fsync
    /// when the policy forces one) into `hist`.
    pub fn set_observer(&self, hist: Arc<xrpc_obs::Histogram>) {
        *self.observer.lock() = Some(hist);
    }

    /// Force one record: frame it, append, flush (fsync per policy).
    /// When the append leaves no transaction open the log is truncated
    /// instead — checkpoint-on-quiesce.
    pub fn append(&self, rec: &WalRecord) -> XdmResult<()> {
        let started = std::time::Instant::now();
        let io = |e: std::io::Error| XdmError::xrpc(format!("WAL {}: {e}", self.path.display()));
        let payload = encode_record(rec);
        let payload = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        let mut inner = self.inner.lock();
        apply_open(&mut inner.open, rec);
        if inner.open.is_empty() {
            // quiesced: everything durable is also done — truncate instead
            // of appending one more record nobody will ever need
            inner.file.set_len(MAGIC.len() as u64).map_err(io)?;
            inner
                .file
                .seek(SeekFrom::Start(MAGIC.len() as u64))
                .map_err(io)?;
        } else {
            inner.file.write_all(&frame).map_err(io)?;
        }
        if self.fsync == FsyncPolicy::Always {
            inner.file.sync_data().map_err(io)?;
        }
        drop(inner);
        if let Some(h) = self.observer.lock().as_ref() {
            h.record_micros(started.elapsed());
        }
        Ok(())
    }

    /// Number of durable obligations (per transaction *and role*) still
    /// demanding future action.
    pub fn open_transactions(&self) -> usize {
        self.inner.lock().open.len()
    }
}

/// Track which transactions still have undischarged durable state.
fn apply_open(open: &mut HashSet<OpenKey>, rec: &WalRecord) {
    let key = |q: &QueryId, r: Role| (q.host.clone(), q.timestamp_millis, r);
    match rec {
        WalRecord::Prepared { qid, .. } => {
            open.insert(key(qid, Role::Participant));
        }
        WalRecord::Decision { qid, decision } => {
            // an aborted transaction needs nothing further; a committed
            // one stays open until its ∆ is applied
            if *decision == Decision::Aborted {
                open.remove(&key(qid, Role::Participant));
            }
        }
        WalRecord::Applied { qid } => {
            open.remove(&key(qid, Role::Participant));
        }
        WalRecord::CoordinatorCommit { qid, .. } => {
            open.insert(key(qid, Role::Coordinator));
        }
        WalRecord::CoordinatorEnd { qid } => {
            open.remove(&key(qid, Role::Coordinator));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "xrpc-wal-test-{}-{n}-{name}.wal",
            std::process::id()
        ))
    }

    fn qid(ts: u64) -> QueryId {
        QueryId::new("xrpc://origin", ts, 30)
    }

    fn sample_prepared(ts: u64) -> WalRecord {
        WalRecord::Prepared {
            qid: qid(ts),
            coordinator: "xrpc://origin".into(),
            delta: vec![
                SerializedPrimitive::InsertLast {
                    target: NodePath {
                        doc_uri: "log.xml".into(),
                        steps: vec![PathStep::Child(0)],
                    },
                    content: vec![SerializedFragment::Xml("<e>hi%|there\n</e>".into())],
                },
                SerializedPrimitive::ReplaceValue {
                    target: NodePath {
                        doc_uri: "log.xml".into(),
                        steps: vec![PathStep::Child(0), PathStep::Attr(1)],
                    },
                    value: "new\tvalue".into(),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_records_through_reopen() {
        let p = tmp("roundtrip");
        let recs = vec![
            sample_prepared(1),
            WalRecord::Decision {
                qid: qid(1),
                decision: Decision::Committed,
            },
            WalRecord::CoordinatorCommit {
                qid: qid(2),
                participants: vec!["xrpc://b".into(), "xrpc://c".into()],
            },
        ];
        {
            let (w, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
            assert!(replay.records.is_empty());
            for r in &recs {
                w.append(r).unwrap();
            }
            assert_eq!(w.open_transactions(), 2);
        }
        let (_, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        assert!(!replay.tail_damaged);
        assert_eq!(replay.records, recs);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn truncated_tail_detected_and_dropped() {
        let p = tmp("torn");
        {
            let (w, _) = Wal::open(&p, FsyncPolicy::Always).unwrap();
            w.append(&sample_prepared(1)).unwrap();
            w.append(&sample_prepared(2)).unwrap();
        }
        // tear the last frame: chop off its final 3 bytes
        let len = std::fs::metadata(&p).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&p)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (w, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        assert!(replay.tail_damaged, "torn tail must be reported");
        assert_eq!(replay.records, vec![sample_prepared(1)]);
        // the log keeps working after the repair
        w.append(&sample_prepared(3)).unwrap();
        drop(w);
        let (_, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        assert!(!replay.tail_damaged);
        assert_eq!(replay.records, vec![sample_prepared(1), sample_prepared(3)]);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn bitflip_in_tail_detected_by_crc() {
        let p = tmp("bitflip");
        {
            let (w, _) = Wal::open(&p, FsyncPolicy::Always).unwrap();
            w.append(&sample_prepared(1)).unwrap();
            w.append(&sample_prepared(2)).unwrap();
        }
        // flip one bit inside the *last* record's payload
        let mut bytes = std::fs::read(&p).unwrap();
        let n = bytes.len();
        bytes[n - 5] ^= 0x10;
        std::fs::write(&p, &bytes).unwrap();
        let (_, replay) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        assert!(replay.tail_damaged, "bit flip must be reported");
        assert_eq!(
            replay.records,
            vec![sample_prepared(1)],
            "recovery proceeds from the last intact record"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn quiesce_truncates_log() {
        let p = tmp("quiesce");
        let (w, _) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        w.append(&sample_prepared(1)).unwrap();
        w.append(&WalRecord::Decision {
            qid: qid(1),
            decision: Decision::Committed,
        })
        .unwrap();
        assert_eq!(w.open_transactions(), 1, "committed but not yet applied");
        let before = std::fs::metadata(&p).unwrap().len();
        assert!(before > MAGIC.len() as u64);
        w.append(&WalRecord::Applied { qid: qid(1) }).unwrap();
        assert_eq!(w.open_transactions(), 0);
        assert_eq!(
            std::fs::metadata(&p).unwrap().len(),
            MAGIC.len() as u64,
            "quiesced log is truncated to just the magic"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn aborted_decision_quiesces_without_apply() {
        let p = tmp("abort-quiesce");
        let (w, _) = Wal::open(&p, FsyncPolicy::Never).unwrap();
        w.append(&sample_prepared(1)).unwrap();
        w.append(&WalRecord::Decision {
            qid: qid(1),
            decision: Decision::Aborted,
        })
        .unwrap();
        assert_eq!(w.open_transactions(), 0);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn non_wal_file_rejected() {
        let p = tmp("not-a-wal");
        std::fs::write(&p, b"definitely not a WAL file").unwrap();
        assert!(Wal::open(&p, FsyncPolicy::Never).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn crc32_known_vector() {
        // standard check value for "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn pul_roundtrip_through_serialized_form() {
        use xqeval::pul::UpdatePrimitive;
        let docs = InMemoryDocs::new();
        docs.insert(
            "db.xml",
            xmldom::parse_with_uri(
                r#"<root><item k="v">one</item><item>two</item></root>"#,
                "db.xml",
            )
            .unwrap(),
        );
        let doc = docs.get("db.xml").unwrap();
        let root_el = doc.children(doc.root())[0];
        let item0 = doc.children(root_el)[0];
        let attr = doc.attributes(item0)[0];
        let frag = {
            let d = Arc::new(xmldom::parse("<new>content &amp; more</new>").unwrap());
            let id = d.children(d.root())[0];
            NodeHandle::new(d, id)
        };
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::InsertLast {
            target: NodeHandle::new(doc.clone(), root_el),
            content: vec![frag],
        });
        pul.push(UpdatePrimitive::ReplaceValue {
            target: NodeHandle::new(doc.clone(), attr),
            value: "v2".into(),
        });
        pul.push(UpdatePrimitive::Delete {
            target: NodeHandle::new(doc.clone(), doc.children(root_el)[1]),
        });
        pul.push(UpdatePrimitive::Rename {
            target: NodeHandle::new(doc.clone(), item0),
            name: QName::local("renamed"),
        });

        let ser = serialize_pul(&pul).unwrap();
        // survive the wire: encode into a record payload and back
        let rec = WalRecord::Prepared {
            qid: qid(7),
            coordinator: "xrpc://origin".into(),
            delta: ser,
        };
        let decoded = decode_record(encode_record(&rec).as_bytes()).unwrap();
        let WalRecord::Prepared { delta, .. } = decoded else {
            panic!()
        };

        let restored = deserialize_pul(&docs, &delta).unwrap();
        let before = xqeval::pul::apply_updates(&pul).unwrap();
        let after = xqeval::pul::apply_updates(&restored).unwrap();
        assert_eq!(before.len(), after.len());
        let opts = Default::default();
        assert_eq!(
            xmldom::serialize_document(&before[0].new, &opts),
            xmldom::serialize_document(&after[0].new, &opts),
            "recovered PUL must produce the identical document"
        );
    }

    #[test]
    fn pul_serialization_rejects_uriless_doc() {
        let d = Arc::new(xmldom::parse("<a/>").unwrap());
        let target = NodeHandle::new(d.clone(), d.children(d.root())[0]);
        let mut pul = PendingUpdateList::new();
        pul.push(UpdatePrimitive::Delete { target });
        assert!(serialize_pul(&pul).is_err());
    }
}
