//! Two-phase commit for distributed XRPC updates, modeled on
//! WS-AtomicTransaction / WS-Coordination (paper §2.3): the originating
//! peer registers every participating peer (learned from the piggybacked
//! peer lists) and drives Prepare → Commit (or Abort) over the same SOAP
//! channel that carries XRPC calls.
//!
//! Control messages are encoded as XRPC requests against the reserved
//! module namespace [`WSAT_MODULE`], so any XRPC endpoint doubles as a
//! WS-AT participant — the paper's requirement that "XRPC systems must
//! implement support for these web service interfaces ... over the same
//! HTTP SOAP server that runs XRPC".

use crate::client::XrpcClient;
use crate::wal::{Wal, WalRecord};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use xdm::{XdmError, XdmResult};
use xrpc_net::{crash_points, CrashSwitch};
use xrpc_proto::QueryId;

// The control vocabulary lives in xrpc-proto (shared with recovery and
// external tooling); re-exported here for the existing call sites.
pub use xrpc_proto::control::{
    METHOD_ABORT, METHOD_CANCEL, METHOD_COMMIT, METHOD_INQUIRE, METHOD_PREPARE, WSAT_MODULE,
};

/// 2PC observability: one block per peer, covering both its participant
/// and coordinator roles (exposed next to the transport's `NetMetrics`).
/// Chiefly: `hazards` counts every decision delivery abandoned after its
/// retry budget — including the abort deliveries the coordinator used to
/// drop with `let _ =` — and `recoveries` counts transactions resolved by
/// restart recovery rather than the live protocol.
#[derive(Debug, Default)]
pub struct TwoPcMetrics {
    /// Prepare requests this peer acknowledged (participant side).
    pub prepares: AtomicU64,
    /// Commit decisions applied (participant side).
    pub commits: AtomicU64,
    /// Abort decisions handled (participant side).
    pub aborts: AtomicU64,
    /// Decision deliveries beyond the first per participant
    /// (coordinator side — the redelivery loop working).
    pub redeliveries: AtomicU64,
    /// Decision deliveries abandoned after the attempt budget
    /// (coordinator side): commit hazards *and* undeliverable aborts.
    pub hazards: AtomicU64,
    /// Transactions whose outcome was settled by restart recovery
    /// (WAL replay + inquiry / redelivery), not the live protocol.
    pub recoveries: AtomicU64,
    /// Inquire requests answered (coordinator side).
    pub inquiries: AtomicU64,
    /// Crashed-undecided coordinations whose participants were
    /// proactively re-told to abort by the recovery sweep.
    pub reaborts: AtomicU64,
    /// `Cancel` control messages handled (participant side): best-effort
    /// releases fanned out by an originator whose query timed out. A
    /// prepared participant counts the message but ignores the release.
    pub cancels: AtomicU64,
}

impl TwoPcMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> TwoPcSnapshot {
        TwoPcSnapshot {
            prepares: self.prepares.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            redeliveries: self.redeliveries.load(Ordering::Relaxed),
            hazards: self.hazards.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            inquiries: self.inquiries.load(Ordering::Relaxed),
            reaborts: self.reaborts.load(Ordering::Relaxed),
            cancels: self.cancels.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`TwoPcMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TwoPcSnapshot {
    pub prepares: u64,
    pub commits: u64,
    pub aborts: u64,
    pub redeliveries: u64,
    pub hazards: u64,
    pub recoveries: u64,
    pub inquiries: u64,
    pub reaborts: u64,
    pub cancels: u64,
}

/// Hook invoked with the queryID and participant list right after the
/// commit record is forced (the commit point), before any delivery.
pub type CommitLoggedHook<'a> = &'a (dyn Fn(&QueryId, &[String]) + Sync);

/// The coordinator's durable surroundings: its WAL (None = volatile
/// coordinator, the pre-recovery behavior), metrics, an optional crash
/// switch for the chaos harness, and a hook the peer uses to remember
/// logged commit decisions for answering `Inquire`.
#[derive(Default, Clone, Copy)]
pub struct CoordCtx<'a> {
    pub wal: Option<&'a Wal>,
    pub metrics: Option<&'a TwoPcMetrics>,
    pub switch: Option<&'a CrashSwitch>,
    /// The in-memory mirror `Inquire` answers from.
    pub on_commit_logged: Option<CommitLoggedHook<'a>>,
    /// The coordinating peer's tracer + histograms: phase spans nest
    /// under the thread's ambient context (the originator's `execute`
    /// root), and per-phase durations land in its histograms.
    pub obs: Option<&'a xrpc_obs::Observability>,
}

/// Coordinator tuning: per-phase deadline and decision-redelivery bounds.
#[derive(Debug, Clone, Copy)]
pub struct TwoPcConfig {
    /// Wall-clock budget for the prepare phase. Overrunning it flips the
    /// decision to abort — safe, since nothing has committed yet.
    ///
    /// The coordinator joins all prepare threads before checking this
    /// deadline, so the *hard* bound on the phase comes from the
    /// transport's own per-call deadline / read timeout: configure the
    /// transport (e.g. `RetryPolicy::call_deadline`, `HttpConfig` read
    /// timeout) shorter than this value, or a hung `send_control` will
    /// hold the coordinator past the deadline and the check merely flips
    /// the already-late outcome to abort post hoc.
    pub prepare_deadline: Duration,
    /// Delivery attempts for the Commit/Abort decision per participant
    /// (including the first). Participants answer decision redeliveries
    /// idempotently, so a transiently-partitioned one converges instead of
    /// surfacing a heuristic hazard on the first blip.
    pub decision_max_attempts: u32,
    /// Backoff before the first decision redelivery; doubles per attempt.
    pub decision_backoff: Duration,
}

impl Default for TwoPcConfig {
    fn default() -> Self {
        TwoPcConfig {
            prepare_deadline: Duration::from_secs(30),
            decision_max_attempts: 4,
            decision_backoff: Duration::from_millis(20),
        }
    }
}

/// Outcome of a coordination round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOutcome {
    Committed { participants: usize },
    Aborted { reason: String },
}

/// Drive 2PC over `participants` for query `qid` with default
/// [`TwoPcConfig`].
pub fn run_two_phase_commit(
    client: &XrpcClient,
    qid: &QueryId,
    participants: &[String],
) -> XdmResult<CommitOutcome> {
    run_two_phase_commit_with(client, qid, participants, &TwoPcConfig::default())
}

/// Drive 2PC over `participants` for query `qid`.
///
/// Phase 1 sends `Prepare` to every participant *concurrently*; any
/// failure (or overrunning the phase deadline) flips the decision to
/// abort. Phase 2 delivers the decision — `Commit` only when every
/// participant prepared, `Abort` otherwise — to **all** participants,
/// retrying each delivery with bounded exponential backoff. Only when a
/// Commit cannot be delivered within the attempt budget does the
/// coordinator surface a heuristic-hazard error (that participant still
/// holds its prepared ∆_q).
pub fn run_two_phase_commit_with(
    client: &XrpcClient,
    qid: &QueryId,
    participants: &[String],
    config: &TwoPcConfig,
) -> XdmResult<CommitOutcome> {
    run_two_phase_commit_ctx(client, qid, participants, config, CoordCtx::default())
}

/// Drive 2PC with a durable coordinator: like
/// [`run_two_phase_commit_with`], but when `ctx.wal` is present the commit
/// decision is *forced* to the log after unanimous prepare and **before**
/// any `Commit` delivery — that append is the commit point under presumed
/// abort (a crash before it recovers as abort; a crash after it recovers
/// by redelivering `Commit`). Abort decisions are never logged: absence of
/// a commit record *is* the abort record. After every participant has
/// acknowledged the commit, a `CoordinatorEnd` record retires the entry so
/// the log can checkpoint.
pub fn run_two_phase_commit_ctx(
    client: &XrpcClient,
    qid: &QueryId,
    participants: &[String],
    config: &TwoPcConfig,
    ctx: CoordCtx<'_>,
) -> XdmResult<CommitOutcome> {
    // Phase 1: Prepare — participants log their ∆_q and enter prepared
    // state (or refuse). All prepares run concurrently; the phase cost is
    // the slowest participant, not the sum (and one slow peer cannot
    // serialize the others behind it).
    let phase_start = Instant::now();
    let prepare_span = ctx.obs.map(|o| o.tracer.span_here("2pc:prepare-phase"));
    // the phase span's context is ambient on *this* thread only; hand it
    // to the scoped prepare threads so their control sends stay in-trace
    let prepare_ctx = xrpc_obs::current_context();
    let prepare_results: Vec<XdmResult<()>> = std::thread::scope(|scope| {
        let handles: Vec<_> = participants
            .iter()
            .map(|p| {
                scope.spawn(move || {
                    let _trace = xrpc_obs::set_current_context(prepare_ctx);
                    client.send_control(p, METHOD_PREPARE, qid)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(XdmError::xrpc("prepare thread panicked")),
            })
            .collect()
    });
    if let (Some(o), Some(s)) = (ctx.obs, prepare_span.as_ref()) {
        o.histogram("xrpc_twopc_prepare_phase_micros")
            .record_micros(s.elapsed());
    }
    drop(prepare_span);
    let mut failure: Option<XdmError> = prepare_results.into_iter().find_map(Result::err);
    if failure.is_none() && phase_start.elapsed() > config.prepare_deadline {
        failure = Some(XdmError::xrpc(format!(
            "2PC prepare phase exceeded its {:?} deadline",
            config.prepare_deadline
        )));
    }

    // Phase 2: deliver the decision to every participant. Abort goes to
    // all (not just the ones that acknowledged Prepare): a participant
    // whose Prepare *response* was lost is prepared even though the
    // coordinator never heard back, and must be released.
    let mut decision_span = ctx.obs.map(|o| o.tracer.span_here("2pc:decision-phase"));
    if let Some(s) = decision_span.as_mut() {
        s.tag(
            "decision",
            if failure.is_some() { "abort" } else { "commit" },
        );
    }
    let decision_start = Instant::now();
    let record_decision_phase = |o: Option<&xrpc_obs::Observability>| {
        if let Some(o) = o {
            o.histogram("xrpc_twopc_decision_phase_micros")
                .record_micros(decision_start.elapsed());
        }
    };
    match failure {
        Some(err) => {
            for p in participants {
                // Abort deliveries are best effort — an unreachable
                // participant's snapshot times out on its own (presumed
                // abort) — but no longer *silent*: each abandoned delivery
                // is a hazard in the metrics.
                if deliver_decision(client, p, METHOD_ABORT, qid, config, ctx.metrics).is_err() {
                    if let Some(m) = ctx.metrics {
                        m.hazards.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            record_decision_phase(ctx.obs);
            Ok(CommitOutcome::Aborted {
                reason: err.to_string(),
            })
        }
        None => {
            // Unanimous prepare: force the commit record *before* any
            // Commit delivery. Under presumed abort this append is the
            // commit point — everything before it recovers as abort,
            // everything after it recovers by redelivery.
            if let Some(sw) = ctx.switch {
                if sw.hit(crash_points::COORD_BEFORE_COMMIT_LOG) {
                    if let Some(s) = decision_span.as_mut() {
                        s.tag("crash_point", crash_points::COORD_BEFORE_COMMIT_LOG);
                    }
                    return Err(XdmError::xrpc(
                        "simulated crash at coordinator:before-commit-log",
                    ));
                }
            }
            if let Some(wal) = ctx.wal {
                let mut ws = ctx.obs.map(|o| o.tracer.span_here("wal:force"));
                if let Some(s) = ws.as_mut() {
                    s.tag("record", "coordinator-commit");
                }
                wal.append(&WalRecord::CoordinatorCommit {
                    qid: qid.clone(),
                    participants: participants.to_vec(),
                })?;
            }
            if let Some(f) = ctx.on_commit_logged {
                f(qid, participants);
            }
            if let Some(sw) = ctx.switch {
                if sw.hit(crash_points::COORD_AFTER_COMMIT_LOG) {
                    if let Some(s) = decision_span.as_mut() {
                        s.tag("crash_point", crash_points::COORD_AFTER_COMMIT_LOG);
                    }
                    return Err(XdmError::xrpc(
                        "simulated crash at coordinator:after-commit-log-before-delivery",
                    ));
                }
            }
            // Attempt delivery to *every* participant even when one
            // exhausts its redelivery budget — short-circuiting would leave
            // the rest holding prepared state without ever hearing the
            // decision, widening the mixed-outcome window beyond the one
            // unreachable peer. Failures are aggregated into a single
            // heuristic-hazard error afterward (those participants keep
            // their prepared logs).
            let mut hazards: Vec<String> = Vec::new();
            for p in participants {
                if let Err(e) = deliver_decision(client, p, METHOD_COMMIT, qid, config, ctx.metrics)
                {
                    if let Some(m) = ctx.metrics {
                        m.hazards.fetch_add(1, Ordering::Relaxed);
                    }
                    hazards.push(format!("`{p}`: {e}"));
                }
            }
            if !hazards.is_empty() {
                // No CoordinatorEnd: the commit record stays open in the
                // log, so restart recovery (or the sweeper) redelivers.
                return Err(XdmError::xrpc(format!(
                    "2PC commit undeliverable after unanimous prepare and {} delivery attempts at: {}",
                    config.decision_max_attempts,
                    hazards.join("; ")
                )));
            }
            if let Some(wal) = ctx.wal {
                wal.append(&WalRecord::CoordinatorEnd { qid: qid.clone() })?;
            }
            record_decision_phase(ctx.obs);
            Ok(CommitOutcome::Committed {
                participants: participants.len(),
            })
        }
    }
}

/// Deliver one decision message with bounded retry and *full-jitter*
/// backoff (each wait is uniform in `[0, cap)` where the cap doubles per
/// attempt — see `xrpc_net::full_jitter`): after a coordinator recovers
/// and redelivers to many participants at once, deterministic backoff
/// would re-synchronize the whole cohort into retry waves. Control
/// handling is idempotent at the participant, so redelivery after an
/// ambiguous failure is always safe.
pub(crate) fn deliver_decision(
    client: &XrpcClient,
    dest: &str,
    method: &str,
    qid: &QueryId,
    config: &TwoPcConfig,
    metrics: Option<&TwoPcMetrics>,
) -> XdmResult<()> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if attempt > 1 {
            if let Some(m) = metrics {
                m.redeliveries.fetch_add(1, Ordering::Relaxed);
            }
        }
        match client.send_control(dest, method, qid) {
            Ok(()) => return Ok(()),
            Err(e) if attempt >= config.decision_max_attempts.max(1) => return Err(e),
            Err(_) => {
                let cap = config
                    .decision_backoff
                    .saturating_mul(1u32 << (attempt - 1).min(16));
                let seed = xrpc_net::dest_salt(dest)
                    .wrapping_add(qid.timestamp_millis)
                    .wrapping_add(attempt as u64);
                std::thread::sleep(xrpc_net::full_jitter(cap, seed));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use xdm::Sequence;
    use xrpc_net::{NetProfile, SimNetwork};
    use xrpc_proto::{parse_message, XrpcFault, XrpcMessage, XrpcResponse};

    fn qid() -> QueryId {
        QueryId::new("p0", 42, 30)
    }

    /// A scripted participant: counts Prepare/Commit/Abort, optionally
    /// refusing to prepare.
    fn participant(net: &SimNetwork, name: &str, refuse_prepare: bool) -> Arc<[AtomicU32; 3]> {
        let counters: Arc<[AtomicU32; 3]> =
            Arc::new([AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)]);
        let c = counters.clone();
        net.register(
            name,
            Arc::new(move |body: &[u8]| {
                let req = match parse_message(std::str::from_utf8(body).unwrap()).unwrap() {
                    XrpcMessage::Request(r) => r,
                    _ => panic!(),
                };
                assert_eq!(req.module, WSAT_MODULE);
                let idx = match req.method.as_str() {
                    METHOD_PREPARE => 0,
                    METHOD_COMMIT => 1,
                    METHOD_ABORT => 2,
                    other => panic!("unexpected control method {other}"),
                };
                c[idx].fetch_add(1, Ordering::SeqCst);
                if idx == 0 && refuse_prepare {
                    return XrpcFault::from_error(&XdmError::xrpc("conflicting transaction"))
                        .to_xml()
                        .into_bytes();
                }
                let mut resp = XrpcResponse::new(WSAT_MODULE, req.method);
                resp.results.push(Sequence::empty());
                resp.to_xml().unwrap().into_bytes()
            }),
        );
        counters
    }

    #[test]
    fn all_prepare_then_all_commit() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let a = participant(&net, "xrpc://a", false);
        let b = participant(&net, "xrpc://b", false);
        let client = XrpcClient::new(net);
        let out = run_two_phase_commit(
            &client,
            &qid(),
            &["xrpc://a".to_string(), "xrpc://b".to_string()],
        )
        .unwrap();
        assert_eq!(out, CommitOutcome::Committed { participants: 2 });
        for c in [&a, &b] {
            assert_eq!(c[0].load(Ordering::SeqCst), 1, "one prepare");
            assert_eq!(c[1].load(Ordering::SeqCst), 1, "one commit");
            assert_eq!(c[2].load(Ordering::SeqCst), 0, "no abort");
        }
    }

    #[test]
    fn prepare_refusal_aborts_all_participants() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let a = participant(&net, "xrpc://a", false);
        let b = participant(&net, "xrpc://b", true); // refuses
        let c = participant(&net, "xrpc://c", false);
        let client = XrpcClient::new(net);
        let out = run_two_phase_commit(
            &client,
            &qid(),
            &[
                "xrpc://a".to_string(),
                "xrpc://b".to_string(),
                "xrpc://c".to_string(),
            ],
        )
        .unwrap();
        match out {
            CommitOutcome::Aborted { reason } => assert!(reason.contains("conflicting")),
            other => panic!("{other:?}"),
        }
        // prepare runs concurrently, so every participant saw it; the
        // abort decision also goes to all (a refuser and a prepared peer
        // whose ack was lost are indistinguishable to the coordinator)
        for x in [&a, &b, &c] {
            assert_eq!(x[0].load(Ordering::SeqCst), 1, "prepare reached everyone");
            assert_eq!(x[2].load(Ordering::SeqCst), 1, "abort reached everyone");
            assert_eq!(x[1].load(Ordering::SeqCst), 0, "nobody committed");
        }
    }

    #[test]
    fn unreachable_participant_aborts() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let a = participant(&net, "xrpc://a", false);
        let client = XrpcClient::new(net);
        let cfg = TwoPcConfig {
            decision_max_attempts: 2,
            decision_backoff: Duration::from_millis(1),
            ..TwoPcConfig::default()
        };
        let out = run_two_phase_commit_with(
            &client,
            &qid(),
            &["xrpc://a".to_string(), "xrpc://gone".to_string()],
            &cfg,
        )
        .unwrap();
        assert!(matches!(out, CommitOutcome::Aborted { .. }));
        assert_eq!(a[2].load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_participant_set_commits_trivially() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let client = XrpcClient::new(net);
        let out = run_two_phase_commit(&client, &qid(), &[]).unwrap();
        assert_eq!(out, CommitOutcome::Committed { participants: 0 });
    }

    #[test]
    fn lost_commit_response_is_redelivered_until_acknowledged() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let a = participant(&net, "xrpc://a", false);
        let b = participant(&net, "xrpc://b", false);
        // b: Prepare passes (zero-cost latency fault), Commit response lost
        net.inject_fault_script(
            "xrpc://b",
            [
                xrpc_net::SimFault::LatencySpike(Duration::ZERO),
                xrpc_net::SimFault::DropResponse,
            ],
        );
        let client = XrpcClient::new(net);
        let cfg = TwoPcConfig {
            decision_max_attempts: 3,
            decision_backoff: Duration::from_millis(1),
            ..TwoPcConfig::default()
        };
        let out = run_two_phase_commit_with(
            &client,
            &qid(),
            &["xrpc://a".to_string(), "xrpc://b".to_string()],
            &cfg,
        )
        .unwrap();
        assert_eq!(out, CommitOutcome::Committed { participants: 2 });
        assert_eq!(a[1].load(Ordering::SeqCst), 1);
        // the first Commit *was* handled at b (only its ack was lost), so
        // the redelivery makes it two deliveries — the participant side is
        // responsible for idempotence (see peer::handle_control)
        assert_eq!(b[1].load(Ordering::SeqCst), 2);
    }

    #[test]
    fn undeliverable_commit_surfaces_heuristic_hazard() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let _a = participant(&net, "xrpc://a", false);
        let b = participant(&net, "xrpc://b", false);
        net.inject_fault_script(
            "xrpc://b",
            [
                xrpc_net::SimFault::LatencySpike(Duration::ZERO),
                xrpc_net::SimFault::DropResponse,
                xrpc_net::SimFault::DropResponse,
            ],
        );
        let client = XrpcClient::new(net);
        let cfg = TwoPcConfig {
            decision_max_attempts: 2,
            decision_backoff: Duration::from_millis(1),
            ..TwoPcConfig::default()
        };
        let err = run_two_phase_commit_with(
            &client,
            &qid(),
            &["xrpc://a".to_string(), "xrpc://b".to_string()],
            &cfg,
        )
        .unwrap_err();
        assert!(
            err.message.contains("after unanimous prepare"),
            "{}",
            err.message
        );
        // both deliveries reached b (responses lost) — the hazard is about
        // the coordinator's knowledge, not the participant's state
        assert_eq!(b[1].load(Ordering::SeqCst), 2);
    }

    #[test]
    fn commit_still_reaches_later_participants_when_one_exhausts_budget() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let a = participant(&net, "xrpc://a", false);
        let b = participant(&net, "xrpc://b", false);
        // a: Prepare passes, every Commit delivery's response is lost
        net.inject_fault_script(
            "xrpc://a",
            [
                xrpc_net::SimFault::LatencySpike(Duration::ZERO),
                xrpc_net::SimFault::DropResponse,
                xrpc_net::SimFault::DropResponse,
            ],
        );
        let client = XrpcClient::new(net);
        let cfg = TwoPcConfig {
            decision_max_attempts: 2,
            decision_backoff: Duration::from_millis(1),
            ..TwoPcConfig::default()
        };
        let err = run_two_phase_commit_with(
            &client,
            &qid(),
            &["xrpc://a".to_string(), "xrpc://b".to_string()],
            &cfg,
        )
        .unwrap_err();
        // the hazard names the participant the coordinator lost track of...
        assert!(err.message.contains("xrpc://a"), "{}", err.message);
        assert!(
            err.message.contains("after unanimous prepare"),
            "{}",
            err.message
        );
        // ...but b — listed after a — must still have heard the decision,
        // not been starved by a short-circuit on a's failure
        assert_eq!(
            b[1].load(Ordering::SeqCst),
            1,
            "b must receive Commit despite a exhausting its budget"
        );
        assert_eq!(a[1].load(Ordering::SeqCst), 2, "both deliveries reached a");
    }
}
