//! Two-phase commit for distributed XRPC updates, modeled on
//! WS-AtomicTransaction / WS-Coordination (paper §2.3): the originating
//! peer registers every participating peer (learned from the piggybacked
//! peer lists) and drives Prepare → Commit (or Abort) over the same SOAP
//! channel that carries XRPC calls.
//!
//! Control messages are encoded as XRPC requests against the reserved
//! module namespace [`WSAT_MODULE`], so any XRPC endpoint doubles as a
//! WS-AT participant — the paper's requirement that "XRPC systems must
//! implement support for these web service interfaces ... over the same
//! HTTP SOAP server that runs XRPC".

use crate::client::XrpcClient;
use xdm::{XdmError, XdmResult};
use xrpc_proto::QueryId;

/// Reserved module namespace for coordination messages.
pub const WSAT_MODULE: &str = "urn:ws-atomictransaction";

pub const METHOD_PREPARE: &str = "Prepare";
pub const METHOD_COMMIT: &str = "Commit";
pub const METHOD_ABORT: &str = "Abort";

/// Outcome of a coordination round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitOutcome {
    Committed { participants: usize },
    Aborted { reason: String },
}

/// Drive 2PC over `participants` for query `qid`.
///
/// Phase 1 sends `Prepare` to every participant; a single failure flips
/// the decision to abort. Phase 2 sends `Commit` (or `Abort`) to all.
pub fn run_two_phase_commit(
    client: &XrpcClient,
    qid: &QueryId,
    participants: &[String],
) -> XdmResult<CommitOutcome> {
    // Phase 1: Prepare — participants log their ∆_q and enter prepared
    // state (or refuse).
    let mut failure: Option<XdmError> = None;
    let mut prepared: Vec<&String> = Vec::new();
    for p in participants {
        match client.send_control(p, METHOD_PREPARE, qid) {
            Ok(()) => prepared.push(p),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }

    if let Some(err) = failure {
        // Phase 2 (abort path): roll back everyone we prepared.
        for p in prepared {
            let _ = client.send_control(p, METHOD_ABORT, qid);
        }
        return Ok(CommitOutcome::Aborted {
            reason: err.to_string(),
        });
    }

    // Phase 2: Commit — applyUpdates(∆_q) at every participant.
    for p in participants {
        // A commit failure after unanimous prepare is a heuristic hazard;
        // we surface it as an error (participants keep their logs).
        client.send_control(p, METHOD_COMMIT, qid).map_err(|e| {
            XdmError::xrpc(format!(
                "2PC commit failed at `{p}` after unanimous prepare: {e}"
            ))
        })?;
    }
    Ok(CommitOutcome::Committed {
        participants: participants.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use xdm::Sequence;
    use xrpc_net::{NetProfile, SimNetwork};
    use xrpc_proto::{parse_message, XrpcFault, XrpcMessage, XrpcResponse};

    fn qid() -> QueryId {
        QueryId::new("p0", 42, 30)
    }

    /// A scripted participant: counts Prepare/Commit/Abort, optionally
    /// refusing to prepare.
    fn participant(net: &SimNetwork, name: &str, refuse_prepare: bool) -> Arc<[AtomicU32; 3]> {
        let counters: Arc<[AtomicU32; 3]> =
            Arc::new([AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)]);
        let c = counters.clone();
        net.register(
            name,
            Arc::new(move |body: &[u8]| {
                let req = match parse_message(std::str::from_utf8(body).unwrap()).unwrap() {
                    XrpcMessage::Request(r) => r,
                    _ => panic!(),
                };
                assert_eq!(req.module, WSAT_MODULE);
                let idx = match req.method.as_str() {
                    METHOD_PREPARE => 0,
                    METHOD_COMMIT => 1,
                    METHOD_ABORT => 2,
                    other => panic!("unexpected control method {other}"),
                };
                c[idx].fetch_add(1, Ordering::SeqCst);
                if idx == 0 && refuse_prepare {
                    return XrpcFault::from_error(&XdmError::xrpc("conflicting transaction"))
                        .to_xml()
                        .into_bytes();
                }
                let mut resp = XrpcResponse::new(WSAT_MODULE, req.method);
                resp.results.push(Sequence::empty());
                resp.to_xml().unwrap().into_bytes()
            }),
        );
        counters
    }

    #[test]
    fn all_prepare_then_all_commit() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let a = participant(&net, "xrpc://a", false);
        let b = participant(&net, "xrpc://b", false);
        let client = XrpcClient::new(net);
        let out = run_two_phase_commit(
            &client,
            &qid(),
            &["xrpc://a".to_string(), "xrpc://b".to_string()],
        )
        .unwrap();
        assert_eq!(out, CommitOutcome::Committed { participants: 2 });
        for c in [&a, &b] {
            assert_eq!(c[0].load(Ordering::SeqCst), 1, "one prepare");
            assert_eq!(c[1].load(Ordering::SeqCst), 1, "one commit");
            assert_eq!(c[2].load(Ordering::SeqCst), 0, "no abort");
        }
    }

    #[test]
    fn prepare_refusal_aborts_prepared_participants() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let a = participant(&net, "xrpc://a", false);
        let b = participant(&net, "xrpc://b", true); // refuses
        let c = participant(&net, "xrpc://c", false);
        let client = XrpcClient::new(net);
        let out = run_two_phase_commit(
            &client,
            &qid(),
            &[
                "xrpc://a".to_string(),
                "xrpc://b".to_string(),
                "xrpc://c".to_string(),
            ],
        )
        .unwrap();
        match out {
            CommitOutcome::Aborted { reason } => assert!(reason.contains("conflicting")),
            other => panic!("{other:?}"),
        }
        // a prepared and was aborted; b refused; c was never reached
        assert_eq!(a[0].load(Ordering::SeqCst), 1);
        assert_eq!(a[2].load(Ordering::SeqCst), 1);
        assert_eq!(b[2].load(Ordering::SeqCst), 0);
        assert_eq!(c[0].load(Ordering::SeqCst), 0);
        // nobody committed
        for x in [&a, &b, &c] {
            assert_eq!(x[1].load(Ordering::SeqCst), 0);
        }
    }

    #[test]
    fn unreachable_participant_aborts() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let a = participant(&net, "xrpc://a", false);
        let client = XrpcClient::new(net);
        let out = run_two_phase_commit(
            &client,
            &qid(),
            &["xrpc://a".to_string(), "xrpc://gone".to_string()],
        )
        .unwrap();
        assert!(matches!(out, CommitOutcome::Aborted { .. }));
        assert_eq!(a[2].load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_participant_set_commits_trivially() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let client = XrpcClient::new(net);
        let out = run_two_phase_commit(&client, &qid(), &[]).unwrap();
        assert_eq!(out, CommitOutcome::Committed { participants: 0 });
    }
}
