//! A tiny "module web": URL → XQuery module source, standing in for the
//! web server at `http://x.example.org/film.xq` that hosts modules in the
//! paper's examples. Peers install it as their module loader so that a
//! request's `location` at-hint can be resolved on first use.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use xdm::{XdmError, XdmResult};

#[derive(Default)]
pub struct ModuleWeb {
    pages: RwLock<HashMap<String, String>>,
}

impl ModuleWeb {
    pub fn new() -> Arc<Self> {
        Arc::new(ModuleWeb::default())
    }

    pub fn publish(&self, url: impl Into<String>, source: impl Into<String>) {
        self.pages.write().insert(url.into(), source.into());
    }

    pub fn fetch(&self, url: &str) -> XdmResult<String> {
        self.pages
            .read()
            .get(url)
            .cloned()
            .ok_or_else(|| XdmError::xrpc(format!("could not load module! (no page at `{url}`)")))
    }

    /// Install this web as the loader of a module registry.
    pub fn install(self: &Arc<Self>, registry: &xqeval::ModuleRegistry) {
        let web = self.clone();
        registry.set_loader(move |hint| web.fetch(hint));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_fetch_and_install() {
        let web = ModuleWeb::new();
        web.publish(
            "http://x.example.org/film.xq",
            "module namespace film = \"films\"; declare function film:f() { 1 };",
        );
        assert!(web.fetch("http://x.example.org/film.xq").is_ok());
        assert!(web.fetch("http://nowhere").is_err());

        let reg = xqeval::ModuleRegistry::new();
        web.install(&reg);
        let m = reg
            .get_or_load("films", Some("http://x.example.org/film.xq"))
            .unwrap();
        assert!(m.function("f", 0).is_some());
    }
}
