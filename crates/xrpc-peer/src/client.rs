//! The XRPC client stub (paper §3, "message sender API"): turns dispatch
//! requests from either engine into SOAP XRPC messages on a [`Transport`],
//! parses responses, converts faults into local run-time errors, and
//! collects the piggybacked participating-peer lists for 2PC.

use crate::adaptive::AdaptiveBulk;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;
use xdm::{Sequence, XdmError, XdmResult};
use xqeval::context::{FunctionRef, RpcDispatcher};
use xqeval::CancelToken;
use xrpc_net::{CallHint, ResilientTransport, Transport};
use xrpc_obs::Observability;
use xrpc_proto::{parse_message, QueryId, XrpcMessage, XrpcRequest};

/// One query's view of the network: the transport, the queryID (when the
/// query runs under repeatable-read isolation) and the deferred-update
/// flag (rule R'Fu).
pub struct XrpcClient {
    pub transport: Arc<dyn Transport>,
    pub query_id: Option<QueryId>,
    pub deferred_updates: bool,
    /// The sending peer's observability state: with it attached, every
    /// dispatch opens a client span (child of the thread's ambient
    /// context) whose context is injected into the envelope header, and
    /// call latency / message size land in the peer's histograms.
    /// Without it the client still *propagates* an ambient context on
    /// the wire — it just records nothing locally.
    pub obs: Option<Arc<Observability>>,
    /// Every peer that participated in this query (directly or nested) —
    /// the originator registers these with the 2PC coordinator (§2.3).
    pub participants: Mutex<HashSet<String>>,
    /// Requests sent (for experiment accounting).
    pub requests_sent: std::sync::atomic::AtomicU64,
    /// Individual calls sent (≥ requests when Bulk RPC batches).
    pub calls_sent: std::sync::atomic::AtomicU64,
    /// The owning peer's bulk-sizing controller. With it attached, a
    /// large *read-only* bulk dispatch to a measurably slow destination
    /// may be split into a few concurrently-shipped chunks (see
    /// [`AdaptiveBulk::dispatch_chunks`]); without it (or when the
    /// controller is pinned) every dispatch is one message.
    pub adaptive: Option<Arc<AdaptiveBulk>>,
    /// The transport's resilience decorator, for per-destination
    /// feedback: batch sizes and round-trip times are reported into its
    /// `DestStats` after every dispatch, which is where the controller's
    /// per-destination estimates come from.
    pub net_feedback: Option<Arc<ResilientTransport>>,
    /// The query's deadline/cancellation token. With it attached, every
    /// dispatch checks the budget before touching the wire (an exhausted
    /// budget fails locally with `XRPC0004`), stamps the *remaining*
    /// budget into the envelope's `<xrpc:budget>` header so nested hops
    /// inherit it, and caps the retry layer's backoff sleeps to the
    /// budget via the ambient deadline. 2PC control messages bypass it —
    /// past the commit point the decision protocol must run to
    /// completion regardless of the originator's budget.
    pub cancel: Option<Arc<CancelToken>>,
    /// The query's profile collector, when it runs with `xrpc:profile`
    /// on. Every dispatch then stamps a `<xrpc:profile>` request header
    /// (mode + this peer as `via` + depth+1), charges marshal/network
    /// time and wire bytes to the collector, and absorbs the hop
    /// profiles the response header carries back.
    pub profile: Option<Arc<xrpc_obs::ProfileCollector>>,
}

impl XrpcClient {
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        XrpcClient {
            transport,
            query_id: None,
            deferred_updates: false,
            obs: None,
            participants: Mutex::new(HashSet::new()),
            requests_sent: std::sync::atomic::AtomicU64::new(0),
            calls_sent: std::sync::atomic::AtomicU64::new(0),
            adaptive: None,
            net_feedback: None,
            cancel: None,
            profile: None,
        }
    }

    pub fn with_query_id(mut self, qid: QueryId) -> Self {
        self.query_id = Some(qid);
        self
    }

    pub fn with_deferred_updates(mut self, deferred: bool) -> Self {
        self.deferred_updates = deferred;
        self
    }

    pub fn participants_snapshot(&self) -> Vec<String> {
        let mut v: Vec<String> = self.participants.lock().iter().cloned().collect();
        v.sort();
        v
    }

    /// Send a raw control request (used by the 2PC driver). Control
    /// messages are idempotent at the participant (re-Prepare of a
    /// prepared query, redelivered Commit/Abort of a decided one are all
    /// answered OK), so the transport may retry them freely.
    pub fn send_control(&self, dest: &str, method: &str, qid: &QueryId) -> XdmResult<()> {
        self.send_control_with_reply(dest, method, qid).map(|_| ())
    }

    /// Like [`send_control`](Self::send_control) but returning the peer's
    /// response body — `Inquire` answers ride in it (see
    /// `xrpc_proto::control::TxOutcome`).
    pub fn send_control_with_reply(
        &self,
        dest: &str,
        method: &str,
        qid: &QueryId,
    ) -> XdmResult<xrpc_proto::XrpcResponse> {
        let mut req =
            XrpcRequest::new(crate::twopc::WSAT_MODULE, method, 0).with_query_id(qid.clone());
        req.push_call(vec![]);
        // Control messages continue the coordinator's trace: a span per
        // delivery when a tracer is attached, else the bare ambient
        // context (so the participant's server span still links up).
        let mut span = self.obs.as_ref().map(|o| {
            let mut s = o.tracer.span_here(&format!("control:{method}"));
            s.tag("dest", dest);
            s
        });
        req.trace = span
            .as_ref()
            .map(|s| s.context())
            .or_else(xrpc_obs::current_context);
        let xml = req.to_xml()?;
        let resp = self
            .transport
            .roundtrip_hinted(dest, xml.as_bytes(), CallHint::ReadOnly)
            .map_err(|e| {
                if let Some(s) = span.as_mut() {
                    s.tag("net_error", format!("{:?}", e.kind));
                }
                XdmError::xrpc(e.to_string())
            })?;
        match parse_message(
            std::str::from_utf8(&resp).map_err(|_| XdmError::xrpc("non-UTF8 response"))?,
        )? {
            XrpcMessage::Response(r) => Ok(r),
            XrpcMessage::Fault(f) => Err(f.to_error()),
            XrpcMessage::Request(_) => Err(XdmError::xrpc("unexpected request as reply")),
        }
    }

    /// Best-effort `Cancel` fan-out: tell every destination peer the query
    /// is over so they stop evaluating and release its isolated state.
    /// Errors are swallowed — a peer that misses the message converges via
    /// its own deadline sweep, and prepared participants ignore it anyway
    /// (the decision protocol owns them past that point). Returns how many
    /// peers acknowledged.
    pub fn send_cancel(&self, dests: &[String], qid: &QueryId) -> usize {
        let mut acked = 0;
        for dest in dests {
            if self
                .send_control(dest, crate::twopc::METHOD_CANCEL, qid)
                .is_ok()
            {
                acked += 1;
            }
        }
        acked
    }
}

impl XrpcClient {
    /// Ship one Bulk RPC message carrying `calls` and parse its reply —
    /// the single-message path `dispatch` delegates to (once per chunk
    /// when the controller splits).
    fn dispatch_one(
        &self,
        dest: &str,
        func: &FunctionRef,
        calls: Vec<Vec<Sequence>>,
    ) -> XdmResult<Vec<Sequence>> {
        use std::sync::atomic::Ordering::Relaxed;
        let ncalls = calls.len();
        // Deadline propagation: fail locally (XRPC0004/XRPC0005) before
        // spending any wire time on a dead budget, then stamp whatever is
        // left at *send time* into the envelope — each hop's receiver sees
        // strictly less budget than its caller did.
        if let Some(tok) = &self.cancel {
            tok.check_now()?;
        }
        let mut req = XrpcRequest::new(func.module_ns.clone(), func.local_name.clone(), func.arity);
        req.budget_millis = self.cancel.as_ref().and_then(|t| t.remaining_millis());
        req.location = func.location_hint.clone();
        req.query_id = self.query_id.clone();
        req.deferred = self.deferred_updates && func.updating;
        for c in calls {
            req.push_call(c);
        }
        let seq_no = self.requests_sent.fetch_add(1, Relaxed);
        if req.deferred {
            // uniquely stamp each deferred dispatch so the peer can tell a
            // transport redelivery (identical bytes, same seq) from two
            // genuinely identical dispatches (different seq)
            req.seq = Some(seq_no);
        }
        // One client span per dispatch; its context rides in the envelope
        // header so the callee's server span joins the same trace. With no
        // tracer the ambient context (if any) is forwarded untouched.
        let mut span = self.obs.as_ref().map(|o| {
            let mut s = o.tracer.span_here("client:call");
            s.tag("dest", dest);
            s.tag("method", &req.method);
            s
        });
        req.trace = span
            .as_ref()
            .map(|s| s.context())
            .or_else(xrpc_obs::current_context);
        // Ask the callee to profile its hop: it sees this peer as `via`
        // and runs one level deeper in the call chain.
        if let Some(col) = &self.profile {
            req.profile = Some(xrpc_proto::ProfileRequest {
                mode: col.mode,
                via: col.peer.clone(),
                depth: col.depth + 1,
            });
        }
        // serialize into a recycled buffer sized from the cheap estimate;
        // the call-by-fragment path needs the message-DOM pipeline and
        // keeps its own allocation
        let marshal_started = self.profile.as_ref().map(|_| std::time::Instant::now());
        let xml = if req.call_by_fragment {
            req.to_xml()?
        } else {
            let mut out = xrpc_net::BufferPool::global().get_string(req.estimated_wire_size());
            req.write_xml(&mut out)?;
            out
        };
        if let (Some(col), Some(m)) = (&self.profile, marshal_started) {
            col.add_phase(xrpc_obs::Phase::Marshal, m.elapsed().as_micros() as u64);
        }
        self.calls_sent.fetch_add(ncalls as u64, Relaxed);
        // Retry semantics (see xrpc-net): read-only calls are safe to
        // resend after any retryable failure; deferred updates (rule R'Fu)
        // are redelivery-safe because the peer merges each request's ∆
        // into the snapshot PUL at most once (request-hash dedupe);
        // immediate updates (rule RFu) may only be resent when the request
        // provably never reached the peer.
        let hint = if !func.updating {
            CallHint::ReadOnly
        } else if req.deferred {
            CallHint::DeferredUpdate
        } else {
            CallHint::Update
        };
        if let Some(o) = &self.obs {
            o.histogram("xrpc_message_bytes").record(xml.len() as u64);
        }
        let started = std::time::Instant::now();
        // Cap the retry layer's cumulative backoff to the query budget for
        // the duration of this round-trip (no-op without a deadline).
        let _budget_guard = self
            .cancel
            .as_ref()
            .and_then(|t| t.deadline())
            .map(|d| xrpc_net::set_ambient_deadline(Some(d)));
        let resp_bytes = self
            .transport
            .roundtrip_hinted(dest, xml.as_bytes(), hint)
            .map_err(|e| {
                // the typed failure kind lands on the span, so a trace
                // shows *how* a hop died, not just that it did
                if let Some(s) = span.as_mut() {
                    s.tag("net_error", format!("{:?}", e.kind));
                }
                XdmError::xrpc(format!("XRPC to `{dest}` failed: {e}"))
            })?;
        if let Some(o) = &self.obs {
            let elapsed = started.elapsed();
            o.histogram("xrpc_call_latency_micros")
                .record_micros(elapsed);
            o.histogram_vec("xrpc_call_latency_by_dest_micros", "dest")
                .with_label(dest)
                .record_micros(elapsed);
        }
        if let Some(col) = &self.profile {
            // "network" is the whole round-trip as this hop saw it (the
            // callee's own time included — each hop's phases account for
            // *its* wall clock); bytes land on the operator whose
            // dispatch this is (the enclosing execute-at guard).
            col.add_phase(
                xrpc_obs::Phase::Network,
                started.elapsed().as_micros() as u64,
            );
            col.add_bytes_to_current((xml.len() + resp_bytes.len()) as u64);
        }
        xrpc_net::BufferPool::global().put_string(xml);
        let resp_text = std::str::from_utf8(&resp_bytes)
            .map_err(|_| XdmError::xrpc("non-UTF8 XRPC response"))?;
        let msg = parse_message(resp_text)?;
        // the response's byte buffer is spent once parsed: recycle it
        xrpc_net::BufferPool::global().put(resp_bytes);
        match msg {
            XrpcMessage::Response(mut r) => {
                if let Some(col) = &self.profile {
                    if !r.profile_hops.is_empty() {
                        col.absorb_hops(std::mem::take(&mut r.profile_hops));
                    }
                }
                let mut parts = self.participants.lock();
                parts.insert(dest.to_string());
                for p in &r.participating_peers {
                    parts.insert(p.clone());
                }
                if r.results.len() != ncalls {
                    return Err(XdmError::xrpc(format!(
                        "response carries {} results for {} calls",
                        r.results.len(),
                        ncalls
                    )));
                }
                Ok(r.results)
            }
            // "any error will cause a run-time error at the site that
            // originated the query" (§2.1)
            XrpcMessage::Fault(f) => Err(f.to_error()),
            XrpcMessage::Request(_) => Err(XdmError::xrpc("peer answered with a request")),
        }
    }
}

impl RpcDispatcher for XrpcClient {
    fn dispatch(
        &self,
        dest: &str,
        func: &FunctionRef,
        calls: Vec<Vec<Sequence>>,
    ) -> XdmResult<Vec<Sequence>> {
        use std::sync::atomic::Ordering::Relaxed;
        let ncalls = calls.len();
        let dest_stats = self.net_feedback.as_ref().map(|rt| rt.dest_stats_for(dest));
        // Read-only batches may be split into concurrently-shipped chunks
        // when the controller judges the destination slow enough that the
        // extra messages pay for themselves. Updating dispatches never
        // split: their retry/redelivery contract is per-message.
        let chunks = match (&self.adaptive, &dest_stats) {
            (Some(a), Some(ds)) if !func.updating => {
                a.dispatch_chunks(ncalls, ds.ewma_call_micros())
            }
            _ => 1,
        };
        let started = std::time::Instant::now();
        let result = if chunks <= 1 {
            self.dispatch_one(dest, func, calls)
        } else {
            if let Some(a) = &self.adaptive {
                a.split_dispatches.fetch_add(1, Relaxed);
            }
            self.dispatch_chunked(dest, func, calls, chunks)
        };
        if result.is_ok() {
            if let Some(ds) = &dest_stats {
                ds.note_calls(ncalls as u64, started.elapsed());
            }
        }
        result
    }
}

impl XrpcClient {
    /// Split `calls` into `chunks` contiguous slices and ship them
    /// concurrently (one sender thread per extra chunk). Results are
    /// merged back in call order; the lowest-chunk error wins, exactly
    /// as the single-message path would have surfaced it. Only reached
    /// for read-only functions — no ∆s, so partial failure leaves no
    /// state behind.
    fn dispatch_chunked(
        &self,
        dest: &str,
        func: &FunctionRef,
        calls: Vec<Vec<Sequence>>,
        chunks: usize,
    ) -> XdmResult<Vec<Sequence>> {
        let ncalls = calls.len();
        let per = ncalls.div_ceil(chunks);
        let mut parts: Vec<Vec<Vec<Sequence>>> = Vec::with_capacity(chunks);
        let mut rest = calls;
        while !rest.is_empty() {
            let tail = rest.split_off(per.min(rest.len()));
            parts.push(std::mem::replace(&mut rest, tail));
        }
        // Worker threads need the dispatching thread's ambient trace
        // context/tracer — and the profiler's current-operator parent —
        // re-established (they are thread-locals).
        let ambient = xrpc_obs::current_context();
        let tracer = xrpc_obs::current_tracer();
        let op_parent = xrpc_obs::profile::current_parent();
        let mut slots: Vec<XdmResult<Vec<Sequence>>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|chunk| {
                    let tracer = tracer.clone();
                    s.spawn(move || {
                        let _ctx = xrpc_obs::set_current_context(ambient);
                        let _tr = xrpc_obs::set_current_tracer(tracer);
                        let _op = xrpc_obs::profile::install_parent(op_parent);
                        self.dispatch_one(dest, func, chunk)
                    })
                })
                .collect();
            for h in handles {
                slots.push(h.join().unwrap_or_else(|_| {
                    Err(XdmError::xrpc("bulk dispatch chunk thread panicked"))
                }));
            }
        });
        let mut out = Vec::with_capacity(ncalls);
        for slot in slots {
            out.extend(slot?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xdm::Item;
    use xrpc_net::{NetProfile, SimNetwork};
    use xrpc_proto::{XrpcFault, XrpcResponse};

    fn func() -> FunctionRef {
        FunctionRef {
            module_ns: "films".into(),
            location_hint: Some("http://x/film.xq".into()),
            local_name: "filmsByActor".into(),
            arity: 1,
            updating: false,
        }
    }

    #[test]
    fn dispatch_roundtrip_through_sim_network() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        net.register(
            "xrpc://y",
            Arc::new(|body: &[u8]| {
                // echo a response with as many result sequences as calls
                let msg = parse_message(std::str::from_utf8(body).unwrap()).unwrap();
                let req = match msg {
                    XrpcMessage::Request(r) => r,
                    _ => panic!(),
                };
                assert_eq!(req.module, "films");
                assert_eq!(req.location.as_deref(), Some("http://x/film.xq"));
                let mut resp = XrpcResponse::new(req.module, req.method);
                for c in &req.calls {
                    resp.results
                        .push(Sequence::one(Item::string(c[0].items()[0].string_value())));
                }
                resp.participating_peers.push("xrpc://nested".into());
                resp.to_xml().unwrap().into_bytes()
            }),
        );
        let client = XrpcClient::new(net);
        let results = client
            .dispatch(
                "xrpc://y",
                &func(),
                vec![
                    vec![Sequence::one(Item::string("a"))],
                    vec![Sequence::one(Item::string("b"))],
                ],
            )
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].items()[0].string_value(), "b");
        assert_eq!(
            client.participants_snapshot(),
            vec!["xrpc://nested".to_string(), "xrpc://y".to_string()]
        );
        assert_eq!(
            client
                .requests_sent
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert_eq!(
            client.calls_sent.load(std::sync::atomic::Ordering::Relaxed),
            2
        );
    }

    #[test]
    fn fault_becomes_local_error() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        net.register(
            "xrpc://y",
            Arc::new(|_: &[u8]| {
                XrpcFault::from_error(&XdmError::doc_error("could not load module!"))
                    .to_xml()
                    .into_bytes()
            }),
        );
        let client = XrpcClient::new(net);
        let err = client
            .dispatch("xrpc://y", &func(), vec![vec![Sequence::empty()]])
            .unwrap_err();
        assert_eq!(err.code, "FODC0002");
        assert!(err.message.contains("could not load module!"));
    }

    #[test]
    fn network_failure_is_error() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        let client = XrpcClient::new(net);
        let err = client
            .dispatch("xrpc://gone", &func(), vec![vec![Sequence::empty()]])
            .unwrap_err();
        assert_eq!(err.code, "XRPC0001");
    }

    #[test]
    fn result_count_mismatch_rejected() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        net.register(
            "xrpc://y",
            Arc::new(|_: &[u8]| {
                let mut resp = XrpcResponse::new("films", "filmsByActor");
                resp.results.push(Sequence::empty()); // only one result
                resp.to_xml().unwrap().into_bytes()
            }),
        );
        let client = XrpcClient::new(net);
        let err = client
            .dispatch(
                "xrpc://y",
                &func(),
                vec![vec![Sequence::empty()], vec![Sequence::empty()]],
            )
            .unwrap_err();
        assert!(err.message.contains("results for 2 calls"));
    }

    #[test]
    fn query_id_propagates_on_wire() {
        let net = Arc::new(SimNetwork::new(NetProfile::instant()));
        net.register(
            "xrpc://y",
            Arc::new(|body: &[u8]| {
                let req = match parse_message(std::str::from_utf8(body).unwrap()).unwrap() {
                    XrpcMessage::Request(r) => r,
                    _ => panic!(),
                };
                let qid = req.query_id.expect("queryID must be present");
                assert_eq!(qid.host, "p0.example.org");
                assert_eq!(qid.timeout_secs, 30);
                let mut resp = XrpcResponse::new(req.module, req.method);
                resp.results.push(Sequence::empty());
                resp.to_xml().unwrap().into_bytes()
            }),
        );
        let client = XrpcClient::new(net).with_query_id(QueryId::new("p0.example.org", 12345, 30));
        client
            .dispatch("xrpc://y", &func(), vec![vec![Sequence::empty()]])
            .unwrap();
    }
}
