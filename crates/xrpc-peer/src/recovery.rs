//! Restart recovery for the durable 2PC layer (see `wal`).
//!
//! A peer that crashes holding coordination state recovers in two steps:
//!
//! 1. **Replay** ([`Peer::attach_wal`]): fold the surviving WAL records
//!    into per-transaction state. Prepared-but-undecided transactions
//!    re-enter prepared snapshots (their ∆_q deserialized against the
//!    durable store); decided-but-unapplied committed ∆s are re-applied
//!    immediately; coordinator commit records without a matching end are
//!    queued for decision redelivery.
//! 2. **Resolution** ([`Peer::resolve_in_doubt`]): every in-doubt
//!    transaction sends a WS-AT `Inquire` to its recorded coordinator.
//!    `Committed` applies the held ∆; `Aborted` — or, per presumed abort,
//!    a coordinator with *no record* of the transaction — releases it;
//!    `InDoubt` (or an unreachable coordinator) leaves it prepared for a
//!    later round. Recovered commit decisions are redelivered to their
//!    participants, then retired with a `CoordinatorEnd`.
//!
//! A background sweeper ([`Peer::start_recovery_sweeper`]) re-runs
//! resolution for prepared transactions older than a configured age, so
//! an in-doubt participant converges even when the coordinator only comes
//! back long after the participant did.

use crate::client::XrpcClient;
use crate::peer::{Peer, RedeliverEntry, TxKey};
use crate::store::{Decision, QuerySnapshot};
use crate::twopc::{self, METHOD_INQUIRE};
use crate::wal::{self, FsyncPolicy, SerializedPrimitive, Wal, WalConfig, WalRecord};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xdm::XdmResult;
use xrpc_obs::{trace_id_from, TraceContext};
use xrpc_proto::{QueryId, TxOutcome};

/// What one recovery (or resolution) pass accomplished.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The log's tail was torn or CRC-damaged (and truncated away);
    /// recovery proceeded from the last intact record.
    pub tail_damaged: bool,
    /// Prepared-but-undecided transactions re-entered from the log.
    pub restored_prepared: usize,
    /// Committed ∆s whose decision was logged but not yet applied at the
    /// crash, re-applied during replay.
    pub reapplied: usize,
    /// In-doubt transactions an inquiry resolved to commit.
    pub resolved_committed: usize,
    /// In-doubt transactions resolved to abort (including presumed abort).
    pub resolved_aborted: usize,
    /// In-doubt transactions still unresolved after this pass.
    pub still_in_doubt: usize,
    /// Recovered coordinator decisions fully redelivered and retired.
    pub redelivered: usize,
    /// Re-driven applies the applied-LSN mark proved already done (the
    /// crash fell between `applyUpdates` and the `Applied` marker) and
    /// therefore skipped instead of double-applying.
    pub lsn_skips: usize,
    /// Coordinations that died undecided whose participants were
    /// proactively re-told to abort (and the begin record retired).
    pub reaborted: usize,
}

impl RecoveryReport {
    /// Fold a resolution pass into this (replay) report.
    pub fn absorb(&mut self, other: RecoveryReport) {
        self.tail_damaged |= other.tail_damaged;
        self.restored_prepared += other.restored_prepared;
        self.reapplied += other.reapplied;
        self.resolved_committed += other.resolved_committed;
        self.resolved_aborted += other.resolved_aborted;
        self.still_in_doubt = other.still_in_doubt;
        self.redelivered += other.redelivered;
        self.lsn_skips += other.lsn_skips;
        self.reaborted += other.reaborted;
    }
}

/// Background re-inquiry cadence.
#[derive(Debug, Clone, Copy)]
pub struct SweeperConfig {
    /// How often the sweeper wakes up.
    pub interval: Duration,
    /// Only prepared transactions at least this old are re-inquired —
    /// young ones are normally still being driven by a live coordinator.
    pub min_age: Duration,
}

impl Default for SweeperConfig {
    fn default() -> Self {
        SweeperConfig {
            interval: Duration::from_secs(5),
            min_age: Duration::from_secs(10),
        }
    }
}

/// A running recovery sweeper. Dropping (or calling
/// [`stop`](SweeperHandle::stop)) stops and joins the thread; the sweeper
/// holds only a `Weak<Peer>`, so it also dies with its peer.
pub struct SweeperHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SweeperHandle {
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SweeperHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Per-transaction fold of the replayed records.
#[derive(Default)]
struct TxReplay {
    qid: Option<QueryId>,
    prepared: Option<(String, Vec<SerializedPrimitive>)>,
    /// LSN of the `Prepared` record — the mark its apply is guarded by.
    prepared_lsn: Option<u64>,
    decision: Option<Decision>,
    applied: bool,
    /// Highest mark carried by a replayed `Applied` record; re-seeds the
    /// document store's applied-LSN table.
    applied_mark: u64,
    coordinator_begin: Option<Vec<String>>,
    coordinator_commit: Option<Vec<String>>,
    coordinator_end: bool,
}

impl Peer {
    /// Open (creating if absent) the WAL at `path`, replay it, and
    /// re-enter the durable coordination state it records. Subsequent
    /// Prepare acks and commit decisions at this peer are forced to the
    /// log. Call [`resolve_in_doubt`](Self::resolve_in_doubt) afterwards
    /// (once transports are wired) to chase outcomes over the network.
    pub fn attach_wal(
        self: &Arc<Self>,
        path: impl AsRef<Path>,
        fsync: FsyncPolicy,
    ) -> XdmResult<RecoveryReport> {
        self.attach_wal_with(
            path,
            WalConfig {
                fsync,
                ..WalConfig::default()
            },
        )
    }

    /// [`attach_wal`](Self::attach_wal) with full control over group
    /// commit and segment rotation.
    pub fn attach_wal_with(
        self: &Arc<Self>,
        path: impl AsRef<Path>,
        config: WalConfig,
    ) -> XdmResult<RecoveryReport> {
        let (log, replay) = Wal::open_with(path, config)?;
        log.set_observers(
            self.obs.histogram("xrpc_wal_append_micros"),
            self.obs.histogram("xrpc_wal_fsync_micros"),
            self.obs.histogram("xrpc_wal_group_batch"),
        );
        if let Some(sw) = self.crash_switch.read().as_ref() {
            log.set_crash_switch(sw.clone());
        }
        *self.wal.write() = Some(log.clone());

        let mut order: Vec<(String, u64)> = Vec::new();
        let mut txs: HashMap<(String, u64), TxReplay> = HashMap::new();
        for sr in &replay.records {
            let q = sr.record.qid();
            let key = (q.host.clone(), q.timestamp_millis);
            let tx = txs.entry(key.clone()).or_insert_with(|| {
                order.push(key.clone());
                TxReplay::default()
            });
            tx.qid.get_or_insert_with(|| q.clone());
            match &sr.record {
                WalRecord::Prepared {
                    coordinator, delta, ..
                } => {
                    tx.prepared = Some((coordinator.clone(), delta.clone()));
                    tx.prepared_lsn = Some(sr.lsn).filter(|l| *l > 0);
                }
                WalRecord::Decision { decision, .. } => tx.decision = Some(*decision),
                WalRecord::Applied { mark, .. } => {
                    tx.applied = true;
                    tx.applied_mark = tx.applied_mark.max(*mark);
                }
                WalRecord::CoordinatorBegin { participants, .. } => {
                    tx.coordinator_begin = Some(participants.clone())
                }
                WalRecord::CoordinatorCommit { participants, .. } => {
                    tx.coordinator_commit = Some(participants.clone())
                }
                WalRecord::CoordinatorEnd { .. } => tx.coordinator_end = true,
            }
        }

        let mut report = RecoveryReport {
            tail_damaged: replay.tail_damaged,
            ..Default::default()
        };
        for key in order {
            let tx = txs.remove(&key).expect("folded above");
            let qid = tx.qid.expect("every record carries a qid");

            // Re-seed the store's applied-LSN mark from the replayed
            // marker before any re-apply decision consults it.
            if tx.applied_mark > 0 {
                self.docs
                    .set_applied_mark(&Self::mark_key(&qid), tx.applied_mark);
            }

            // Coordinator role: a logged commit decision is the truth
            // `Inquire` answers from; one without an end record still owes
            // its participants a delivery.
            if let Some(parts) = tx.coordinator_commit {
                self.coord_committed
                    .lock()
                    .insert(key.clone(), parts.clone());
                if !tx.coordinator_end {
                    self.coord_redeliver
                        .lock()
                        .insert(key.clone(), (qid.clone(), parts));
                }
            } else if let Some(parts) = tx.coordinator_begin {
                // A coordination that began but never reached a durable
                // decision: presumed abort. Queue its participants for
                // the proactive re-abort sweep so their prepared ∆s
                // release without waiting for their own inquiries.
                if !tx.coordinator_end {
                    self.coord_reabort
                        .lock()
                        .insert(key.clone(), (qid.clone(), parts));
                }
            }

            // Participant role.
            if let Some((coordinator, delta)) = tx.prepared {
                match tx.decision {
                    Some(Decision::Committed) if !tx.applied => {
                        // decided but killed before applyUpdates: finish
                        // the job now, directly from the log. The mark
                        // makes this idempotent — if the crash fell after
                        // the apply but before the marker, skip.
                        let pul = wal::deserialize_pul(&self.docs, &delta)?;
                        if !self.apply_pul_marked(&pul, &qid, tx.prepared_lsn)? {
                            report.lsn_skips += 1;
                        }
                        log.append(&WalRecord::Applied {
                            qid: qid.clone(),
                            mark: tx.prepared_lsn.unwrap_or(0),
                        })?;
                        self.snapshots.finish_with(&qid, Decision::Committed);
                        report.reapplied += 1;
                        self.twopc_metrics
                            .recoveries
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    Some(d) => {
                        // fully settled; remember the decision so a
                        // redelivered control message answers idempotently
                        self.snapshots.finish_with(&qid, d);
                    }
                    None => {
                        // the in-doubt case: re-enter prepared state and
                        // remember who to ask
                        let pul = wal::deserialize_pul(&self.docs, &delta)?;
                        self.snapshots.restore_prepared(
                            &qid,
                            self.docs.snapshot(),
                            pul,
                            tx.prepared_lsn,
                        );
                        self.recovered_coordinators
                            .lock()
                            .insert(key.clone(), coordinator);
                        report.restored_prepared += 1;
                    }
                }
            }
        }
        Ok(report)
    }

    /// Resolve every in-doubt transaction and redeliver every recovered
    /// coordinator decision, now. Equivalent to
    /// [`resolve_in_doubt_older_than`](Self::resolve_in_doubt_older_than)
    /// with a zero age.
    pub fn resolve_in_doubt(self: &Arc<Self>) -> XdmResult<RecoveryReport> {
        self.resolve_in_doubt_older_than(Duration::ZERO)
    }

    /// One resolution pass over prepared transactions at least `min_age`
    /// old (and all pending coordinator redeliveries). Unresolvable
    /// transactions (coordinator unreachable or still in doubt) stay
    /// prepared and are counted, not errored — the sweeper tries again.
    pub fn resolve_in_doubt_older_than(
        self: &Arc<Self>,
        min_age: Duration,
    ) -> XdmResult<RecoveryReport> {
        let mut report = RecoveryReport::default();
        let Some(transport) = self.transport() else {
            return Ok(report);
        };
        let mut client = XrpcClient::new(transport);
        client.obs = Some(self.obs.clone());
        let _tracer = xrpc_obs::set_current_tracer(Some(self.obs.tracer.clone()));

        // Participant role: ask each recorded coordinator what it decided.
        for snap in self.snapshots.prepared_undecided(min_age) {
            let qid = snap.qid.clone();
            // Recovery work re-enters the crashed transaction's trace: the
            // id is a pure function of the queryID, so spans emitted here
            // join the spans recorded before the crash.
            let mut span = self.obs.tracer.span(
                "recovery:inquire",
                TraceContext {
                    trace_id: trace_id_from(&qid.host, qid.timestamp_millis),
                    span_id: self.obs.tracer.next_span_id(),
                    parent_id: None,
                },
            );
            let key = (qid.host.clone(), qid.timestamp_millis);
            let coordinator = self
                .recovered_coordinators
                .lock()
                .get(&key)
                .cloned()
                .unwrap_or_else(|| qid.host.clone());
            span.tag("coordinator", &coordinator);
            let outcome = if coordinator == self.name() {
                // self-coordinated ∆ (an originator's local update):
                // answer the inquiry from our own decision map
                Some(self.coordinator_outcome(&qid))
            } else {
                client
                    .send_control_with_reply(&coordinator, METHOD_INQUIRE, &qid)
                    .ok()
                    .and_then(|resp| TxOutcome::from_response(&resp))
            };
            span.tag(
                "outcome",
                match outcome {
                    Some(o) => format!("{o:?}"),
                    None => "unreachable".into(),
                },
            );
            match outcome {
                Some(TxOutcome::Committed) => {
                    if !self.commit_recovered(&snap)? {
                        report.lsn_skips += 1;
                    }
                    report.resolved_committed += 1;
                    self.twopc_metrics
                        .recoveries
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some(TxOutcome::Aborted) => {
                    if let Some(w) = self.wal() {
                        w.append(&WalRecord::Decision {
                            qid: qid.clone(),
                            decision: Decision::Aborted,
                        })?;
                    }
                    self.snapshots.finish_with(&qid, Decision::Aborted);
                    report.resolved_aborted += 1;
                    self.twopc_metrics
                        .recoveries
                        .fetch_add(1, Ordering::Relaxed);
                }
                Some(TxOutcome::InDoubt) | None => report.still_in_doubt += 1,
            }
        }

        // Coordinator role: redeliver recovered commit decisions.
        let pending: Vec<(TxKey, RedeliverEntry)> = self
            .coord_redeliver
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let config = *self.twopc_config.read();
        for (key, (qid, parts)) in pending {
            let mut span = self.obs.tracer.span(
                "recovery:redeliver",
                TraceContext {
                    trace_id: trace_id_from(&qid.host, qid.timestamp_millis),
                    span_id: self.obs.tracer.next_span_id(),
                    parent_id: None,
                },
            );
            let own = self.name();
            let mut all_acked = true;
            for p in parts.iter().filter(|p| **p != own) {
                if twopc::deliver_decision(
                    &client,
                    p,
                    twopc::METHOD_COMMIT,
                    &qid,
                    &config,
                    Some(&self.twopc_metrics),
                )
                .is_err()
                {
                    all_acked = false;
                    self.twopc_metrics.hazards.fetch_add(1, Ordering::Relaxed);
                }
            }
            span.tag("delivered", if all_acked { "all" } else { "partial" });
            if all_acked {
                if let Some(w) = self.wal() {
                    w.append(&WalRecord::CoordinatorEnd { qid: qid.clone() })?;
                }
                self.coord_redeliver.lock().remove(&key);
                report.redelivered += 1;
                self.twopc_metrics
                    .recoveries
                    .fetch_add(1, Ordering::Relaxed);
            }
        }

        // Coordinator role: the re-abort sweep. Coordinations that died
        // before a durable decision are aborted by presumption already —
        // proactively re-tell the participants so their prepared ∆s (and
        // locks) release now instead of at their next inquiry.
        let pending: Vec<(TxKey, RedeliverEntry)> = self
            .coord_reabort
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (key, (qid, parts)) in pending {
            let mut span = self.obs.tracer.span(
                "recovery:reabort",
                TraceContext {
                    trace_id: trace_id_from(&qid.host, qid.timestamp_millis),
                    span_id: self.obs.tracer.next_span_id(),
                    parent_id: None,
                },
            );
            let own = self.name();
            let mut all_acked = true;
            for p in parts.iter().filter(|p| **p != own) {
                if twopc::deliver_decision(
                    &client,
                    p,
                    twopc::METHOD_ABORT,
                    &qid,
                    &config,
                    Some(&self.twopc_metrics),
                )
                .is_err()
                {
                    all_acked = false;
                }
            }
            span.tag("delivered", if all_acked { "all" } else { "partial" });
            if all_acked {
                if let Some(w) = self.wal() {
                    // unforced: the begin record it retires was advisory,
                    // and absence of a commit record is already the
                    // durable abort decision
                    let _ = w.append_nosync(&WalRecord::CoordinatorEnd { qid: qid.clone() });
                }
                self.coord_reabort.lock().remove(&key);
                report.reaborted += 1;
                self.twopc_metrics.reaborts.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(report)
    }

    /// Commit a recovered prepared snapshot: the decision/apply/applied
    /// discipline of the live `Commit` handler, driven by an inquiry
    /// answer instead of a decision message. Returns whether the ∆ was
    /// actually applied (`false` = the applied-LSN mark skipped it).
    fn commit_recovered(&self, snap: &Arc<QuerySnapshot>) -> XdmResult<bool> {
        let qid = &snap.qid;
        let mut applied = true;
        let mut decided = snap.decided.lock();
        if decided.is_none() {
            if let Some(w) = self.wal() {
                w.append(&WalRecord::Decision {
                    qid: qid.clone(),
                    decision: Decision::Committed,
                })?;
            }
            let pul = snap.pul.lock().clone();
            let mark = *snap.prepared_lsn.lock();
            applied = self.apply_pul_marked(&pul, qid, mark)?;
            *decided = Some(Decision::Committed);
            if let Some(w) = self.wal() {
                w.append(&WalRecord::Applied {
                    qid: qid.clone(),
                    mark: mark.unwrap_or(0),
                })?;
            }
            self.twopc_metrics.commits.fetch_add(1, Ordering::Relaxed);
        }
        drop(decided);
        self.snapshots.finish_with(qid, Decision::Committed);
        Ok(applied)
    }

    /// Start the background sweeper: every `interval` it re-resolves
    /// prepared transactions older than `min_age` and retries pending
    /// decision redeliveries. Holds only a weak reference, so it exits on
    /// its own when the peer is dropped; stop it earlier via the handle.
    pub fn start_recovery_sweeper(self: &Arc<Self>, config: SweeperConfig) -> SweeperHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let weak = Arc::downgrade(self);
        let flag = stop.clone();
        let handle = std::thread::spawn(move || loop {
            // sleep in short slices so stop/join stays responsive
            let mut slept = Duration::ZERO;
            while slept < config.interval {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                let step = config.interval.min(Duration::from_millis(20));
                std::thread::sleep(step);
                slept += step;
            }
            let Some(peer) = weak.upgrade() else { return };
            // a "crashed" peer (chaos harness) must not act post-mortem
            let down = peer
                .crash_switch
                .read()
                .as_ref()
                .is_some_and(|s| s.is_down());
            if !down {
                let _ = peer.resolve_in_doubt_older_than(config.min_age);
            }
        });
        SweeperHandle {
            stop,
            handle: Some(handle),
        }
    }
}
