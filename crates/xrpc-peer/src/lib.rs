//! The XRPC peer runtime — the integration layer that turns the substrate
//! crates into the distributed system of the paper:
//!
//! * [`peer::Peer`]: document store + module registry + engine choice
//!   (tree-walking or loop-lifted) + the XRPC request handler;
//! * [`client::XrpcClient`]: the outgoing SOAP XRPC dispatcher (the "stub
//!   code" of §3), propagating queryIDs and collecting the piggybacked
//!   participating-peer lists;
//! * [`store::SnapshotManager`]: repeatable-read isolation — per-queryID
//!   pinned snapshots with relative timeouts and expired-ID rejection
//!   (§2.2);
//! * [`twopc`]: the WS-AtomicTransaction-style Prepare/Commit/Abort
//!   protocol for atomic distributed updates (§2.3);
//! * [`wrapper::XrpcWrapper`]: the §4 wrapper that lets a plain XQuery
//!   engine service Bulk XRPC by *generating an XQuery query* per request
//!   (Figure 3), with per-phase timings for Table 3.

pub mod adaptive;
pub mod admin;
pub mod client;
pub mod modweb;
pub mod peer;
pub mod recovery;
pub mod remote_docs;
pub mod store;
pub mod twopc;
pub mod wal;
pub mod wrapper;

pub use adaptive::{AdaptiveBulk, AdaptiveSnapshot};
pub use admin::{admin_handler, bind_admin, render_healthz, render_metrics, ServerMetricsSlot};
pub use client::XrpcClient;
pub use modweb::ModuleWeb;
pub use peer::{
    EngineKind, ExecOutcome, IsolationLevel, Peer, PeerStats, PreparedQuery, QueryPlan,
};
pub use recovery::{RecoveryReport, SweeperConfig, SweeperHandle};
pub use remote_docs::RemoteDocResolver;
pub use store::{Decision, SnapshotManager};
pub use twopc::{
    run_two_phase_commit, run_two_phase_commit_with, CommitOutcome, TwoPcConfig, TwoPcMetrics,
    TwoPcSnapshot,
};
pub use wal::{FsyncPolicy, SequencedRecord, Wal, WalConfig, WalRecord, WalStats};
pub use wrapper::{WrapperPhases, XrpcWrapper};

/// Wall-clock milliseconds since the Unix epoch (the queryID timestamp).
pub fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}
