//! Repeatable-read isolation state (paper §2.2).
//!
//! A peer that receives a request tagged with a `queryID` pins an
//! immutable snapshot of its document store for that query — the
//! shadow-paging analog: documents are `Arc`s, so a snapshot is one map
//! clone. The snapshot lives until its *relative* timeout expires; expired
//! queryIDs are remembered (latest timestamp per origin host, exactly the
//! bookkeeping trick the paper describes) so that late requests get an
//! error instead of silently reading fresh state.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xdm::{XdmError, XdmResult};
use xmldom::Document;
use xqeval::context::DocResolver;
use xqeval::pul::PendingUpdateList;
use xrpc_proto::QueryId;

/// The 2PC outcome a participant recorded for a finished query. Retained
/// (bounded) so redelivered Commit/Abort control messages — the decision
/// retry path of the hardened coordinator — can be answered idempotently
/// instead of erroring on the missing snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    Committed,
    Aborted,
}

/// How many finished-query decisions a peer remembers for redelivery.
const COMPLETED_CAP: usize = 4096;

/// Per-query isolated state at one peer.
pub struct QuerySnapshot {
    /// The query this snapshot isolates. `qid.host` doubles as the
    /// coordinator address a recovering participant sends `Inquire` to.
    pub qid: QueryId,
    pub docs: HashMap<String, Arc<Document>>,
    pub deadline: Instant,
    /// Deferred pending update lists (rule R'Fu): ∆_q = ∪ ∆_q(i).
    pub pul: Mutex<PendingUpdateList>,
    /// 2PC state: set by Prepare after the PUL was logged to the WAL.
    pub prepared: Mutex<bool>,
    /// LSN of the WAL `Prepared` record holding this snapshot's ∆_q. The
    /// applied-LSN mark the store keeps per transaction is compared
    /// against it, which makes applying the ∆ idempotent across
    /// redelivery and replay.
    pub prepared_lsn: Mutex<Option<u64>>,
    /// When `prepared` was set — the recovery sweeper only re-inquires
    /// about prepared transactions older than its configured age.
    pub prepared_at: Mutex<Option<Instant>>,
    /// Set exactly once when the decision is first applied; guards against
    /// double-applying ∆_q when a Commit is redelivered concurrently.
    pub decided: Mutex<Option<Decision>>,
    /// Deferred-update requests whose ∆ was already merged into
    /// [`pul`](Self::pul), keyed by request hash and mapped to the
    /// participating-peer set of the original response — the at-most-once
    /// guard that makes transport redelivery of deferred updates safe (a
    /// double merge would either double-insert or trip XQUF compatibility
    /// at Prepare). Recorded only after the merge *succeeded*, so a
    /// redelivered request that previously faulted re-evaluates instead of
    /// being masked as success; the stored peer set lets the replayed
    /// response carry the same 2PC participants the lost original did.
    pub merged_requests: Mutex<HashMap<u64, Vec<String>>>,
}

impl QuerySnapshot {
    /// A resolver view over this snapshot.
    pub fn resolver(self: &Arc<Self>) -> Arc<SnapshotResolver> {
        Arc::new(SnapshotResolver {
            snapshot: self.clone(),
        })
    }
}

/// `fn:doc` resolution pinned to a snapshot.
pub struct SnapshotResolver {
    snapshot: Arc<QuerySnapshot>,
}

impl DocResolver for SnapshotResolver {
    fn resolve(&self, uri: &str) -> XdmResult<Arc<Document>> {
        self.snapshot
            .docs
            .get(uri)
            .cloned()
            .ok_or_else(|| XdmError::doc_error(format!("document not found in snapshot: `{uri}`")))
    }
}

type QidKey = (String, u64);

/// All isolated query states at one peer.
pub struct SnapshotManager {
    active: Mutex<HashMap<QidKey, Arc<QuerySnapshot>>>,
    /// host → latest *expired* origin timestamp (paper: "per host only the
    /// latest timestamp needs to be retained").
    expired: Mutex<HashMap<String, u64>>,
    /// Decisions of finished queries, FIFO-bounded at [`COMPLETED_CAP`].
    completed: Mutex<(HashMap<QidKey, Decision>, VecDeque<QidKey>)>,
}

impl SnapshotManager {
    pub fn new() -> Self {
        SnapshotManager {
            active: Mutex::new(HashMap::new()),
            expired: Mutex::new(HashMap::new()),
            completed: Mutex::new((HashMap::new(), VecDeque::new())),
        }
    }

    fn key(qid: &QueryId) -> QidKey {
        (qid.host.clone(), qid.timestamp_millis)
    }

    /// Get (or pin, on the query's first request here) the snapshot for
    /// `qid`. `current` supplies the database state to pin.
    pub fn get_or_pin(
        &self,
        qid: &QueryId,
        current: impl FnOnce() -> HashMap<String, Arc<Document>>,
    ) -> XdmResult<Arc<QuerySnapshot>> {
        self.gc();
        let key = Self::key(qid);
        // Too late? (the queryID already expired here)
        if let Some(&latest) = self.expired.lock().get(&qid.host) {
            if qid.timestamp_millis <= latest && !self.active.lock().contains_key(&key) {
                return Err(XdmError::xrpc_expired(format!(
                    "queryID {}@{} has expired at this peer",
                    qid.host, qid.timestamp_millis
                )));
            }
        }
        let mut active = self.active.lock();
        if let Some(s) = active.get(&key) {
            return Ok(s.clone());
        }
        let snapshot = Arc::new(QuerySnapshot {
            qid: qid.clone(),
            docs: current(),
            deadline: Instant::now() + Duration::from_secs(qid.timeout_secs as u64),
            pul: Mutex::new(PendingUpdateList::new()),
            prepared: Mutex::new(false),
            prepared_lsn: Mutex::new(None),
            prepared_at: Mutex::new(None),
            decided: Mutex::new(None),
            merged_requests: Mutex::new(HashMap::new()),
        });
        active.insert(key, snapshot.clone());
        Ok(snapshot)
    }

    /// Re-enter prepared state for `qid` from a recovered WAL record: pin
    /// a snapshot over `docs` carrying the deserialized ∆_q with
    /// `prepared` already set. Used only by restart recovery — it bypasses
    /// the expired-queryID check (the log is authoritative: this peer
    /// promised to hold the ∆ until a decision arrives) and gives the
    /// snapshot a fresh deadline window for the inquiry to resolve in.
    pub fn restore_prepared(
        &self,
        qid: &QueryId,
        docs: HashMap<String, Arc<Document>>,
        pul: PendingUpdateList,
        prepared_lsn: Option<u64>,
    ) -> Arc<QuerySnapshot> {
        let snapshot = Arc::new(QuerySnapshot {
            qid: qid.clone(),
            docs,
            deadline: Instant::now() + Duration::from_secs(qid.timeout_secs as u64),
            pul: Mutex::new(pul),
            prepared: Mutex::new(true),
            prepared_lsn: Mutex::new(prepared_lsn),
            prepared_at: Mutex::new(Some(Instant::now())),
            decided: Mutex::new(None),
            merged_requests: Mutex::new(HashMap::new()),
        });
        self.active.lock().insert(Self::key(qid), snapshot.clone());
        snapshot
    }

    /// Snapshots that are prepared but have heard no decision for at least
    /// `min_age` — the in-doubt transactions the sweeper re-inquires about.
    pub fn prepared_undecided(&self, min_age: Duration) -> Vec<Arc<QuerySnapshot>> {
        self.active
            .lock()
            .values()
            .filter(|s| {
                *s.prepared.lock()
                    && s.decided.lock().is_none()
                    && s.prepared_at.lock().is_some_and(|t| t.elapsed() >= min_age)
            })
            .cloned()
            .collect()
    }

    /// Fetch an existing snapshot (2PC Prepare/Commit path — never pins).
    pub fn get(&self, qid: &QueryId) -> XdmResult<Arc<QuerySnapshot>> {
        self.active
            .lock()
            .get(&Self::key(qid))
            .cloned()
            .ok_or_else(|| {
                XdmError::xrpc_expired(format!(
                    "no isolated state for queryID {}@{}",
                    qid.host, qid.timestamp_millis
                ))
            })
    }

    /// Drop a query's state (after Commit/Abort), remembering it as seen.
    /// Records an Aborted decision — use [`finish_with`](Self::finish_with)
    /// on the commit path.
    pub fn finish(&self, qid: &QueryId) {
        self.finish_with(qid, Decision::Aborted);
    }

    /// Drop a query's state, recording `decision` for idempotent replies
    /// to redelivered control messages.
    pub fn finish_with(&self, qid: &QueryId, decision: Decision) {
        let key = Self::key(qid);
        self.active.lock().remove(&key);
        {
            let mut expired = self.expired.lock();
            let e = expired.entry(qid.host.clone()).or_insert(0);
            *e = (*e).max(qid.timestamp_millis);
        }
        let mut completed = self.completed.lock();
        let (map, order) = &mut *completed;
        if map.insert(key.clone(), decision).is_none() {
            order.push_back(key);
            while order.len() > COMPLETED_CAP {
                if let Some(old) = order.pop_front() {
                    map.remove(&old);
                }
            }
        }
    }

    /// The recorded decision for a finished query, if still remembered.
    pub fn completed_decision(&self, qid: &QueryId) -> Option<Decision> {
        self.completed.lock().0.get(&Self::key(qid)).copied()
    }

    /// Expire snapshots whose timeout passed, freeing their resources.
    /// Prepared-but-undecided snapshots are exempt: a participant that
    /// acknowledged Prepare promised to hold its ∆_q until the coordinator
    /// decides (or an inquiry resolves it) — dropping it on timeout could
    /// silently lose a committed update. That blocking is the price of 2PC.
    pub fn gc(&self) {
        let now = Instant::now();
        let mut active = self.active.lock();
        let dead: Vec<QidKey> = active
            .iter()
            .filter(|(_, s)| {
                s.deadline <= now && !(*s.prepared.lock() && s.decided.lock().is_none())
            })
            .map(|(k, _)| k.clone())
            .collect();
        if dead.is_empty() {
            return;
        }
        let mut expired = self.expired.lock();
        for k in dead {
            active.remove(&k);
            let e = expired.entry(k.0.clone()).or_insert(0);
            *e = (*e).max(k.1);
        }
    }

    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }
}

impl Default for SnapshotManager {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::parse;

    fn docs_v(label: &str) -> HashMap<String, Arc<Document>> {
        let mut m = HashMap::new();
        m.insert(
            "db.xml".to_string(),
            Arc::new(parse(&format!("<v>{label}</v>")).unwrap()),
        );
        m
    }

    fn qid(ts: u64, timeout: u32) -> QueryId {
        QueryId::new("origin.example.org", ts, timeout)
    }

    #[test]
    fn snapshot_pinned_on_first_request() {
        let mgr = SnapshotManager::new();
        let q = qid(100, 30);
        let s1 = mgr.get_or_pin(&q, || docs_v("one")).unwrap();
        // second request of the same query must NOT re-pin
        let s2 = mgr.get_or_pin(&q, || docs_v("two")).unwrap();
        assert!(Arc::ptr_eq(&s1, &s2));
        let d = s2.resolver().resolve("db.xml").unwrap();
        assert_eq!(d.string_value(d.root()), "one");
    }

    #[test]
    fn different_queries_get_different_snapshots() {
        let mgr = SnapshotManager::new();
        let s1 = mgr.get_or_pin(&qid(1, 30), || docs_v("a")).unwrap();
        let s2 = mgr.get_or_pin(&qid(2, 30), || docs_v("b")).unwrap();
        assert!(!Arc::ptr_eq(&s1, &s2));
        assert_eq!(mgr.active_count(), 2);
    }

    #[test]
    fn finished_query_id_rejected_later() {
        let mgr = SnapshotManager::new();
        let q = qid(100, 30);
        mgr.get_or_pin(&q, || docs_v("x")).unwrap();
        mgr.finish(&q);
        let err = mgr.get_or_pin(&q, || docs_v("y")).map(|_| ()).unwrap_err();
        assert_eq!(err.code, "XRPC0002");
        // an *older* query from the same host is also rejected
        let err2 = mgr
            .get_or_pin(&qid(50, 30), || docs_v("z"))
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err2.code, "XRPC0002");
        // but a newer one is fine
        assert!(mgr.get_or_pin(&qid(200, 30), || docs_v("w")).is_ok());
    }

    #[test]
    fn timeout_expires_snapshot() {
        let mgr = SnapshotManager::new();
        let q = qid(100, 0); // zero-second timeout: expires immediately
        mgr.get_or_pin(&q, || docs_v("x")).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        mgr.gc();
        assert_eq!(mgr.active_count(), 0);
        let err = mgr.get_or_pin(&q, || docs_v("y")).map(|_| ()).unwrap_err();
        assert_eq!(err.code, "XRPC0002");
    }

    #[test]
    fn snapshot_isolated_from_store_updates() {
        let mgr = SnapshotManager::new();
        let q = qid(100, 30);
        let s = mgr.get_or_pin(&q, || docs_v("before")).unwrap();
        // the "store" moves on; the snapshot must not
        let d = s.resolver().resolve("db.xml").unwrap();
        assert_eq!(d.string_value(d.root()), "before");
        assert!(s.resolver().resolve("other.xml").is_err());
    }

    #[test]
    fn get_without_pin_fails() {
        let mgr = SnapshotManager::new();
        assert_eq!(
            mgr.get(&qid(1, 30)).map(|_| ()).unwrap_err().code,
            "XRPC0002"
        );
    }

    #[test]
    fn decision_remembered_after_finish() {
        let mgr = SnapshotManager::new();
        let q = qid(100, 30);
        mgr.get_or_pin(&q, || docs_v("x")).unwrap();
        assert_eq!(mgr.completed_decision(&q), None);
        mgr.finish_with(&q, Decision::Committed);
        assert_eq!(mgr.completed_decision(&q), Some(Decision::Committed));
        // plain finish records an abort
        let q2 = qid(200, 30);
        mgr.get_or_pin(&q2, || docs_v("y")).unwrap();
        mgr.finish(&q2);
        assert_eq!(mgr.completed_decision(&q2), Some(Decision::Aborted));
    }

    #[test]
    fn completed_map_is_bounded() {
        let mgr = SnapshotManager::new();
        for ts in 0..(super::COMPLETED_CAP as u64 + 10) {
            mgr.finish_with(&qid(ts, 30), Decision::Committed);
        }
        // the oldest entries were evicted, the newest retained
        assert_eq!(mgr.completed_decision(&qid(0, 30)), None);
        assert_eq!(
            mgr.completed_decision(&qid(super::COMPLETED_CAP as u64 + 9, 30)),
            Some(Decision::Committed)
        );
    }
}
