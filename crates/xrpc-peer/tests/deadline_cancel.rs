//! Deadline propagation and cooperative cancellation, end to end:
//! `xrpc:timeout` becomes a budget carried in the SOAP envelope,
//! decremented at every hop, enforced cooperatively inside the
//! evaluator, and reconciled with 2PC's point of no return.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xrpc_net::{NetProfile, SimNetwork, SoapHandler};
use xrpc_peer::{EngineKind, FsyncPolicy, Peer};

const TEST_MODULE: &str = r#"
    module namespace t = "test";
    declare function t:get() { string(doc("state.xml")/v) };
    declare updating function t:set($x as xs:string)
    { replace value of node doc("state.xml")/v with $x };
"#;

/// A pure spin: the where clause never holds, so nothing accumulates and
/// the loop body is all checkpoint-visible iteration.
const SPIN: &str = r#"count(for $i in (1 to 1000000)
                            for $j in (1 to 1000000)
                            where $i + $j lt 0 return 1)"#;

static RUN_ID: AtomicU64 = AtomicU64::new(0);

fn wal_path(tag: &str) -> std::path::PathBuf {
    let run = RUN_ID.fetch_add(1, Relaxed);
    std::env::temp_dir().join(format!(
        "xrpc-deadline-{}-{tag}-{run}.wal",
        std::process::id()
    ))
}

// ---------------------------------------------------------------------
// xrpc:timeout parsing: 0 = explicitly no deadline, junk is rejected
// ---------------------------------------------------------------------

#[test]
fn timeout_zero_means_no_deadline() {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new("xrpc://a", EngineKind::Tree);
    let b = Peer::new("xrpc://b", EngineKind::Tree);
    for p in [&a, &b] {
        p.register_module(TEST_MODULE).unwrap();
        p.set_transport(net.clone());
    }
    b.add_document("state.xml", "<v>initial</v>").unwrap();
    net.register("xrpc://b", b.soap_handler());

    // an isolated (snapshot-pinning) query with timeout 0 still works:
    // the execution budget is unlimited, while the snapshot window falls
    // back to a generous default instead of the instantly-expired 0.
    let out = a
        .execute_detailed(
            r#"declare option xrpc:timeout "0";
               declare option xrpc:isolation "repeatable";
               import module namespace t = "test";
               execute at {"xrpc://b"} {t:get()}"#,
        )
        .unwrap();
    assert_eq!(out.result.items()[0].string_value(), "initial");
}

#[test]
fn malformed_timeout_values_are_typed_errors() {
    let p = Peer::new("xrpc://solo", EngineKind::Tree);
    for bad in ["abc", "1.5", "-3", ""] {
        let err = p
            .execute(&format!("declare option xrpc:timeout \"{bad}\"; 1"))
            .unwrap_err();
        assert_eq!(err.code, "XRPC0001", "{bad}: {err}");
        assert!(err.message.contains("xrpc:timeout"), "{bad}: {err}");
    }
    // beyond u32 seconds: rejected, not silently clamped
    let err = p
        .execute("declare option xrpc:timeout \"99999999999\"; 1")
        .unwrap_err();
    assert_eq!(err.code, "XRPC0001");
    assert!(err.message.contains("exceeds"), "{err}");
}

// ---------------------------------------------------------------------
// Cooperative enforcement in the evaluator
// ---------------------------------------------------------------------

#[test]
fn spinning_query_hits_deadline_while_peer_keeps_serving() {
    let p = Peer::new("xrpc://solo", EngineKind::Tree);
    let spinner = {
        let p = p.clone();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let err = p
                .execute(&format!("declare option xrpc:timeout \"1\";\n{SPIN}"))
                .unwrap_err();
            (err, t0.elapsed())
        })
    };
    // while one worker burns its budget, the peer keeps answering
    std::thread::sleep(Duration::from_millis(200));
    for _ in 0..5 {
        let r = p.execute("1 + 1").unwrap();
        assert_eq!(r.items()[0].string_value(), "2");
    }
    let (err, elapsed) = spinner.join().unwrap();
    assert_eq!(err.code, "XRPC0004", "{err}");
    assert!(
        elapsed >= Duration::from_millis(900),
        "cancelled before the deadline: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation latency way over budget: {elapsed:?}"
    );
}

#[test]
fn rel_engine_spinning_query_hits_deadline() {
    let p = Peer::new("xrpc://solo", EngineKind::Rel);
    let t0 = Instant::now();
    let err = p
        .execute(&format!("declare option xrpc:timeout \"1\";\n{SPIN}"))
        .unwrap_err();
    assert_eq!(err.code, "XRPC0004", "{err}");
    assert!(t0.elapsed() < Duration::from_secs(5), "{:?}", t0.elapsed());
}

// ---------------------------------------------------------------------
// Budget propagation across hops
// ---------------------------------------------------------------------

/// Wrap a peer's SOAP handler to record the `remainingMillis` budget of
/// every request it receives.
fn record_budget(h: SoapHandler, sink: Arc<Mutex<Vec<u64>>>) -> SoapHandler {
    Arc::new(move |bytes: &[u8]| {
        let s = std::str::from_utf8(bytes).unwrap();
        if let Some(pos) = s.find("remainingMillis=\"") {
            let rest = &s[pos + "remainingMillis=\"".len()..];
            let end = rest.find('"').unwrap();
            sink.lock().unwrap().push(rest[..end].parse().unwrap());
        }
        h(bytes)
    })
}

#[test]
fn budget_shrinks_strictly_across_three_nested_hops() {
    // a → b → c → d, each middle hop burning measurable local time: every
    // peer must see strictly less remaining budget than the one before.
    let net = Arc::new(SimNetwork::new(NetProfile::with_latency(
        Duration::from_millis(5),
    )));
    let chain = r#"
        module namespace ch = "chain";
        declare function ch:leaf() { "leaf" };
        declare function ch:mid2()
        { (count(for $i in (1 to 400000) where $i lt 0 return 1),
           execute at {"xrpc://d"} {ch:leaf()}) };
        declare function ch:mid1()
        { (count(for $i in (1 to 400000) where $i lt 0 return 1),
           execute at {"xrpc://c"} {ch:mid2()}) };
    "#;
    let a = Peer::new("xrpc://a", EngineKind::Tree);
    let budgets = Arc::new(Mutex::new(Vec::new()));
    a.register_module(chain).unwrap();
    a.set_transport(net.clone());
    for name in ["xrpc://b", "xrpc://c", "xrpc://d"] {
        let p = Peer::new(name, EngineKind::Tree);
        p.register_module(chain).unwrap();
        p.set_transport(net.clone());
        net.register(name, record_budget(p.soap_handler(), budgets.clone()));
    }

    let res = a
        .execute(
            r#"declare option xrpc:timeout "30";
               import module namespace ch = "chain";
               execute at {"xrpc://b"} {ch:mid1()}"#,
        )
        .unwrap();
    assert_eq!(res.items().last().unwrap().string_value(), "leaf");

    let seen = budgets.lock().unwrap().clone();
    assert_eq!(
        seen.len(),
        3,
        "three hops must each carry a budget: {seen:?}"
    );
    assert!(
        seen[0] > seen[1] && seen[1] > seen[2],
        "remaining budget must strictly shrink along the chain: {seen:?}"
    );
    assert!(seen[0] <= 30_000, "{seen:?}");
}

#[test]
fn exhausted_budget_rejected_on_arrival_without_evaluation() {
    let b = Peer::new("xrpc://b", EngineKind::Tree);
    b.register_module(TEST_MODULE).unwrap();
    b.add_document("state.xml", "<v>initial</v>").unwrap();

    let mut req = xrpc_proto::XrpcRequest::new("test", "get", 0);
    req.budget_millis = Some(0);
    req.push_call(vec![]);
    let r = String::from_utf8(b.handle_soap(req.to_xml().unwrap().as_bytes())).unwrap();
    assert!(r.contains("XRPC0004"), "{r}");
    // rejected before any evaluation work: the function was never prepared
    assert_eq!(b.stats.functions_prepared.load(Relaxed), 0);

    // same request with room to spare goes through
    req.budget_millis = Some(60_000);
    let r = String::from_utf8(b.handle_soap(req.to_xml().unwrap().as_bytes())).unwrap();
    assert!(r.contains("initial"), "{r}");
}

// ---------------------------------------------------------------------
// Cancel control message and the 2PC point of no return
// ---------------------------------------------------------------------

fn control(method: &str, qid: &xrpc_proto::QueryId) -> Vec<u8> {
    let mut req = xrpc_proto::XrpcRequest::new(xrpc_peer::twopc::WSAT_MODULE, method, 0)
        .with_query_id(qid.clone());
    req.push_call(vec![]);
    req.to_xml().unwrap().into_bytes()
}

fn deferred_set(qid: &xrpc_proto::QueryId, value: &str) -> Vec<u8> {
    let mut req = xrpc_proto::XrpcRequest::new("test", "set", 1).with_query_id(qid.clone());
    req.deferred = true;
    req.push_call(vec![xdm::Sequence::one(xdm::Item::string(value))]);
    req.to_xml().unwrap().into_bytes()
}

#[test]
fn cancel_before_prepare_aborts_cleanly() {
    let b = Peer::new("xrpc://b", EngineKind::Tree);
    b.register_module(TEST_MODULE).unwrap();
    b.add_document("state.xml", "<v>initial</v>").unwrap();
    let path = wal_path("pre-prepare");
    b.attach_wal(&path, FsyncPolicy::Never).unwrap();

    let qid = xrpc_proto::QueryId::new("origin", 1111, 30);
    let r = String::from_utf8(b.handle_soap(&deferred_set(&qid, "doomed"))).unwrap();
    assert!(r.contains("response"), "{r}");
    assert_eq!(b.snapshots.active_count(), 1);

    // originator's budget ran out before Prepare: Cancel releases the
    // snapshot and drops the deferred ∆ — nothing was promised yet.
    let r = String::from_utf8(b.handle_soap(&control("Cancel", &qid))).unwrap();
    assert!(r.contains("response"), "{r}");
    assert_eq!(b.snapshots.active_count(), 0, "snapshot must be released");
    assert_eq!(b.twopc_metrics.cancels.load(Relaxed), 1);
    let v = b.docs.get("state.xml").unwrap();
    assert_eq!(v.string_value(v.root()), "initial", "∆ must not apply");
    // nothing prepared, nothing for recovery to resolve
    assert_eq!(b.wal().unwrap().open_transactions(), 0);

    // Cancel is idempotent: a duplicate is acknowledged, not an error
    let r = String::from_utf8(b.handle_soap(&control("Cancel", &qid))).unwrap();
    assert!(r.contains("response"), "{r}");

    let _ = std::fs::remove_dir_all(&path);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cancel_after_promise_is_ignored_and_decision_settles() {
    let b = Peer::new("xrpc://b", EngineKind::Tree);
    b.register_module(TEST_MODULE).unwrap();
    b.add_document("state.xml", "<v>initial</v>").unwrap();
    let path = wal_path("post-promise");
    b.attach_wal(&path, FsyncPolicy::Never).unwrap();

    let qid = xrpc_proto::QueryId::new("origin", 2222, 30);
    let r = String::from_utf8(b.handle_soap(&deferred_set(&qid, "committed"))).unwrap();
    assert!(r.contains("response"), "{r}");

    // the participant promises: Prepared is WAL-forced
    let r = String::from_utf8(b.handle_soap(&control("Prepare", &qid))).unwrap();
    assert!(r.contains("response"), "{r}");
    assert_eq!(b.wal().unwrap().open_transactions(), 1);

    // past the point of no return: Cancel is acknowledged but must NOT
    // release the prepared ∆ — only the decision protocol settles it
    let r = String::from_utf8(b.handle_soap(&control("Cancel", &qid))).unwrap();
    assert!(r.contains("response"), "{r}");
    assert_eq!(
        b.snapshots.active_count(),
        1,
        "a prepared snapshot must survive Cancel"
    );
    assert_eq!(
        b.wal().unwrap().open_transactions(),
        1,
        "the WAL promise must stand"
    );

    // the decision arrives and the ∆ applies exactly as promised
    let r = String::from_utf8(b.handle_soap(&control("Commit", &qid))).unwrap();
    assert!(r.contains("response"), "{r}");
    let v = b.docs.get("state.xml").unwrap();
    assert_eq!(v.string_value(v.root()), "committed");
    assert_eq!(b.snapshots.active_count(), 0);
    assert_eq!(b.wal().unwrap().open_transactions(), 0, "decision logged");

    let _ = std::fs::remove_dir_all(&path);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn originator_deadline_mid_query_fans_out_cancel() {
    // The originator's own budget expires while remote ∆s are already
    // merged at a participant: the abort must fan a Cancel out so the
    // participant releases its snapshot instead of waiting out the
    // snapshot window.
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new("xrpc://a", EngineKind::Tree);
    let b = Peer::new("xrpc://b", EngineKind::Tree);
    for p in [&a, &b] {
        p.register_module(TEST_MODULE).unwrap();
        p.set_transport(net.clone());
    }
    b.add_document("state.xml", "<v>initial</v>").unwrap();
    net.register("xrpc://b", b.soap_handler());

    let err = a
        .execute(&format!(
            r#"declare option xrpc:isolation "repeatable";
               declare option xrpc:timeout "1";
               import module namespace t = "test";
               (execute at {{"xrpc://b"}} {{t:set("doomed")}}, {SPIN})"#
        ))
        .unwrap_err();
    assert_eq!(err.code, "XRPC0004", "{err}");

    // the Cancel reached b: snapshot released, ∆ dropped, never applied
    assert_eq!(b.twopc_metrics.cancels.load(Relaxed), 1);
    assert_eq!(b.snapshots.active_count(), 0);
    let v = b.docs.get("state.xml").unwrap();
    assert_eq!(v.string_value(v.root()), "initial");
}
