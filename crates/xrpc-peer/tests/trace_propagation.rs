//! End-to-end distributed tracing tests: a three-peer chain
//! (originator → a → b via nested `execute at`) must yield ONE coherent
//! trace — a single trace id on every span at every peer, with
//! parent/child links crossing the wire through the SOAP envelope's
//! `<xrpc:trace/>` header — and injected faults must surface as typed
//! `net_error` tags on the client call span.

use std::sync::Arc;
use std::time::Duration;
use xrpc_net::{BreakerConfig, NetProfile, RetryPolicy, SimFault, SimNetwork};
use xrpc_obs::FinishedSpan;
use xrpc_peer::{EngineKind, Peer};

const O_URI: &str = "xrpc://origin.example.org";
const A_URI: &str = "xrpc://a.example.org";
const B_URI: &str = "xrpc://b.example.org";

const TRACE_MODULE: &str = r#"
    module namespace t = "test";
    declare function t:ping() { "pong" };
    declare updating function t:addEntry($x as xs:string)
    { insert node <e>{$x}</e> into doc("log.xml")/log };
    declare updating function t:addCascade($x as xs:string)
    { execute at {"xrpc://b.example.org"} {t:addEntry($x)} };
"#;

struct Cluster {
    net: Arc<SimNetwork>,
    o: Arc<Peer>,
    a: Arc<Peer>,
    b: Arc<Peer>,
}

fn fast_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        call_deadline: Duration::from_secs(5),
        jitter_seed: 42,
    }
}

fn cluster(max_attempts: u32) -> Cluster {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let o = Peer::new(O_URI, EngineKind::Tree);
    let a = Peer::new(A_URI, EngineKind::Tree);
    let b = Peer::new(B_URI, EngineKind::Tree);
    for p in [&o, &a, &b] {
        p.register_module(TRACE_MODULE).unwrap();
        p.set_transport_with(
            net.clone(),
            fast_policy(max_attempts),
            BreakerConfig::default(),
        );
    }
    for p in [&a, &b] {
        p.add_document("log.xml", "<log/>").unwrap();
    }
    net.register(A_URI, a.soap_handler());
    net.register(B_URI, b.soap_handler());
    Cluster { net, o, a, b }
}

fn span_named<'s>(spans: &'s [FinishedSpan], name: &str) -> &'s FinishedSpan {
    spans
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("expected a `{name}` span in {spans:#?}"))
}

/// Walk `child`'s parent links (within one peer's spans) and check they
/// reach `ancestor` — intermediate spans (e.g. `xqeval:evaluate`) may
/// sit between a client call and the request root.
fn descends_from(spans: &[FinishedSpan], child: &FinishedSpan, ancestor: u64) -> bool {
    let mut cur = child.parent_id;
    for _ in 0..spans.len() + 1 {
        match cur {
            None => return false,
            Some(p) if p == ancestor => return true,
            Some(p) => {
                cur = spans
                    .iter()
                    .find(|s| s.span_id == p)
                    .and_then(|s| s.parent_id)
            }
        }
    }
    false
}

/// Originator → a → b through a nested updating `execute at`: every span
/// at every peer carries the originator's trace id, and the parent/child
/// chain is unbroken across both wire hops.
#[test]
fn nested_execute_chain_shares_one_trace() {
    let cl = cluster(2);
    cl.o.execute(
        r#"declare option xrpc:isolation "repeatable";
           import module namespace t = "test";
           execute at {"xrpc://a.example.org"} {t:addCascade("x")}"#,
    )
    .unwrap();

    let o_spans = cl.o.obs.tracer.finished();
    let root = span_named(&o_spans, "execute");
    let trace = root.trace_id;
    assert!(root.parent_id.is_none(), "execute is the trace root");

    // every span every peer recorded for this call belongs to one trace
    for (who, tracer) in [
        ("originator", &cl.o.obs.tracer),
        ("a", &cl.a.obs.tracer),
        ("b", &cl.b.obs.tracer),
    ] {
        let spans = tracer.finished();
        assert!(!spans.is_empty(), "{who} recorded no spans");
        for s in &spans {
            assert_eq!(
                s.trace_id, trace,
                "{who} span `{}` escaped the trace: {s:#?}",
                s.name
            );
        }
    }

    // hop 1: originator's client call is a child of its execute root,
    // and a's server span is a child of that client call (the context
    // crossed the wire in the envelope header)
    let o_call = o_spans
        .iter()
        .find(|s| s.name == "client:call" && s.tag("dest") == Some(A_URI))
        .expect("originator client:call to a");
    assert!(
        descends_from(&o_spans, o_call, root.span_id),
        "client:call must descend from the execute root"
    );

    let a_spans = cl.a.obs.tracer.finished();
    let a_handle = a_spans
        .iter()
        .find(|s| s.name == "server:handle" && s.tag("method") == Some("addCascade"))
        .expect("a's server:handle for the cascade call");
    assert_eq!(
        a_handle.parent_id,
        Some(o_call.span_id),
        "server span must be parented to the remote client span"
    );

    // hop 2: a's nested client call (child of its server span) parents
    // b's server span
    let a_call = a_spans
        .iter()
        .find(|s| s.name == "client:call" && s.tag("dest") == Some(B_URI))
        .expect("a's nested client:call to b");
    assert!(
        descends_from(&a_spans, a_call, a_handle.span_id),
        "nested client:call must descend from a's server span"
    );

    let b_spans = cl.b.obs.tracer.finished();
    let b_handle = b_spans
        .iter()
        .find(|s| s.name == "server:handle" && s.tag("method") == Some("addEntry"))
        .expect("b's server:handle for the leaf call");
    assert_eq!(b_handle.parent_id, Some(a_call.span_id));

    // the engine's evaluation span (full-query path at the originator)
    // joins the same trace, nested under the execute root
    let o_eval = span_named(&o_spans, "xqeval:evaluate");
    assert_eq!(o_eval.trace_id, trace);
    assert_eq!(o_eval.parent_id, Some(root.span_id));

    // the 2PC epilogue joined the same trace: both participants ran
    // prepare and commit under the originator's trace id
    for spans in [&a_spans, &b_spans] {
        assert_eq!(span_named(spans, "2pc:prepare").trace_id, trace);
        assert_eq!(span_named(spans, "2pc:commit").trace_id, trace);
    }
    assert_eq!(span_named(&o_spans, "2pc:prepare-phase").trace_id, trace);
    assert_eq!(span_named(&o_spans, "2pc:decision-phase").trace_id, trace);
}

/// A dropped request (with a one-attempt policy, so the transport cannot
/// absorb it) must tag the client call span with the *typed* error kind
/// the transport classified — not a stringly wrapped mess.
#[test]
fn dropped_request_tags_typed_net_error() {
    let cl = cluster(1);
    cl.net.inject_fault(A_URI, SimFault::DropRequest);
    let err =
        cl.o.execute(
            r#"import module namespace t = "test";
               execute at {"xrpc://a.example.org"} {t:ping()}"#,
        )
        .unwrap_err();
    assert!(err.message.contains("failed"), "{err}");

    let spans = cl.o.obs.tracer.finished();
    let call = spans
        .iter()
        .find(|s| s.name == "client:call")
        .expect("client:call span recorded despite the failure");
    assert_eq!(
        call.tag("net_error"),
        Some("Timeout"),
        "a dropped request classifies as a timeout: {call:#?}"
    );
    assert_eq!(call.tag("dest"), Some(A_URI));
}

/// Latency histograms fill as a side effect of the instrumented call
/// path — the client side records call latency (total and per-dest) and
/// message bytes; the server side records handling time and batch size.
#[test]
fn call_path_fills_latency_histograms() {
    let cl = cluster(2);
    for _ in 0..5 {
        cl.o.execute(
            r#"import module namespace t = "test";
               execute at {"xrpc://a.example.org"} {t:ping()}"#,
        )
        .unwrap();
    }
    let lat = cl.o.obs.histogram("xrpc_call_latency_micros").snapshot();
    assert_eq!(lat.count, 5);
    assert!(lat.p99 >= lat.p50);
    let by_dest =
        cl.o.obs
            .histogram_vec("xrpc_call_latency_by_dest_micros", "dest")
            .with_label(A_URI)
            .snapshot();
    assert_eq!(by_dest.count, 5);
    assert!(
        cl.o.obs.histogram("xrpc_message_bytes").snapshot().count >= 5,
        "outgoing message sizes recorded"
    );
    let handle = cl.a.obs.histogram("xrpc_server_handle_micros").snapshot();
    assert_eq!(handle.count, 5);
    let batch = cl.a.obs.histogram("xrpc_bulk_batch_calls").snapshot();
    assert_eq!(batch.count, 5);
    assert_eq!(batch.max, 1, "each request carried a single call");
}
