//! Plan-cache behavior: hit/miss accounting, invalidation on module and
//! static-context changes, the prepared-query API, the fidelity mode, and
//! a seeded property test that cache keys never collide across distinct
//! queries or distinct static contexts.

use std::collections::HashSet;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use xdm::{Item, Sequence};
use xrpc_peer::{EngineKind, Peer};

fn serialize(seq: &Sequence) -> String {
    seq.iter()
        .map(|i| match i {
            Item::Node(n) => n.to_xml(),
            a => a.string_value(),
        })
        .collect::<Vec<_>>()
        .join("|")
}

fn peer_with_data(engine: EngineKind) -> Arc<Peer> {
    let p = Peer::new("xrpc://solo.example.org", engine);
    p.add_document("data.xml", "<v>root</v>").unwrap();
    p.add_document("app/data.xml", "<v>scoped</v>").unwrap();
    p.add_document(
        "people.xml",
        r#"<site><person id="p0"><name>Ann</name></person>
           <person id="p1"><name>Bob</name></person></site>"#,
    )
    .unwrap();
    p
}

#[test]
fn warm_execution_hits_the_cache() {
    let p = peer_with_data(EngineKind::Tree);
    let q = r#"string(doc("data.xml")/v)"#;
    let first = p.execute(q).unwrap();
    assert_eq!(p.plan_cache.misses.load(Relaxed), 1);
    assert_eq!(p.plan_cache.hits.load(Relaxed), 0);
    for _ in 0..5 {
        assert_eq!(serialize(&p.execute(q).unwrap()), serialize(&first));
    }
    assert_eq!(p.plan_cache.misses.load(Relaxed), 1, "compiled once");
    assert_eq!(p.plan_cache.hits.load(Relaxed), 5);
}

#[test]
fn normalization_tolerates_line_endings_and_padding_only() {
    let p = peer_with_data(EngineKind::Tree);
    p.execute("string(doc(\"data.xml\")/v)").unwrap();
    // CRLF + outer padding: the same query, same plan
    p.execute("  string(doc(\"data.xml\")/v)\r\n").unwrap();
    assert_eq!(p.plan_cache.misses.load(Relaxed), 1);
    assert_eq!(p.plan_cache.hits.load(Relaxed), 1);
    // *internal* whitespace is NOT normalized away (string literals make
    // it significant): a different text is a different key
    p.execute("string( doc(\"data.xml\")/v )").unwrap();
    assert_eq!(p.plan_cache.misses.load(Relaxed), 2);
}

#[test]
fn module_reload_invalidates_cached_plans() {
    let p = peer_with_data(EngineKind::Tree);
    p.register_module(r#"module namespace m = "mod"; declare function m:answer() { "old" };"#)
        .unwrap();
    let q = r#"import module namespace m = "mod"; m:answer()"#;
    assert_eq!(serialize(&p.execute(q).unwrap()), "old");
    let misses_before = p.plan_cache.misses.load(Relaxed);

    // re-registering the module must make the cached plan unreachable…
    p.register_module(r#"module namespace m = "mod"; declare function m:answer() { "new" };"#)
        .unwrap();
    assert!(p.plan_cache.invalidations.load(Relaxed) >= 1);
    assert_eq!(p.plan_cache.len(), 0, "invalidation freed the entries");

    // …and the re-execution recompiles under the new registry generation
    assert_eq!(serialize(&p.execute(q).unwrap()), "new");
    assert_eq!(p.plan_cache.misses.load(Relaxed), misses_before + 1);
}

#[test]
fn peer_base_uri_change_is_a_cache_miss() {
    let p = peer_with_data(EngineKind::Tree);
    let q = r#"string(doc("data.xml")/v)"#;
    assert_eq!(serialize(&p.execute(q).unwrap()), "root");
    p.set_base_uri(Some("app".into()));
    // same text, different ambient static context: must NOT hit the old
    // plan — and must see the base-uri-resolved document
    assert_eq!(serialize(&p.execute(q).unwrap()), "scoped");
    assert_eq!(p.plan_cache.hits.load(Relaxed), 0);
    assert_eq!(p.plan_cache.misses.load(Relaxed), 2);
    // flipping back re-uses the *original* entry (still cached)
    p.set_base_uri(None);
    assert_eq!(serialize(&p.execute(q).unwrap()), "root");
    assert_eq!(p.plan_cache.hits.load(Relaxed), 1);
}

#[test]
fn declared_base_uri_in_prolog_scopes_doc_resolution() {
    let p = peer_with_data(EngineKind::Tree);
    let r = p
        .execute(r#"declare base-uri "app"; string(doc("data.xml")/v)"#)
        .unwrap();
    assert_eq!(serialize(&r), "scoped");
}

#[test]
fn default_collation_change_is_a_cache_miss() {
    let p = peer_with_data(EngineKind::Tree);
    let q = r#"string(doc("data.xml")/v)"#;
    p.execute(q).unwrap();
    p.set_default_collation(Some(
        "http://www.w3.org/2005/xpath-functions/collation/codepoint".into(),
    ));
    p.execute(q).unwrap();
    assert_eq!(p.plan_cache.hits.load(Relaxed), 0);
    assert_eq!(p.plan_cache.misses.load(Relaxed), 2);
}

#[test]
fn prepared_query_binds_external_variables() {
    let p = peer_with_data(EngineKind::Tree);
    let prepared = p
        .prepare(
            r#"declare variable $pid as xs:string external;
               string(doc("people.xml")//person[@id = $pid]/name)"#,
        )
        .unwrap();
    for (pid, name) in [("p0", "Ann"), ("p1", "Bob")] {
        let r = p
            .execute_prepared(
                &prepared,
                vec![("pid".to_string(), Sequence::one(Item::string(pid)))],
            )
            .unwrap();
        assert_eq!(serialize(&r), name);
    }
    // one compile served every execution
    assert_eq!(p.plan_cache.misses.load(Relaxed), 1);
    assert_eq!(p.stats.requests_handled.load(Relaxed), 0);
}

#[test]
fn external_variable_defaults_and_coercion() {
    let p = peer_with_data(EngineKind::Tree);
    let prepared = p
        .prepare(
            r#"declare variable $n as xs:integer external := 7;
               $n * 2"#,
        )
        .unwrap();
    // unbound → the declared default
    let r = p.execute_prepared(&prepared, vec![]).unwrap();
    assert_eq!(serialize(&r), "14");
    // bound with an untyped/string value → function-conversion cast
    let r = p
        .execute_prepared(
            &prepared,
            vec![("n".to_string(), Sequence::one(Item::string("21")))],
        )
        .unwrap();
    assert_eq!(serialize(&r), "42");
}

#[test]
fn unbound_external_without_default_is_xpdy0002() {
    let p = peer_with_data(EngineKind::Tree);
    let prepared = p.prepare(r#"declare variable $x external; $x"#).unwrap();
    let err = p.execute_prepared(&prepared, vec![]).unwrap_err();
    assert_eq!(err.code, "XPDY0002");
}

#[test]
fn fidelity_mode_is_byte_identical_to_cached_path() {
    let cached = peer_with_data(EngineKind::Tree);
    let fresh = peer_with_data(EngineKind::Tree);
    fresh.set_plan_cache_enabled(false);
    let queries = [
        r#"string(doc("data.xml")/v)"#,
        r#"<out>{ doc("people.xml")//person[@id = "p1"]/name }</out>"#,
        r#"for $i in (1 to 5) return $i * $i"#,
        r#"declare base-uri "app"; string(doc("data.xml")/v)"#,
    ];
    for q in queries {
        for _ in 0..3 {
            let a = cached.execute(q).unwrap();
            let b = fresh.execute(q).unwrap();
            assert_eq!(serialize(&a), serialize(&b), "query: {q}");
        }
    }
    assert!(cached.plan_cache.hits.load(Relaxed) >= 8);
    assert_eq!(fresh.plan_cache.hits.load(Relaxed), 0);
    assert_eq!(fresh.plan_cache.len(), 0, "disabled cache stores nothing");
}

#[test]
fn rel_engine_shares_the_same_cache_semantics() {
    let p = peer_with_data(EngineKind::Rel);
    let q = r#"for $x in doc("people.xml")//person return string($x/name)"#;
    let first = p.execute(q).unwrap();
    let second = p.execute(q).unwrap();
    assert_eq!(serialize(&first), "Ann|Bob");
    assert_eq!(serialize(&second), "Ann|Bob");
    assert_eq!(p.plan_cache.hits.load(Relaxed), 1);
}

#[test]
fn lru_eviction_under_capacity_pressure() {
    let p = peer_with_data(EngineKind::Tree);
    p.plan_cache.set_capacity(2);
    for q in ["1 + 1", "2 + 2", "3 + 3"] {
        p.execute(q).unwrap();
    }
    assert!(p.plan_cache.len() <= 2);
    assert!(p.plan_cache.evictions.load(Relaxed) >= 1);
    // the most-recent entry survived
    p.execute("3 + 3").unwrap();
    assert_eq!(p.plan_cache.hits.load(Relaxed), 1);
}

/// Seeded (deterministic) property test: across random combinations of
/// query text and ambient static context, a (text, context) pair seen
/// before is always a hit and a pair never seen is always a miss — i.e.
/// two distinct queries, or one query under two distinct contexts, can
/// never collide on one cache key.
#[test]
fn property_keys_never_collide_across_texts_or_contexts() {
    let p = peer_with_data(EngineKind::Tree);
    p.plan_cache.set_capacity(1024); // no eviction noise

    let texts = [
        "1 + 1",
        "1 + 1 ", // normalizes to the former: SAME logical key
        "1 + 2",
        "string(doc(\"data.xml\")/v)",
        "count((1, 2, 3))",
    ];
    let base_uris: [Option<&str>; 3] = [None, Some("app"), Some("other")];
    let collations: [Option<&str>; 2] = [None, Some("http://example.org/collation")];

    // xorshift64 — deterministic, no dependency on the rand crate
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut seen: HashSet<(String, usize, usize)> = HashSet::new();
    for _ in 0..200 {
        let t = (next() % texts.len() as u64) as usize;
        let b = (next() % base_uris.len() as u64) as usize;
        let c = (next() % collations.len() as u64) as usize;
        p.set_base_uri(base_uris[b].map(String::from));
        p.set_default_collation(collations[c].map(String::from));

        let expected_key = (Peer::normalize_query_text(texts[t]), b, c);
        let hits_before = p.plan_cache.hits.load(Relaxed);
        let misses_before = p.plan_cache.misses.load(Relaxed);
        p.execute(texts[t]).unwrap();
        let was_hit = p.plan_cache.hits.load(Relaxed) == hits_before + 1;
        let was_miss = p.plan_cache.misses.load(Relaxed) == misses_before + 1;
        assert!(was_hit ^ was_miss, "exactly one of hit/miss per lookup");
        if seen.contains(&expected_key) {
            assert!(
                was_hit,
                "previously-compiled pair must hit: {expected_key:?}"
            );
        } else {
            assert!(was_miss, "never-seen pair must miss: {expected_key:?}");
            seen.insert(expected_key);
        }
    }
    // `seen` keys by *normalized* text, so the two texts that normalize
    // identically already share one entry — the cache must agree exactly.
    assert_eq!(p.plan_cache.len(), seen.len());
}

/// The README quick-start flow: a prepared query whose external variable
/// parameterizes a remote `execute at` — one compile at the originator,
/// fresh Bulk RPC values per execution.
#[test]
fn prepared_query_drives_remote_execute_at() {
    use xrpc_net::{NetProfile, SimNetwork};
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let film_module = r#"
        module namespace f = "films";
        declare function f:filmsByActor($actor as xs:string) as node()*
        { doc("filmDB.xml")//name[../actor = $actor] };
    "#;
    let local = Peer::new("xrpc://local.example.org", EngineKind::Rel);
    let y = Peer::new("xrpc://y.example.org", EngineKind::Tree);
    for p in [&local, &y] {
        p.register_module(film_module).unwrap();
        p.set_transport(net.clone());
    }
    y.add_document(
        "filmDB.xml",
        r#"<films>
            <film><name>The Rock</name><actor>Sean Connery</actor></film>
            <film><name>Goldfinger</name><actor>Sean Connery</actor></film>
            <film><name>Victor/Victoria</name><actor>Julie Andrews</actor></film>
        </films>"#,
    )
    .unwrap();
    net.register("xrpc://y.example.org", y.soap_handler());

    let prepared = local
        .prepare(
            r#"import module namespace f = "films";
               declare variable $actor as xs:string external;
               execute at {"xrpc://y.example.org"} {f:filmsByActor($actor)}"#,
        )
        .unwrap();
    for (actor, expected) in [
        ("Julie Andrews", "<name>Victor/Victoria</name>"),
        (
            "Sean Connery",
            "<name>The Rock</name>|<name>Goldfinger</name>",
        ),
    ] {
        let r = local
            .execute_prepared(
                &prepared,
                vec![("actor".to_string(), Sequence::one(Item::string(actor)))],
            )
            .unwrap();
        assert_eq!(serialize(&r), expected);
    }
    assert_eq!(local.plan_cache.misses.load(Relaxed), 1, "one compile");
}

#[test]
fn set_bulk_threads_pins_and_adaptive_unpins() {
    let p = peer_with_data(EngineKind::Tree);
    assert_eq!(p.adaptive.pinned(), None, "adaptive by default");
    p.set_bulk_threads(4);
    assert_eq!(p.adaptive.pinned(), Some(4));
    p.set_bulk_adaptive();
    assert_eq!(p.adaptive.pinned(), None);
}
