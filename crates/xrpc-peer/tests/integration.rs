//! End-to-end distributed tests: peers joined by the simulated network or
//! by real loopback HTTP, exercising the paper's queries, isolation levels
//! and distributed updates.

use std::sync::Arc;
use xdm::{Item, Sequence};
use xrpc_net::{http::HttpTransport, HttpServer, NetProfile, SimNetwork};
use xrpc_peer::{EngineKind, ModuleWeb, Peer, XrpcWrapper};

const FILM_MODULE: &str = r#"
    module namespace film = "films";
    declare function film:filmsByActor($actor as xs:string) as node()*
    { doc("filmDB.xml")//name[../actor = $actor] };
"#;

const TEST_MODULE: &str = r#"
    module namespace t = "test";
    declare function t:echoVoid() { () };
    declare function t:get() { string(doc("state.xml")/v) };
    declare updating function t:set($x as xs:string)
    { replace value of node doc("state.xml")/v with $x };
    declare updating function t:renameRoot($n as xs:string)
    { rename node doc("state.xml")/v as $n };
    declare function t:double($x as xs:integer) { $x * 2 };
    declare function t:toInt($x as xs:string) { $x cast as xs:integer };
"#;

const FILM_DB: &str = r#"<films>
<film><name>The Rock</name><actor>Sean Connery</actor></film>
<film><name>Goldfinger</name><actor>Sean Connery</actor></film>
<film><name>Green Card</name><actor>Gerard Depardieu</actor></film>
</films>"#;

fn serialize(seq: &Sequence) -> String {
    seq.iter()
        .map(|i| match i {
            Item::Node(n) => n.to_xml(),
            a => a.string_value(),
        })
        .collect::<Vec<_>>()
        .join("|")
}

/// Two peers on a simulated network; returns (net, local A, remote B).
fn sim_pair(engine_a: EngineKind) -> (Arc<SimNetwork>, Arc<Peer>, Arc<Peer>) {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new("xrpc://a.example.org", engine_a);
    let b = Peer::new("xrpc://b.example.org", EngineKind::Tree);
    for p in [&a, &b] {
        p.register_module(FILM_MODULE).unwrap();
        p.register_module(TEST_MODULE).unwrap();
        p.set_transport(net.clone());
    }
    b.add_document("filmDB.xml", FILM_DB).unwrap();
    b.add_document("state.xml", "<v>initial</v>").unwrap();
    net.register("xrpc://a.example.org", a.soap_handler());
    net.register("xrpc://b.example.org", b.soap_handler());
    (net, a, b)
}

#[test]
fn paper_query_q1_end_to_end() {
    let (_net, a, _b) = sim_pair(EngineKind::Rel);
    let res = a
        .execute(
            r#"import module namespace f = "films";
               <films>{ execute at {"xrpc://b.example.org"} {f:filmsByActor("Sean Connery")} }</films>"#,
        )
        .unwrap();
    assert_eq!(
        serialize(&res),
        "<films><name>The Rock</name><name>Goldfinger</name></films>"
    );
}

#[test]
fn bulk_rpc_over_wire_single_request() {
    let (_net, a, b) = sim_pair(EngineKind::Rel);
    let out = a
        .execute_detailed(
            r#"import module namespace t = "test";
               for $i in (1 to 50) return execute at {"xrpc://b.example.org"} {t:echoVoid()}"#,
        )
        .unwrap();
    assert!(out.result.is_empty());
    assert_eq!(out.requests_sent, 1, "bulk: one request on the wire");
    assert_eq!(out.calls_sent, 50);
    assert_eq!(
        b.stats
            .requests_handled
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    assert_eq!(
        b.stats
            .calls_handled
            .load(std::sync::atomic::Ordering::Relaxed),
        50
    );
}

#[test]
fn tree_engine_sends_one_request_per_iteration() {
    let (_net, a, b) = sim_pair(EngineKind::Tree);
    let out = a
        .execute_detailed(
            r#"import module namespace t = "test";
               for $i in (1 to 7) return execute at {"xrpc://b.example.org"} {t:echoVoid()}"#,
        )
        .unwrap();
    assert_eq!(out.requests_sent, 7);
    assert_eq!(
        b.stats
            .requests_handled
            .load(std::sync::atomic::Ordering::Relaxed),
        7
    );
}

#[test]
fn remote_fault_surfaces_at_originator() {
    let (_net, a, _b) = sim_pair(EngineKind::Rel);
    // unknown function on the remote side
    let err = a
        .execute(
            r#"import module namespace f = "films";
               execute at {"xrpc://b.example.org"} {f:noSuchFunction()}"#,
        )
        .unwrap_err();
    assert_eq!(err.code, "XPST0017");
    assert!(err.message.contains("remote fault"));
}

#[test]
fn unreachable_peer_is_an_error() {
    let (_net, a, _b) = sim_pair(EngineKind::Rel);
    let err = a
        .execute(
            r#"import module namespace t = "test";
               execute at {"xrpc://gone.example.org"} {t:echoVoid()}"#,
        )
        .unwrap_err();
    assert_eq!(err.code, "XRPC0001");
}

#[test]
fn module_fetched_via_location_hint() {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new("xrpc://a", EngineKind::Rel);
    let b = Peer::new("xrpc://b", EngineKind::Tree);
    // B does NOT have the film module pre-registered; it can fetch it from
    // the module web by the at-hint carried in the request.
    let web = ModuleWeb::new();
    web.publish("http://x.example.org/film.xq", FILM_MODULE);
    web.install(&b.modules);
    b.add_document("filmDB.xml", FILM_DB).unwrap();
    a.register_module(FILM_MODULE).unwrap();
    a.set_transport(net.clone());
    net.register("xrpc://b", b.soap_handler());
    let res = a
        .execute(
            r#"import module namespace f = "films" at "http://x.example.org/film.xq";
               execute at {"xrpc://b"} {f:filmsByActor("Gerard Depardieu")}"#,
        )
        .unwrap();
    assert_eq!(serialize(&res), "<name>Green Card</name>");
}

#[test]
fn update_isolation_none_applies_immediately_rule_rfu() {
    let (_net, a, b) = sim_pair(EngineKind::Tree);
    let res = a
        .execute(
            r#"import module namespace t = "test";
               execute at {"xrpc://b.example.org"} {t:set("changed")}"#,
        )
        .unwrap();
    assert!(res.is_empty());
    // applied right after the request (rule RFu), no 2PC involved
    let v = b.docs.get("state.xml").unwrap();
    assert_eq!(v.string_value(v.root()), "changed");
    assert_eq!(
        b.stats
            .control_messages
            .load(std::sync::atomic::Ordering::Relaxed),
        0
    );
}

#[test]
fn update_repeatable_defers_until_2pc_commit_rule_rfu_prime() {
    let (_net, a, b) = sim_pair(EngineKind::Tree);
    let out = a
        .execute_detailed(
            r#"declare option xrpc:isolation "repeatable";
               import module namespace t = "test";
               execute at {"xrpc://b.example.org"} {t:set("committed")}"#,
        )
        .unwrap();
    // after execute() returns the transaction has committed
    let v = b.docs.get("state.xml").unwrap();
    assert_eq!(v.string_value(v.root()), "committed");
    // Prepare + Commit both hit B
    assert_eq!(
        b.stats
            .control_messages
            .load(std::sync::atomic::Ordering::Relaxed),
        2
    );
    assert!(matches!(
        out.commit,
        Some(xrpc_peer::twopc::CommitOutcome::Committed { participants: 1 })
    ));
    // snapshot state was released
    assert_eq!(b.snapshots.active_count(), 0);
}

#[test]
fn incompatible_distributed_updates_abort() {
    let (_net, a, b) = sim_pair(EngineKind::Tree);
    // two renames of the same node in one isolated query: XQUF forbids it,
    // so Prepare must refuse and the transaction aborts
    let err = a
        .execute(
            r#"declare option xrpc:isolation "repeatable";
               import module namespace t = "test";
               (execute at {"xrpc://b.example.org"} {t:renameRoot("x")},
                execute at {"xrpc://b.example.org"} {t:renameRoot("y")})"#,
        )
        .unwrap_err();
    assert!(err.message.contains("aborted"), "{err}");
    // nothing was applied
    let v = b.docs.get("state.xml").unwrap();
    let root = v.children(v.root())[0];
    assert_eq!(v.node(root).name.as_ref().unwrap().local, "v");
}

#[test]
fn repeatable_read_pins_state_across_requests() {
    // Protocol-level check: two requests of one queryID see one snapshot
    // even when the store changes in between.
    let (_net, _a, b) = sim_pair(EngineKind::Tree);
    let qid = xrpc_proto::QueryId::new("origin", 777, 30);
    let mut req = xrpc_proto::XrpcRequest::new("test", "get", 0).with_query_id(qid.clone());
    req.push_call(vec![]);
    let xml = req.to_xml().unwrap();

    let r1 = b.handle_soap(xml.as_bytes());
    let r1 = String::from_utf8(r1).unwrap();
    assert!(r1.contains("initial"));

    // another transaction commits in between
    b.docs
        .insert("state.xml", xmldom::parse("<v>overwritten</v>").unwrap());

    // the same query still sees the pinned snapshot
    let r2 = String::from_utf8(b.handle_soap(xml.as_bytes())).unwrap();
    assert!(r2.contains("initial"), "repeatable read violated: {r2}");

    // a *fresh* request without queryID sees the new state
    let mut plain = xrpc_proto::XrpcRequest::new("test", "get", 0);
    plain.push_call(vec![]);
    let r3 = String::from_utf8(b.handle_soap(plain.to_xml().unwrap().as_bytes())).unwrap();
    assert!(r3.contains("overwritten"));
}

#[test]
fn expired_query_id_rejected() {
    let (_net, _a, b) = sim_pair(EngineKind::Tree);
    let qid = xrpc_proto::QueryId::new("origin", 888, 0); // timeout 0s
    let mut req = xrpc_proto::XrpcRequest::new("test", "get", 0).with_query_id(qid);
    req.push_call(vec![]);
    let xml = req.to_xml().unwrap();
    let _ = b.handle_soap(xml.as_bytes());
    std::thread::sleep(std::time::Duration::from_millis(20));
    b.snapshots.gc();
    let r = String::from_utf8(b.handle_soap(xml.as_bytes())).unwrap();
    assert!(
        r.contains("XRPC0002"),
        "expected expired-queryID fault: {r}"
    );
}

#[test]
fn function_cache_counts_prepares() {
    let (_net, a, b) = sim_pair(EngineKind::Rel);
    let q = r#"import module namespace t = "test";
               execute at {"xrpc://b.example.org"} {t:echoVoid()}"#;
    for _ in 0..5 {
        a.execute(q).unwrap();
    }
    use std::sync::atomic::Ordering::Relaxed;
    assert_eq!(b.stats.requests_handled.load(Relaxed), 5);
    // cache on: prepared once
    assert_eq!(b.stats.functions_prepared.load(Relaxed), 1);

    b.function_cache.set_enabled(false);
    for _ in 0..5 {
        a.execute(q).unwrap();
    }
    // cache off: re-prepared per request
    assert_eq!(b.stats.functions_prepared.load(Relaxed), 6);
}

#[test]
fn nested_xrpc_calls_and_participant_piggyback() {
    // a → b → c: b's function makes a nested call to c; the response to a
    // must piggyback c as a participant (paper §2.3).
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new("xrpc://a", EngineKind::Tree);
    let b = Peer::new("xrpc://b", EngineKind::Tree);
    let c = Peer::new("xrpc://c", EngineKind::Tree);
    let chain_module = r#"
        module namespace ch = "chain";
        declare function ch:leaf() { "from-c" };
        declare function ch:middle()
        { execute at {"xrpc://c"} {ch:leaf()} };
    "#;
    for p in [&a, &b, &c] {
        p.register_module(chain_module).unwrap();
        p.set_transport(net.clone());
    }
    net.register("xrpc://b", b.soap_handler());
    net.register("xrpc://c", c.soap_handler());
    let out = a
        .execute_detailed(
            r#"declare option xrpc:isolation "repeatable";
               import module namespace ch = "chain";
               execute at {"xrpc://b"} {ch:middle()}"#,
        )
        .unwrap();
    assert_eq!(serialize(&out.result), "from-c");
    // read-only repeatable query: no 2PC, but snapshots on b and c exist
    // until their timeout (they were pinned by the queryID)
    assert!(b.snapshots.active_count() <= 1);
    assert!(c.snapshots.active_count() <= 1);
}

#[test]
fn real_http_transport_end_to_end() {
    let a = Peer::new("placeholder-a", EngineKind::Rel);
    let b = Peer::new("placeholder-b", EngineKind::Tree);
    for p in [&a, &b] {
        p.register_module(FILM_MODULE).unwrap();
        p.register_module(TEST_MODULE).unwrap();
    }
    b.add_document("filmDB.xml", FILM_DB).unwrap();

    let server_b = HttpServer::bind("127.0.0.1:0", {
        let h = b.soap_handler();
        Arc::new(move |_path: &str, body: &[u8]| (200, h(body)))
    })
    .unwrap();
    b.set_name(server_b.url());
    let transport = Arc::new(HttpTransport::new());
    a.set_transport(transport.clone());

    let q = format!(
        r#"import module namespace f = "films";
           for $actor in ("Julie Andrews", "Sean Connery")
           return execute at {{"{}"}} {{f:filmsByActor($actor)}}"#,
        server_b.url()
    );
    let out = a.execute_detailed(&q).unwrap();
    assert_eq!(
        serialize(&out.result),
        "<name>The Rock</name>|<name>Goldfinger</name>"
    );
    // loop-lifted: one HTTP POST total
    assert_eq!(transport.metrics.snapshot().roundtrips, 1);
}

#[test]
fn http_keepalive_pool_reused_across_queries() {
    // E1-style repeated-call workload over real TCP: every query after
    // the first must ride the pooled keep-alive connection instead of
    // paying a fresh TCP setup.
    let a = Peer::new("placeholder-a", EngineKind::Tree);
    let b = Peer::new("placeholder-b", EngineKind::Tree);
    for p in [&a, &b] {
        p.register_module(FILM_MODULE).unwrap();
    }
    b.add_document("filmDB.xml", FILM_DB).unwrap();

    let server_b = HttpServer::bind("127.0.0.1:0", {
        let h = b.soap_handler();
        Arc::new(move |_path: &str, body: &[u8]| (200, h(body)))
    })
    .unwrap();
    b.set_name(server_b.url());
    let transport = Arc::new(HttpTransport::new());
    a.set_transport(transport.clone());

    let q = format!(
        r#"import module namespace f = "films";
           execute at {{"{}"}} {{f:filmsByActor("Sean Connery")}}"#,
        server_b.url()
    );
    for _ in 0..6 {
        let out = a.execute_detailed(&q).unwrap();
        assert_eq!(
            serialize(&out.result),
            "<name>The Rock</name>|<name>Goldfinger</name>"
        );
    }
    let s = transport.metrics.snapshot();
    assert_eq!(s.roundtrips, 6);
    assert_eq!(s.pool_misses, 1, "only the first query should connect");
    assert_eq!(s.pool_hits, 5);
}

#[test]
fn wrapper_peer_services_bulk_from_rel_peer() {
    // MonetDB-role peer (rel engine) calls a wrapped plain engine (§4/§5).
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new("xrpc://a", EngineKind::Rel);
    let person_module = r#"
        module namespace func = "functions";
        declare function func:getPerson($d as xs:string, $pid as xs:string) as node()?
        { zero-or-one(doc($d)//person[@id = $pid]) };
    "#;
    a.register_module(person_module).unwrap();
    a.set_transport(net.clone());

    let wrapper = XrpcWrapper::new();
    wrapper.modules.register_source(person_module).unwrap();
    wrapper.docs.insert(
        "people.xml",
        xmldom::parse(
            r#"<site><person id="p0"><name>Ann</name></person>
               <person id="p1"><name>Bob</name></person></site>"#,
        )
        .unwrap(),
    );
    net.register("xrpc://saxon", wrapper.soap_handler());

    let res = a
        .execute(
            r#"import module namespace func = "functions";
               for $pid in ("p0", "p1", "p9")
               return execute at {"xrpc://saxon"} {func:getPerson("people.xml", $pid)}"#,
        )
        .unwrap();
    assert_eq!(res.len(), 2);
    assert!(serialize(&res).contains("Ann"));
    assert!(serialize(&res).contains("Bob"));
    // the wrapper handled ONE bulk request for all three calls
    assert_eq!(wrapper.phases().requests, 1);
}

#[test]
fn parallel_bulk_preserves_call_order() {
    use std::sync::atomic::Ordering::Relaxed;
    let (_net, a, b) = sim_pair(EngineKind::Rel);
    b.set_bulk_threads(8);
    let out = a
        .execute_detailed(
            r#"import module namespace t = "test";
               for $i in (1 to 40)
               return execute at {"xrpc://b.example.org"} {t:double($i)}"#,
        )
        .unwrap();
    assert_eq!(out.requests_sent, 1, "bulk: one request on the wire");
    let expect = (1..=40)
        .map(|i| (2 * i).to_string())
        .collect::<Vec<_>>()
        .join("|");
    assert_eq!(
        serialize(&out.result),
        expect,
        "responses must come back in call order whatever the completion order"
    );
    assert_eq!(b.stats.parallel_bulk_requests.load(Relaxed), 1);
}

#[test]
fn parallel_bulk_surfaces_lowest_index_error() {
    let (_net, a, b) = sim_pair(EngineKind::Rel);
    b.set_bulk_threads(4);
    let err = a
        .execute(
            r#"import module namespace t = "test";
               for $x in ("1", "2", "3", "badLOW", "5", "6", "badHIGH", "8")
               return execute at {"xrpc://b.example.org"} {t:toInt($x)}"#,
        )
        .unwrap_err();
    // exactly the fault sequential evaluation would have raised: the
    // first failing call, not whichever worker lost the race
    assert!(err.message.contains("badLOW"), "{}", err.message);
    assert!(!err.message.contains("badHIGH"), "{}", err.message);
}

#[test]
fn parallel_bulk_bypassed_for_updating_calls() {
    use std::sync::atomic::Ordering::Relaxed;
    let (_net, a, b) = sim_pair(EngineKind::Rel);
    b.set_bulk_threads(8);
    b.add_document("nums.xml", "<r><i>0</i><i>0</i><i>0</i></r>")
        .unwrap();
    let upd_module = r#"
        module namespace pu = "parupd";
        declare updating function pu:setNth($n as xs:integer, $x as xs:string)
        { replace value of node doc("nums.xml")/r/i[$n] with $x };
    "#;
    a.register_module(upd_module).unwrap();
    b.register_module(upd_module).unwrap();
    a.execute(
        r#"declare option xrpc:isolation "repeatable";
           import module namespace pu = "parupd";
           for $i in (1 to 3)
           return execute at {"xrpc://b.example.org"} {pu:setNth($i, string($i))}"#,
    )
    .unwrap();
    // the ∆s composed in call order, sequentially
    assert_eq!(b.stats.parallel_bulk_requests.load(Relaxed), 0);
    let v = b.docs.get("nums.xml").unwrap();
    assert_eq!(v.string_value(v.root()), "123");
}

#[test]
fn by_value_semantics_across_the_wire() {
    // a node result marshaled over XRPC loses its ancestors (paper §2.2)
    let (_net, a, _b) = sim_pair(EngineKind::Tree);
    let res = a
        .execute(
            r#"import module namespace f = "films";
               count(execute at {"xrpc://b.example.org"} {f:filmsByActor("Sean Connery")}/..)"#,
        )
        .unwrap();
    // parent steps on by-value copies find only the fragment holder (the
    // fresh document node per fragment), never the remote filmDB tree
    let n: i64 = match res.items()[0].atomize() {
        xdm::AtomicValue::Integer(i) => i,
        _ => panic!(),
    };
    assert!(
        n <= 2,
        "upward navigation must not reach the remote document"
    );
}

#[test]
fn fault_injection_mid_bulk_query() {
    let (net, a, _b) = sim_pair(EngineKind::Rel);
    net.inject_failures("xrpc://b.example.org", 1);
    let q = r#"import module namespace t = "test";
               for $i in (1 to 3) return execute at {"xrpc://b.example.org"} {t:echoVoid()}"#;
    let err = a.execute(q).unwrap_err();
    assert_eq!(err.code, "XRPC0001");
    // the link recovers and the query succeeds afterwards
    assert!(a.execute(q).is_ok());
}

#[test]
fn parallel_dispatch_to_multiple_peers_overlaps_latency() {
    // Figure 1's "dispatching all Bulk RPC requests in parallel": with a
    // 20 ms one-way link and three destination peers, the three bulk
    // requests must overlap (elapsed ≈ 1 round trip, not 3).
    let net = Arc::new(SimNetwork::new(NetProfile::with_latency(
        std::time::Duration::from_millis(20),
    )));
    let a = Peer::new("xrpc://a", EngineKind::Rel);
    a.register_module(TEST_MODULE).unwrap();
    a.set_transport(net.clone());
    for name in ["xrpc://p1", "xrpc://p2", "xrpc://p3"] {
        let p = Peer::new(name, EngineKind::Tree);
        p.register_module(TEST_MODULE).unwrap();
        net.register(name, p.soap_handler());
    }
    let q = r#"
        import module namespace t = "test";
        for $dst in ("xrpc://p1", "xrpc://p2", "xrpc://p3")
        return execute at {$dst} {t:echoVoid()}"#;
    let t0 = std::time::Instant::now();
    a.execute(q).unwrap();
    let elapsed = t0.elapsed();
    // sequential would be ≥ 3 × 40 ms = 120 ms; parallel ≈ 40 ms
    assert!(
        elapsed < std::time::Duration::from_millis(100),
        "parallel dispatch expected, took {elapsed:?}"
    );
    assert!(elapsed >= std::time::Duration::from_millis(40));
}

#[test]
fn concurrent_clients_against_one_peer() {
    // thread-per-connection server side + snapshot manager under
    // concurrent load
    let (_net, a, b) = sim_pair(EngineKind::Rel);
    let a = a.clone();
    let _ = &b;
    std::thread::scope(|s| {
        for i in 0..8 {
            let a = a.clone();
            s.spawn(move || {
                for _ in 0..5 {
                    let q = format!(
                        r#"import module namespace f = "films";
                           count(execute at {{"xrpc://b.example.org"}}
                                 {{f:filmsByActor("Sean Connery")}}) + {i}"#
                    );
                    let res = a.execute(&q).unwrap();
                    assert_eq!(res.items()[0].string_value(), (2 + i).to_string());
                }
            });
        }
    });
    assert_eq!(
        b.stats
            .requests_handled
            .load(std::sync::atomic::Ordering::Relaxed),
        40
    );
}

#[test]
fn element_parameters_through_wrapper() {
    // node-typed parameters cross the wire into the wrapper's generated
    // query and back
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new("xrpc://a", EngineKind::Rel);
    let module = r#"
        module namespace w = "wrapmod";
        declare function w:firstChildName($e as node()) as xs:string
        { string(local-name($e/*[1])) };
    "#;
    a.register_module(module).unwrap();
    a.add_document("data.xml", "<wrap><inner><deep/></inner></wrap>")
        .unwrap();
    a.set_transport(net.clone());
    let wrapper = XrpcWrapper::new();
    wrapper.modules.register_source(module).unwrap();
    net.register("xrpc://w", wrapper.soap_handler());
    let res = a
        .execute(
            r#"import module namespace w = "wrapmod";
               execute at {"xrpc://w"} {w:firstChildName(doc("data.xml")/wrap)}"#,
        )
        .unwrap();
    assert_eq!(res.items()[0].string_value(), "inner");
}

#[test]
fn data_shipping_doc_fetch_and_cache() {
    let (net, a, _b) = sim_pair(EngineKind::Tree);
    // fetch the remote film DB by URI twice in one query: the per-query
    // doc cache must issue ONE network fetch
    net.metrics.reset();
    let res = a
        .execute(
            r#"( count(doc("xrpc://b.example.org/filmDB.xml")//film),
                 count(doc("xrpc://b.example.org/filmDB.xml")//actor) )"#,
        )
        .unwrap();
    let counts: Vec<String> = res.items().iter().map(|i| i.string_value()).collect();
    assert_eq!(counts, ["3", "3"]);
    assert_eq!(net.metrics.snapshot().roundtrips, 1, "doc cached per query");
}
