//! The admin surface over the real wire: boot peers on actual HTTP
//! loopback sockets, drive a distributed update through them, then
//! scrape `/metrics` and `/healthz` like a monitoring stack would —
//! validating the Prometheus exposition format, the exact metric
//! families, and the health document. This doubles as the CI smoke
//! test for the observability endpoints.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use xrpc_net::http::HttpTransport;
use xrpc_obs::prom::validate_exposition;
use xrpc_peer::{bind_admin, EngineKind, FsyncPolicy, Peer};

const MODULE: &str = r#"
    module namespace t = "test";
    declare function t:ping() { "pong" };
    declare updating function t:addEntry($x as xs:string)
    { insert node <e>{$x}</e> into doc("log.xml")/log };
"#;

/// Minimal HTTP GET, enough for an admin scrape: one request with
/// `Connection: close`, returns (status, body).
fn http_get(host: &str, port: u16, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect((host, port)).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .expect("status line");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn metrics_and_healthz_scrape_end_to_end() {
    // server peer: SOAP + admin on one listener, WAL attached
    let b = Peer::new("placeholder", EngineKind::Tree);
    b.register_module(MODULE).unwrap();
    b.add_document("log.xml", "<log/>").unwrap();
    let wal_path = std::env::temp_dir().join(format!("xrpc-admin-{}.wal", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_path);
    let _ = std::fs::remove_file(&wal_path);
    b.attach_wal(&wal_path, FsyncPolicy::Never).unwrap();
    let server = bind_admin(&b, "127.0.0.1:0").expect("bind server peer");
    b.set_name(server.url());

    // client peer, with its own admin listener so the client-side view
    // (resilient transport, per-dest stats, breakers) is scrapeable too
    let a = Peer::new("xrpc://client", EngineKind::Tree);
    a.register_module(MODULE).unwrap();
    a.set_transport(Arc::new(HttpTransport::new()));
    let a_server = bind_admin(&a, "127.0.0.1:0").expect("bind client peer");

    // traffic: a few reads plus one distributed update (2PC + WAL)
    for _ in 0..3 {
        a.execute(&format!(
            r#"import module namespace t = "test";
               execute at {{"{}"}} {{t:ping()}}"#,
            server.url()
        ))
        .unwrap();
    }
    a.execute(&format!(
        r#"declare option xrpc:isolation "repeatable";
           import module namespace t = "test";
           execute at {{"{}"}} {{t:addEntry("via-http")}}"#,
        server.url()
    ))
    .unwrap();

    // ---- server-side /metrics ----
    let (status, body) = http_get("127.0.0.1", server.port(), "/metrics");
    assert_eq!(status, 200, "metrics scrape failed: {body}");
    let families = validate_exposition(&body).expect("well-formed exposition");
    for family in [
        // transport counters, labeled by side
        "xrpc_net_roundtrips_total",
        "xrpc_net_bytes_received_total",
        // 2PC counters
        "xrpc_twopc_prepares_total",
        "xrpc_twopc_commits_total",
        // buffer pool
        "xrpc_bufpool_hits_total",
        "xrpc_bufpool_occupancy",
        // readiness gauges
        "xrpc_wal_attached",
        "xrpc_in_doubt_transactions",
        // reactor admission surface: shed counter, connection/queue
        // gauges, per-stage reactor histograms
        "xrpc_net_sheds_total",
        "xrpc_net_active_connections",
        "xrpc_net_accept_queue_depth",
        "xrpc_reactor_dispatch_micros",
        "xrpc_reactor_wakeup_micros",
        // WAL durability surface
        "xrpc_wal_segments",
        "xrpc_wal_log_bytes",
        "xrpc_wal_poisoned",
        "xrpc_wal_rotations_total",
        // latency/size histograms (summaries)
        "xrpc_message_bytes",
        "xrpc_server_handle_micros",
        "xrpc_bulk_batch_calls",
        "xrpc_twopc_prepare_micros",
        "xrpc_twopc_commit_micros",
        "xrpc_wal_append_micros",
        // plan/function cache effectiveness
        "xrpc_plan_cache_hits_total",
        "xrpc_plan_cache_misses_total",
        "xrpc_function_cache_hits_total",
        // cancellation outcomes
        "xrpc_cancellations_total",
        // span-ring overflow + slow-query log volume/drops
        "xrpc_trace_spans_dropped_total",
        "xrpc_slowlog_entries_total",
        "xrpc_slowlog_dropped_total",
        "xrpc_slowlog_threshold_millis",
    ] {
        assert!(
            families.iter().any(|f| f == family),
            "family `{family}` missing from exposition:\n{body}"
        );
    }
    assert!(
        body.matches("quantile=\"0.99\"").count() >= 5,
        "at least five histogram summaries with p99 expected:\n{body}"
    );
    assert!(
        body.contains("xrpc_net_roundtrips_total{side=\"server\"}"),
        "server-side transport counters labeled"
    );
    assert!(body.contains("xrpc_twopc_prepares_total 1"));

    // ---- client-side /metrics ----
    let (status, body) = http_get("127.0.0.1", a_server.port(), "/metrics");
    assert_eq!(status, 200);
    validate_exposition(&body).expect("client exposition well-formed");
    assert!(body.contains("xrpc_net_roundtrips_total{side=\"client\"}"));
    for family in [
        "xrpc_call_latency_micros",
        "xrpc_call_latency_by_dest_micros",
        "xrpc_dest_latency_micros",
        "xrpc_breaker_state",
    ] {
        assert!(
            body.contains(family),
            "client family `{family}` missing:\n{body}"
        );
    }

    // ---- /slowlog ----
    // Nothing above crossed the (default 250ms) threshold, so the log is
    // empty — but the route must answer 200 with an empty JSON-lines
    // body rather than falling through to SOAP dispatch.
    let (status, slowlog) = http_get("127.0.0.1", server.port(), "/slowlog");
    assert_eq!(status, 200, "slowlog scrape failed: {slowlog}");
    for line in slowlog.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "slowlog line is not a JSON object: {line}"
        );
    }

    // ---- /healthz ----
    let (status, health) = http_get("127.0.0.1", server.port(), "/healthz");
    assert_eq!(status, 200, "healthy peer must report 200: {health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"wal_attached\":true"), "{health}");
    assert!(health.contains("\"wal_poisoned\":false"), "{health}");
    assert!(health.contains("\"in_doubt\":0"), "{health}");

    // SOAP dispatch still works on the same listener after the admin
    // routes (the updates above already proved it; assert the effect)
    let doc = b.docs.get("log.xml").unwrap();
    let log = doc.children(doc.root())[0];
    assert_eq!(doc.children(log).len(), 1);

    drop(server);
    drop(a_server);
    let _ = std::fs::remove_dir_all(&wal_path);
    let _ = std::fs::remove_file(&wal_path);
}

/// A poisoned WAL (first append/fsync failure) must fail readiness: the
/// peer can no longer promise durability, so `/healthz` turns 503 and
/// the `xrpc_wal_poisoned` gauge flips — the signal a load balancer
/// uses to drain traffic before a prepare is acked into a void.
#[test]
fn poisoned_wal_degrades_healthz_to_503() {
    let p = Peer::new("xrpc://poisoned", EngineKind::Tree);
    let wal_path =
        std::env::temp_dir().join(format!("xrpc-admin-poison-{}.wal", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_path);
    p.attach_wal(&wal_path, FsyncPolicy::Never).unwrap();

    let (status, health) = xrpc_peer::render_healthz(&p);
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"wal_poisoned\":false"), "{health}");

    p.wal().unwrap().poison("simulated media failure");

    let (status, health) = xrpc_peer::render_healthz(&p);
    assert_eq!(status, 503, "poisoned WAL must fail readiness: {health}");
    assert!(health.contains("\"status\":\"degraded\""), "{health}");
    assert!(health.contains("\"wal_poisoned\":true"), "{health}");

    let metrics = xrpc_peer::render_metrics(&p, None);
    assert!(
        metrics.contains("xrpc_wal_poisoned 1"),
        "poisoned gauge must flip:\n{metrics}"
    );

    // and every subsequent append is refused with the durability error
    let err = p
        .wal()
        .unwrap()
        .append(&xrpc_peer::WalRecord::CoordinatorEnd {
            qid: xrpc_proto::QueryId::new("xrpc://poisoned", 1, 60),
        })
        .unwrap_err();
    assert_eq!(err.code, "XRPC0003", "typed durability error: {err}");

    let _ = std::fs::remove_dir_all(&wal_path);
}
