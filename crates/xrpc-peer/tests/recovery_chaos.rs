//! Crash-restart chaos tests for the durable 2PC layer: a three-peer
//! cluster with write-ahead logs, killed deterministically at every
//! instrumented crash point and restarted over the *same* log file (and
//! the same document store, standing in for the durable database).
//!
//! The invariant throughout: a distributed update either applies exactly
//! once at every participant or at none — never mixed, never doubled —
//! regardless of where a process dies. Presumed abort means every crash
//! before the coordinator's forced commit record ends in a clean abort;
//! every crash after it ends in commit everywhere, driven by restart
//! recovery (WAL replay, outcome inquiry, decision redelivery).
//!
//! The final test is a property-style checker: pseudo-random fault
//! schedules (seeded, `CHAOS_SEED` selects the stream for CI matrices),
//! every prefix of each schedule replayed, failures shrunk to the
//! shortest failing schedule before panicking.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use xrpc_net::{
    crash_points, BreakerConfig, CrashSwitch, HttpServer, HttpTransport, NetProfile,
    ResilientTransport, RetryPolicy, SimNetwork,
};
use xrpc_peer::{EngineKind, FsyncPolicy, Peer, SweeperConfig, TwoPcConfig, WalConfig};

const A_URI: &str = "xrpc://a.example.org";
const B_URI: &str = "xrpc://b.example.org";
const C_URI: &str = "xrpc://c.example.org";

const CHAOS_MODULE: &str = r#"
    module namespace t = "test";
    declare function t:ping() { "pong" };
    declare updating function t:addEntry($x as xs:string)
    { insert node <e>{$x}</e> into doc("log.xml")/log };
"#;

const UPDATE_BOTH: &str = r#"declare option xrpc:isolation "repeatable";
    import module namespace t = "test";
    (execute at {"xrpc://b.example.org"} {t:addEntry("x")},
     execute at {"xrpc://c.example.org"} {t:addEntry("x")})"#;

/// Unique WAL paths per cluster so parallel tests never share a log.
static RUN_ID: AtomicU64 = AtomicU64::new(0);

struct Node {
    peer: Arc<Peer>,
    switch: Arc<CrashSwitch>,
    wal_path: std::path::PathBuf,
}

struct Cluster {
    net: Arc<SimNetwork>,
    a: Node,
    b: Node,
    c: Node,
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for n in [&self.a, &self.b, &self.c] {
            // the WAL is a segment directory (a plain file only for
            // legacy logs); clean up either shape
            let _ = std::fs::remove_dir_all(&n.wal_path);
            let _ = std::fs::remove_file(&n.wal_path);
        }
    }
}

/// Fsync policy for the chaos cluster: `CHAOS_FSYNC=always` runs the
/// whole suite with real forced fsyncs and live group commit (the CI
/// `recovery-chaos-fsync` job); the default `Never` keeps the
/// schedule-heavy property tests fast.
fn chaos_fsync() -> FsyncPolicy {
    match std::env::var("CHAOS_FSYNC").as_deref() {
        Ok("always") => FsyncPolicy::Always,
        _ => FsyncPolicy::Never,
    }
}

/// Chaos WAL tuning: a deliberately tiny rotation threshold so segment
/// rotation and copy-forward run constantly under the fault schedules,
/// not only in the directed rotation tests.
fn chaos_wal_config() -> WalConfig {
    WalConfig {
        fsync: chaos_fsync(),
        group_commit: true,
        rotate_bytes: 2048,
    }
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        call_deadline: Duration::from_secs(5),
        jitter_seed: 42,
    }
}

fn fast_twopc() -> TwoPcConfig {
    TwoPcConfig {
        prepare_deadline: Duration::from_secs(5),
        decision_max_attempts: 2,
        decision_backoff: Duration::from_millis(1),
    }
}

/// Wire one peer into the cluster: module, transport, 2PC tuning, WAL,
/// crash switch (both peer-side and network-side) and the SOAP handler.
/// Used both at cluster birth and on every restart.
fn wire(net: &Arc<SimNetwork>, node: &Node, uri: &str) {
    node.peer.register_module(CHAOS_MODULE).unwrap();
    let resilient =
        ResilientTransport::with_policy(net.clone(), fast_policy(), BreakerConfig::default());
    node.peer.set_transport_raw(resilient);
    node.peer.set_twopc_config(fast_twopc());
    node.peer.set_crash_switch(node.switch.clone());
    net.register(uri, node.peer.soap_handler());
    net.attach_crash_switch(uri, node.switch.clone());
}

fn cluster(tag: &str) -> Cluster {
    let run = RUN_ID.fetch_add(1, Ordering::Relaxed);
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let mk = |uri: &str, short: &str| {
        let peer = Peer::new(uri, EngineKind::Tree);
        let wal_path = std::env::temp_dir().join(format!(
            "xrpc-recovery-{}-{tag}-{run}-{short}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&wal_path);
        let _ = std::fs::remove_file(&wal_path);
        Node {
            peer,
            switch: CrashSwitch::new(),
            wal_path,
        }
    };
    let cl = Cluster {
        a: mk(A_URI, "a"),
        b: mk(B_URI, "b"),
        c: mk(C_URI, "c"),
        net,
    };
    for (n, uri) in [(&cl.a, A_URI), (&cl.b, B_URI), (&cl.c, C_URI)] {
        wire(&cl.net, n, uri);
        n.peer
            .attach_wal_with(&n.wal_path, chaos_wal_config())
            .unwrap();
    }
    for n in [&cl.b, &cl.c] {
        n.peer.add_document("log.xml", "<log/>").unwrap();
    }
    cl
}

/// Restart a crashed node: a brand-new `Peer` over the *same* document
/// store (the durable database survives) and the *same* WAL file, with
/// all coordination state re-entered from the log. Returns the recovery
/// report of the WAL replay.
fn restart(net: &Arc<SimNetwork>, node: &mut Node, uri: &str) -> xrpc_peer::RecoveryReport {
    let docs = node.peer.docs.clone();
    node.peer = Peer::new_with_docs(uri, EngineKind::Tree, docs);
    node.switch.revive();
    wire(net, node, uri);
    node.peer
        .attach_wal_with(&node.wal_path, chaos_wal_config())
        .unwrap()
}

/// Number of `<e>` entries in a peer's log document.
fn log_count(p: &Peer) -> usize {
    let doc = p.docs.get("log.xml").unwrap();
    let log = doc.children(doc.root())[0];
    doc.children(log)
        .iter()
        .filter(|&&n| doc.node(n).name.as_ref().is_some_and(|q| q.local == "e"))
        .count()
}

// ---------------------------------------------------------------------
// Participant crash points
// ---------------------------------------------------------------------

#[test]
fn crash_before_prepare_log_presumes_abort_everywhere() {
    let mut cl = cluster("before-prepare");
    cl.b.switch.arm(crash_points::BEFORE_PREPARE_LOG);

    // b dies mid-Prepare with nothing durable: the coordinator times out,
    // decides abort, and the abort to the dead b is an undeliverable
    // hazard (counted, not fatal — presumed abort makes it safe to drop).
    let err = cl.a.peer.execute(UPDATE_BOTH).unwrap_err();
    assert!(
        err.message.contains("aborted"),
        "coordinator must abort: {err}"
    );
    let coord = cl.a.peer.twopc_metrics.snapshot();
    assert!(
        coord.hazards >= 1,
        "abort to the dead participant is a hazard: {coord:?}"
    );
    assert_eq!(
        cl.c.peer.twopc_metrics.snapshot().aborts,
        1,
        "the healthy participant quiesced with an abort"
    );

    // Restart finds an empty log — no prepared state to restore, nothing
    // to inquire about. Atomicity: zero entries everywhere.
    let report = restart(&cl.net, &mut cl.b, B_URI);
    assert_eq!(report.restored_prepared, 0);
    assert_eq!(report.reapplied, 0);
    cl.b.peer.resolve_in_doubt().unwrap();
    assert_eq!(log_count(&cl.b.peer), 0);
    assert_eq!(log_count(&cl.c.peer), 0);
    assert_eq!(cl.b.peer.wal().unwrap().open_transactions(), 0);
}

#[test]
fn crash_after_prepare_ack_resolves_in_doubt_by_inquiry() {
    let mut cl = cluster("after-prepare-ack");
    cl.b.switch.arm(crash_points::AFTER_PREPARE_ACK);

    // b promises (forced Prepared record, ack delivered) then dies. The
    // coordinator reaches unanimous prepare, forces its commit record,
    // commits c, and surfaces a heuristic hazard for the unreachable b.
    let err = cl.a.peer.execute(UPDATE_BOTH).unwrap_err();
    assert!(
        err.message.contains("commit undeliverable"),
        "commit already durable, b unreachable: {err}"
    );
    assert_eq!(log_count(&cl.c.peer), 1);
    assert_eq!(log_count(&cl.b.peer), 0, "b died before any Commit");
    assert!(cl.a.peer.twopc_metrics.snapshot().hazards >= 1);

    // Restart: the WAL re-enters prepared state; the in-doubt resolver
    // asks the coordinator, learns Committed, applies ∆ from the log.
    let report = restart(&cl.net, &mut cl.b, B_URI);
    assert_eq!(report.restored_prepared, 1);
    let resolved = cl.b.peer.resolve_in_doubt().unwrap();
    assert_eq!(resolved.resolved_committed, 1);
    assert_eq!(resolved.still_in_doubt, 0);
    assert_eq!(log_count(&cl.b.peer), 1, "inquiry converged b to commit");
    assert_eq!(cl.a.peer.twopc_metrics.snapshot().inquiries, 1);
    let b = cl.b.peer.twopc_metrics.snapshot();
    assert!(b.recoveries >= 1, "recovery counted: {b:?}");
    // all obligations settled: the log checkpoints back to empty
    assert_eq!(cl.b.peer.wal().unwrap().open_transactions(), 0);
}

#[test]
fn crash_after_decision_log_reapplies_from_wal_exactly_once() {
    let mut cl = cluster("after-decision");
    cl.b.switch.arm(crash_points::AFTER_DECISION_LOG);

    // b forces the Commit decision record, then dies *before* applying
    // ∆_q. The coordinator's delivery looks lost (hazard), but the
    // decision is durable at b.
    let err = cl.a.peer.execute(UPDATE_BOTH).unwrap_err();
    assert!(err.message.contains("commit undeliverable"), "{err}");
    assert_eq!(log_count(&cl.b.peer), 0, "decided but not yet applied");
    assert_eq!(log_count(&cl.c.peer), 1);

    // Restart replays Decision(Committed) without Applied: recovery
    // finishes the job straight from the log — exactly once.
    let report = restart(&cl.net, &mut cl.b, B_URI);
    assert_eq!(report.reapplied, 1);
    assert_eq!(report.restored_prepared, 0);
    assert_eq!(log_count(&cl.b.peer), 1);
    cl.b.peer.resolve_in_doubt().unwrap();
    assert_eq!(log_count(&cl.b.peer), 1, "resolution must not re-apply");
    assert!(cl.b.peer.twopc_metrics.snapshot().recoveries >= 1);
    assert_eq!(cl.b.peer.wal().unwrap().open_transactions(), 0);
}

#[test]
fn sweeper_resolves_in_doubt_participant_in_background() {
    let mut cl = cluster("sweeper");
    cl.b.switch.arm(crash_points::AFTER_PREPARE_ACK);
    assert!(cl.a.peer.execute(UPDATE_BOTH).is_err());

    let report = restart(&cl.net, &mut cl.b, B_URI);
    assert_eq!(report.restored_prepared, 1);
    // no explicit resolve: the background sweeper re-inquires prepared
    // transactions older than min_age on its own
    let handle = cl.b.peer.start_recovery_sweeper(SweeperConfig {
        interval: Duration::from_millis(20),
        min_age: Duration::ZERO,
    });
    let deadline = Instant::now() + Duration::from_secs(5);
    while log_count(&cl.b.peer) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.stop();
    assert_eq!(log_count(&cl.b.peer), 1, "sweeper converged b to commit");
    assert_eq!(log_count(&cl.c.peer), 1);
}

// ---------------------------------------------------------------------
// Coordinator crash points
// ---------------------------------------------------------------------

#[test]
fn coordinator_crash_before_commit_log_presumes_abort() {
    let mut cl = cluster("coord-before-commit");
    cl.a.switch.arm(crash_points::COORD_BEFORE_COMMIT_LOG);

    // Unanimous prepare, then the coordinator dies before forcing its
    // commit record: no decision exists anywhere.
    let err = cl.a.peer.execute(UPDATE_BOTH).unwrap_err();
    assert!(err.message.contains("simulated crash"), "{err}");
    assert_eq!(log_count(&cl.b.peer), 0);
    assert_eq!(log_count(&cl.c.peer), 0);

    // Restart the coordinator: its log holds no commit record, so it
    // answers inquiries with the presumed abort. Both participants
    // release their prepared state cleanly.
    restart(&cl.net, &mut cl.a, A_URI);
    let rb = cl.b.peer.resolve_in_doubt().unwrap();
    let rc = cl.c.peer.resolve_in_doubt().unwrap();
    assert_eq!(rb.resolved_aborted, 1);
    assert_eq!(rc.resolved_aborted, 1);
    assert_eq!(log_count(&cl.b.peer), 0);
    assert_eq!(log_count(&cl.c.peer), 0);
    assert_eq!(cl.a.peer.twopc_metrics.snapshot().inquiries, 2);
    assert_eq!(
        cl.b.peer.snapshots.prepared_undecided(Duration::ZERO).len(),
        0
    );
    assert_eq!(
        cl.c.peer.snapshots.prepared_undecided(Duration::ZERO).len(),
        0
    );
}

#[test]
fn coordinator_crash_after_commit_log_redelivers_on_restart() {
    let mut cl = cluster("coord-after-commit");
    cl.a.switch.arm(crash_points::COORD_AFTER_COMMIT_LOG);

    // The commit record is forced, then the coordinator dies before any
    // delivery: the decision is commit, but nobody has heard it.
    let err = cl.a.peer.execute(UPDATE_BOTH).unwrap_err();
    assert!(err.message.contains("simulated crash"), "{err}");
    assert_eq!(log_count(&cl.b.peer), 0);
    assert_eq!(log_count(&cl.c.peer), 0);

    // Restart: WAL replay finds CoordinatorCommit without CoordinatorEnd
    // and redelivers Commit to every participant.
    restart(&cl.net, &mut cl.a, A_URI);
    let report = cl.a.peer.resolve_in_doubt().unwrap();
    assert_eq!(report.redelivered, 1);
    assert_eq!(log_count(&cl.b.peer), 1);
    assert_eq!(log_count(&cl.c.peer), 1);
    assert_eq!(cl.b.peer.twopc_metrics.snapshot().commits, 1);
    assert_eq!(cl.c.peer.twopc_metrics.snapshot().commits, 1);
    // the end record closes the coordinator's obligation: log checkpoints
    assert_eq!(cl.a.peer.wal().unwrap().open_transactions(), 0);
}

// ---------------------------------------------------------------------
// Trace-based post-mortem: the exported spans alone reconstruct the
// timeline of a crashed-and-recovered transaction
// ---------------------------------------------------------------------

/// Crash the coordinator after its forced commit record, recover, and
/// reconstruct the transaction's full timeline — prepare, WAL forces,
/// the crash point, the in-doubt inquiry (against a dead then a revived
/// coordinator), and the decision redelivery — purely from the JSON
/// span exports of every tracer involved, stitched by one shared trace
/// id. The trace id is a deterministic function of the queryId, so the
/// pre-crash coordinator, the restarted coordinator (a brand-new peer
/// object), and both participants agree on it without coordination.
#[test]
fn exported_spans_reconstruct_crashed_transaction_timeline() {
    let mut cl = cluster("trace-timeline");
    cl.a.switch.arm(crash_points::COORD_AFTER_COMMIT_LOG);

    // the pre-crash coordinator's tracer dies with the peer object on
    // restart: keep a handle, as an external span collector would
    let a_pre = cl.a.peer.obs.tracer.clone();
    let err = cl.a.peer.execute(UPDATE_BOTH).unwrap_err();
    assert!(err.message.contains("simulated crash"), "{err}");

    // while the coordinator is down, the in-doubt participant's inquiry
    // goes nowhere — recorded as an unreachable-outcome recovery span
    let r = cl.b.peer.resolve_in_doubt().unwrap();
    assert_eq!(r.still_in_doubt, 1);

    restart(&cl.net, &mut cl.a, A_URI);
    // b resolves by inquiry; c is converged by the coordinator's
    // redelivery pass
    let rb = cl.b.peer.resolve_in_doubt().unwrap();
    assert_eq!(rb.resolved_committed, 1);
    let ra = cl.a.peer.resolve_in_doubt().unwrap();
    assert_eq!(ra.redelivered, 1);
    assert_eq!(log_count(&cl.b.peer), 1);
    assert_eq!(log_count(&cl.c.peer), 1);

    // ---- reconstruction, from exported spans alone ----
    let root = a_pre
        .finished()
        .into_iter()
        .find(|s| s.name == "execute")
        .expect("pre-crash coordinator recorded the execute root");
    let hex = format!("{:032x}", root.trace_id);
    let exported = [
        a_pre.export_json(),
        cl.a.peer.obs.tracer.export_json(),
        cl.b.peer.obs.tracer.export_json(),
        cl.c.peer.obs.tracer.export_json(),
    ]
    .concat();
    let trace_lines: Vec<&str> = exported.lines().filter(|l| l.contains(&hex)).collect();

    let has = |name: &str, frag: &str| {
        trace_lines
            .iter()
            .any(|l| l.contains(&format!("\"name\":\"{name}\"")) && l.contains(frag))
    };
    // prepare phase: both participants promised, each forcing a
    // Prepared record
    assert!(has("2pc:prepare", "\"peer\":\"xrpc://b.example.org\""));
    assert!(has("2pc:prepare", "\"peer\":\"xrpc://c.example.org\""));
    assert!(has("wal:force", "\"record\":\"prepared\""));
    assert!(has(
        "2pc:prepare-phase",
        "\"peer\":\"xrpc://a.example.org\""
    ));
    // commit point: the coordinator forced its commit record...
    assert!(has("wal:force", "\"record\":\"coordinator-commit\""));
    // ...then died at the instrumented point, visible on the span
    assert!(has(
        "2pc:decision-phase",
        "\"crash_point\":\"coordinator:after-commit-log-before-delivery\""
    ));
    // in-doubt resolution: one inquiry against the dead coordinator,
    // one against the revived coordinator that answers Committed
    assert!(has("recovery:inquire", "\"outcome\":\"unreachable\""));
    assert!(has("recovery:inquire", "\"outcome\":\"Committed\""));
    assert!(has("2pc:inquire", "\"outcome\":\"Committed\""));
    // redelivery: the restarted coordinator re-told every participant,
    // and the laggard applied the commit
    assert!(has("recovery:redeliver", "\"delivered\":\"all\""));
    assert!(has("2pc:commit", "\"peer\":\"xrpc://c.example.org\""));

    // the exports order the timeline: the prepare promise precedes the
    // post-restart redelivery in wall-clock start order
    let start_of = |name: &str| -> u64 {
        trace_lines
            .iter()
            .filter(|l| l.contains(&format!("\"name\":\"{name}\"")))
            .map(|l| {
                let i = l.find("\"start_micros\":").unwrap() + "\"start_micros\":".len();
                l[i..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
            })
            .map(|d| d.parse::<u64>().unwrap())
            .min()
            .unwrap()
    };
    assert!(start_of("2pc:prepare") <= start_of("recovery:redeliver"));
}

// ---------------------------------------------------------------------
// WAL self-verification at the integration level
// ---------------------------------------------------------------------

#[test]
fn torn_wal_tail_is_detected_and_recovery_uses_last_intact_record() {
    let mut cl = cluster("torn-tail");
    cl.b.switch.arm(crash_points::AFTER_PREPARE_ACK);
    assert!(cl.a.peer.execute(UPDATE_BOTH).is_err());

    // Simulate a torn write: garbage bytes at the tail of the *active*
    // (highest-numbered) segment of b's log, after the intact Prepared
    // record.
    {
        use std::io::{Seek, SeekFrom, Write};
        let tail_seg = std::fs::read_dir(&cl.b.wal_path)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "seg"))
            .max()
            .expect("segmented WAL has at least one segment");
        // a torn write lands at the write head — the end of the frame
        // chain — not at the physical end of the file, which under
        // group commit extends further with preallocated zeros
        let buf = std::fs::read(&tail_seg).unwrap();
        let mut pos = 8; // past the segment magic
        while let Some(h) = buf.get(pos..pos + 8) {
            let len = u32::from_le_bytes(h[0..4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(h[4..8].try_into().unwrap());
            if len == 0 && crc == 0 {
                break;
            }
            pos += 8 + len;
        }
        let mut f = std::fs::OpenOptions::new()
            .write(true)
            .open(tail_seg)
            .unwrap();
        f.seek(SeekFrom::Start(pos as u64)).unwrap();
        f.write_all(&[0x13, 0x37, 0xde, 0xad, 0xbe]).unwrap();
    }
    let report = restart(&cl.net, &mut cl.b, B_URI);
    assert!(report.tail_damaged, "CRC must flag the torn tail");
    assert_eq!(
        report.restored_prepared, 1,
        "records before the tear replay normally"
    );
    let resolved = cl.b.peer.resolve_in_doubt().unwrap();
    assert_eq!(resolved.resolved_committed, 1);
    assert_eq!(log_count(&cl.b.peer), 1);
}

// ---------------------------------------------------------------------
// LSN-idempotent apply, segment rotation, group commit and the re-abort
// sweep, each at its dedicated crash point
// ---------------------------------------------------------------------

/// The crash window the applied-LSN mark exists for: b applies ∆_q and
/// dies *before* forcing the `Applied` marker. The restarted peer's log
/// says "committed, not yet applied" — without the mark, recovery would
/// apply ∆_q a second time.
#[test]
fn crash_between_apply_and_marker_skips_reapply_by_lsn() {
    let mut cl = cluster("apply-no-marker");
    cl.b.switch.arm(crash_points::AFTER_APPLY_BEFORE_MARKER);

    let err = cl.a.peer.execute(UPDATE_BOTH).unwrap_err();
    assert!(err.message.contains("commit undeliverable"), "{err}");
    assert_eq!(
        log_count(&cl.b.peer),
        1,
        "∆ was applied before the crash, marker never written"
    );
    assert_eq!(log_count(&cl.c.peer), 1);

    // Replay sees Prepared + Commit but no Applied marker; the durable
    // applied-LSN mark on the store is what stops the second apply.
    let report = restart(&cl.net, &mut cl.b, B_URI);
    assert_eq!(report.reapplied, 1, "recovery walked the reapply path");
    assert_eq!(
        report.lsn_skips, 1,
        "…but the applied-LSN mark suppressed the duplicate ∆"
    );
    assert_eq!(log_count(&cl.b.peer), 1, "exactly once, not twice");
    cl.b.peer.resolve_in_doubt().unwrap();
    assert_eq!(log_count(&cl.b.peer), 1);
    assert_eq!(cl.b.peer.wal().unwrap().open_transactions(), 0);
}

/// Coordinator crash after `CoordinatorBegin` but before the commit
/// record: presumed abort already keeps the data safe, but the restarted
/// coordinator's re-abort sweep must *proactively* tell both prepared
/// participants, releasing their locks without waiting for each one's
/// own inquiry timeout.
#[test]
fn reabort_sweep_releases_participants_after_coordinator_crash() {
    let mut cl = cluster("reabort-sweep");
    cl.a.switch.arm(crash_points::COORD_BEFORE_COMMIT_LOG);

    let err = cl.a.peer.execute(UPDATE_BOTH).unwrap_err();
    assert!(err.message.contains("simulated crash"), "{err}");
    assert_eq!(
        cl.b.peer.snapshots.prepared_undecided(Duration::ZERO).len(),
        1,
        "b is parked in doubt"
    );

    // Only the coordinator acts: no participant-side resolve_in_doubt.
    let report = restart(&cl.net, &mut cl.a, A_URI);
    assert_eq!(report.restored_prepared, 0);
    let resolved = cl.a.peer.resolve_in_doubt().unwrap();
    assert_eq!(resolved.reaborted, 1, "sweep re-aborted the coordination");
    assert_eq!(cl.a.peer.twopc_metrics.snapshot().reaborts, 1);
    for n in [&cl.b, &cl.c] {
        assert_eq!(
            n.peer.snapshots.prepared_undecided(Duration::ZERO).len(),
            0,
            "sweep released the participant without an inquiry"
        );
        assert_eq!(log_count(&n.peer), 0);
        assert_eq!(n.peer.twopc_metrics.snapshot().aborts, 1);
    }
    // the advisory CoordinatorEnd closed the obligation: log quiesces
    assert_eq!(cl.a.peer.wal().unwrap().open_transactions(), 0);

    // a second sweep is a no-op — the entry was consumed
    let again = cl.a.peer.resolve_in_doubt().unwrap();
    assert_eq!(again.reaborted, 0);
}

/// A long-lived prepared transaction must not let the log grow without
/// bound: rotation copies the still-open transaction's records forward
/// and reclaims everything else, keeping bytes bounded while dozens of
/// later transactions come and go.
#[test]
fn rotation_bounds_log_growth_with_long_lived_prepared_txn() {
    let mut cl = cluster("rotation-bounds");
    // Pin a prepared-undecided transaction at b and c by killing the
    // coordinator before its commit record…
    cl.a.switch.arm(crash_points::COORD_BEFORE_COMMIT_LOG);
    assert!(cl.a.peer.execute(UPDATE_BOTH).is_err());
    // …then restart the coordinator but *never* resolve, so b's Prepared
    // record must survive every subsequent rotation.
    restart(&cl.net, &mut cl.a, A_URI);

    for _ in 0..30 {
        cl.a.peer.execute(UPDATE_BOTH).unwrap();
    }

    let wal = cl.b.peer.wal().unwrap();
    let stats = wal.stats();
    assert!(
        stats.rotations >= 3,
        "2 KiB threshold must rotate under 30 updates: {stats:?}"
    );
    assert!(
        stats.copy_forward_records >= stats.rotations,
        "the pinned txn is copied forward on every rotation: {stats:?}"
    );
    assert!(
        stats.log_bytes < 8192,
        "log stays bounded near the rotate threshold: {stats:?}"
    );
    assert_eq!(stats.segments, 1, "old generations are reclaimed");

    // The copied-forward Prepared record still recovers, with its ∆
    // intact, after all that churn.
    let report = restart(&cl.net, &mut cl.b, B_URI);
    assert_eq!(report.restored_prepared, 1);
    assert_eq!(log_count(&cl.b.peer), 30);
    let resolved = cl.b.peer.resolve_in_doubt().unwrap();
    assert_eq!(resolved.resolved_aborted, 1, "presumed abort still answers");
    assert_eq!(log_count(&cl.b.peer), 30, "the pinned txn's ∆ never lands");
    assert_eq!(log_count(&cl.c.peer), 30, "c's pinned ∆ never lands either");
}

/// Crash in the middle of a rotation: the copy-forward segment is
/// durable but the previous generation was never reclaimed, so replay
/// sees every surviving record *twice* (once per generation) and must
/// deduplicate by LSN.
#[test]
fn crash_mid_rotation_replays_both_generations_exactly_once() {
    let mut cl = cluster("mid-rotation");
    // Pin an open transaction at b so rotation always copies forward.
    cl.a.switch.arm(crash_points::COORD_BEFORE_COMMIT_LOG);
    assert!(cl.a.peer.execute(UPDATE_BOTH).is_err());
    restart(&cl.net, &mut cl.a, A_URI);

    // Pump updates until b dies at the armed mid-rotation point.
    cl.b.switch.arm(crash_points::WAL_MID_ROTATION);
    let mut crashed = false;
    for _ in 0..60 {
        if cl.a.peer.execute(UPDATE_BOTH).is_err() {
            crashed = true;
            break;
        }
    }
    assert!(
        crashed,
        "2 KiB threshold must trigger rotation within 60 txns"
    );
    assert!(cl.b.switch.is_down());

    let before = log_count(&cl.b.peer);
    let report = restart(&cl.net, &mut cl.b, B_URI);
    assert!(
        report.restored_prepared >= 1,
        "the pinned txn survives the torn rotation: {report:?}"
    );
    assert!(
        log_count(&cl.b.peer) <= before + 1,
        "replay across duplicate generations applies nothing twice \
         (before={before}, after={})",
        log_count(&cl.b.peer)
    );

    // Drive everyone to quiescence and check convergence: every
    // committed ∆ lands exactly once, the pinned aborted txn at neither.
    for _ in 0..4 {
        let _ = cl.a.peer.resolve_in_doubt();
        let _ = cl.b.peer.resolve_in_doubt();
        let _ = cl.c.peer.resolve_in_doubt();
    }
    assert_eq!(
        cl.b.peer.snapshots.prepared_undecided(Duration::ZERO).len(),
        0
    );
    assert_eq!(
        cl.c.peer.snapshots.prepared_undecided(Duration::ZERO).len(),
        0
    );
    let nb = log_count(&cl.b.peer);
    let nc = log_count(&cl.c.peer);
    assert_eq!(nb, nc, "recovery converged both participants");
}

/// Group commit must not weaken durability: a follower whose record is
/// written but whose batch leader never fsynced (crash at the
/// instrumented point) recovers to a consistent outcome — the record
/// either survived (prepared, resolvable) or tore off (presumed abort).
/// Only meaningful under `CHAOS_FSYNC=always`, where group commit is
/// actually forcing.
#[test]
fn group_commit_crash_before_fsync_recovers_consistently() {
    if !matches!(chaos_fsync(), FsyncPolicy::Always) {
        return; // covered by the recovery-chaos-fsync CI job
    }
    let mut cl = cluster("group-fsync");
    cl.b.switch.arm(crash_points::WAL_GROUP_FSYNC);

    let err = cl.a.peer.execute(UPDATE_BOTH).unwrap_err();
    assert!(err.message.contains("aborted"), "{err}");

    let report = restart(&cl.net, &mut cl.b, B_URI);
    // The record may or may not have reached disk; both ends are safe.
    assert!(report.restored_prepared <= 1);
    let _ = cl.b.peer.resolve_in_doubt();
    assert_eq!(log_count(&cl.b.peer), 0);
    assert_eq!(log_count(&cl.c.peer), 0);
    assert_eq!(
        cl.b.peer.snapshots.prepared_undecided(Duration::ZERO).len(),
        0
    );
}

// ---------------------------------------------------------------------
// Crash-restart over the real wire: the epoll-reactor HTTP server
// instead of SimNetwork. Runs under every CHAOS_SEED of the CI matrix.
// ---------------------------------------------------------------------

/// The WAL recovery invariant must survive the event-driven network
/// core, not only the simulated transport: a participant served by the
/// reactor [`HttpServer`] dies after forcing its Commit decision record
/// (decided, not yet applied), the server socket goes away with the
/// process, and the restarted peer — rebinding the *same* port via the
/// reactor's `SO_REUSEADDR` listener — finishes the transaction from
/// the log exactly once, then serves fresh traffic on the same address.
#[test]
fn http_reactor_crash_restart_recovers_exactly_once() {
    let run = RUN_ID.fetch_add(1, Ordering::Relaxed);
    let wal_path = std::env::temp_dir().join(format!(
        "xrpc-recovery-http-{}-{run}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal_path);
    let _ = std::fs::remove_file(&wal_path);

    // participant b over the reactor (the default server model)
    let b = Peer::new("placeholder-b", EngineKind::Tree);
    b.register_module(CHAOS_MODULE).unwrap();
    b.add_document("log.xml", "<log/>").unwrap();
    b.attach_wal_with(&wal_path, chaos_wal_config()).unwrap();
    let b_switch = CrashSwitch::new();
    b.set_crash_switch(b_switch.clone());
    b.set_twopc_config(fast_twopc());
    // a down crash switch means the process is dead: refuse everything,
    // including the coordinator's decision redelivery — otherwise the
    // retry would legitimately finish the transaction with no restart
    let mut server = HttpServer::bind("127.0.0.1:0", {
        let h = b.soap_handler();
        let sw = b_switch.clone();
        Arc::new(move |_path: &str, body: &[u8]| {
            if sw.is_down() {
                return (503, b"peer crashed".to_vec());
            }
            (200, h(body))
        })
    })
    .unwrap();
    let port = server.port();
    b.set_name(server.url());

    // coordinator a over the real HTTP client stack
    let a = Peer::new("xrpc://http-chaos-coordinator", EngineKind::Tree);
    a.register_module(CHAOS_MODULE).unwrap();
    a.set_twopc_config(fast_twopc());
    a.set_transport_raw(ResilientTransport::with_policy(
        Arc::new(HttpTransport::new()),
        fast_policy(),
        BreakerConfig::default(),
    ));

    let update = format!(
        r#"declare option xrpc:isolation "repeatable";
           import module namespace t = "test";
           execute at {{"{}"}} {{t:addEntry("over-http")}}"#,
        server.url()
    );

    // one clean distributed update over the reactor before any fault
    a.execute(&update).unwrap();
    assert_eq!(log_count(&b), 1);

    // b dies after forcing Decision(Commit), before applying ∆_q; over
    // HTTP the armed crash surfaces as a SOAP fault on the Commit
    // delivery (unlike SimNetwork, which suppresses the response), so
    // only assert on durable state, not on the coordinator's error text
    b_switch.arm(crash_points::AFTER_DECISION_LOG);
    let _ = a.execute(&update);
    assert_eq!(log_count(&b), 1, "decided but not yet applied");

    // the process dies: the listener goes with it
    server.shutdown_graceful(Duration::from_secs(5));
    drop(server);

    // restart: same document store, same WAL, same port
    let b2 = Peer::new_with_docs("placeholder-b", EngineKind::Tree, b.docs.clone());
    b2.register_module(CHAOS_MODULE).unwrap();
    b_switch.revive();
    b2.set_crash_switch(b_switch.clone());
    b2.set_twopc_config(fast_twopc());
    let report = b2.attach_wal_with(&wal_path, chaos_wal_config()).unwrap();
    assert_eq!(
        report.reapplied, 1,
        "replay finishes the decided transaction from the log: {report:?}"
    );
    assert_eq!(log_count(&b2), 2, "exactly once, not twice");

    let server2 = HttpServer::bind(&format!("127.0.0.1:{port}"), {
        let h = b2.soap_handler();
        Arc::new(move |_path: &str, body: &[u8]| (200, h(body)))
    })
    .expect("SO_REUSEADDR listener must rebind the crashed server's port");
    assert_eq!(server2.port(), port);
    b2.set_name(server2.url());
    b2.resolve_in_doubt().unwrap();
    assert_eq!(b2.wal().unwrap().open_transactions(), 0);

    // fresh traffic flows on the same address, exactly-once intact
    a.execute(&update).unwrap();
    assert_eq!(log_count(&b2), 3);

    drop(server2);
    let _ = std::fs::remove_dir_all(&wal_path);
    let _ = std::fs::remove_file(&wal_path);
}

// ---------------------------------------------------------------------
// Property-style invariant checker: seeded fault schedules, every prefix
// replayed, failures shrunk to the shortest failing schedule.
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Target {
    A,
    B,
    C,
}

type Op = (Target, &'static str);

/// The full fault universe: every instrumented crash point on the peer
/// that can reach it in a `b + c` update coordinated by `a`.
const UNIVERSE: &[Op] = &[
    (Target::B, crash_points::BEFORE_PREPARE_LOG),
    (Target::B, crash_points::AFTER_PREPARE_ACK),
    (Target::B, crash_points::AFTER_DECISION_LOG),
    (Target::C, crash_points::BEFORE_PREPARE_LOG),
    (Target::C, crash_points::AFTER_PREPARE_ACK),
    (Target::C, crash_points::AFTER_DECISION_LOG),
    (Target::A, crash_points::COORD_BEFORE_COMMIT_LOG),
    (Target::A, crash_points::COORD_AFTER_COMMIT_LOG),
    (Target::B, crash_points::AFTER_APPLY_BEFORE_MARKER),
    (Target::C, crash_points::AFTER_APPLY_BEFORE_MARKER),
    (Target::B, crash_points::WAL_MID_ROTATION),
];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn gen_schedule(rng: &mut u64) -> Vec<Op> {
    let len = 1 + (splitmix64(rng) % 3) as usize;
    (0..len)
        .map(|_| UNIVERSE[(splitmix64(rng) % UNIVERSE.len() as u64) as usize])
        .collect()
}

/// Run one schedule against a fresh cluster: arm every fault, fire the
/// distributed update, then drive restart + recovery rounds until the
/// cluster quiesces. Returns a violation description, or None.
fn run_schedule(schedule: &[Op]) -> Option<String> {
    let mut cl = cluster("prop");
    for (t, point) in schedule {
        let sw = match t {
            Target::A => &cl.a.switch,
            Target::B => &cl.b.switch,
            Target::C => &cl.c.switch,
        };
        sw.arm(point);
    }
    let outcome = cl.a.peer.execute(UPDATE_BOTH);

    // Recovery rounds: restart whoever is down, then let everyone
    // resolve. Armed points can fire *again* during recovery (a schedule
    // may kill the same peer at a later point too), hence the loop.
    for _ in 0..6 {
        if cl.a.switch.is_down() {
            restart(&cl.net, &mut cl.a, A_URI);
        }
        if cl.b.switch.is_down() {
            restart(&cl.net, &mut cl.b, B_URI);
        }
        if cl.c.switch.is_down() {
            restart(&cl.net, &mut cl.c, C_URI);
        }
        let _ = cl.a.peer.resolve_in_doubt();
        let _ = cl.b.peer.resolve_in_doubt();
        let _ = cl.c.peer.resolve_in_doubt();
        let quiescent = !cl.a.switch.is_down()
            && !cl.b.switch.is_down()
            && !cl.c.switch.is_down()
            && cl
                .b
                .peer
                .snapshots
                .prepared_undecided(Duration::ZERO)
                .is_empty()
            && cl
                .c
                .peer
                .snapshots
                .prepared_undecided(Duration::ZERO)
                .is_empty();
        if quiescent {
            break;
        }
    }

    let nb = log_count(&cl.b.peer);
    let nc = log_count(&cl.c.peer);
    if nb != nc {
        return Some(format!("mixed outcome: b={nb} entries, c={nc} entries"));
    }
    if nb > 1 {
        return Some(format!("double-applied ∆: {nb} entries at both peers"));
    }
    if outcome.is_ok() && nb != 1 {
        return Some(format!("reported commit but {nb} entries applied"));
    }
    if !cl
        .b
        .peer
        .snapshots
        .prepared_undecided(Duration::ZERO)
        .is_empty()
        || !cl
            .c
            .peer
            .snapshots
            .prepared_undecided(Duration::ZERO)
            .is_empty()
    {
        return Some("prepared transaction still in doubt after recovery".into());
    }
    None
}

/// Shrink a failing schedule by greedy element removal until no single
/// removal still fails.
fn shrink(mut schedule: Vec<Op>) -> Vec<Op> {
    loop {
        let mut reduced = false;
        for i in 0..schedule.len() {
            let mut candidate = schedule.clone();
            candidate.remove(i);
            if run_schedule(&candidate).is_some() {
                schedule = candidate;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return schedule;
        }
    }
}

#[test]
fn prefix_replay_invariant_checker() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut rng = seed;
    for round in 0..5 {
        let schedule = gen_schedule(&mut rng);
        // replay every prefix: an invariant must hold not only for the
        // full schedule but at every point along the way
        for cut in 0..=schedule.len() {
            let prefix = &schedule[..cut];
            if let Some(violation) = run_schedule(prefix) {
                let minimal = shrink(prefix.to_vec());
                panic!(
                    "invariant violated (seed={seed}, round={round}): {violation}\n\
                     failing prefix: {prefix:?}\n\
                     shrunk to shortest failing schedule: {minimal:?}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Deadline chaos: queries whose budget expires mid-flight must obey the
// same exactly-once-or-not-at-all invariant as crash schedules — the
// abort fans a Cancel out, participants drop their merged ∆s, and
// nothing is ever left prepared-undecided. Runs under every CHAOS_SEED
// of the CI matrix.
// ---------------------------------------------------------------------

#[test]
fn deadline_expiry_chaos_never_yields_mixed_outcomes() {
    let seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let mut rng = seed ^ 0xdead11e5;
    for round in 0..3 {
        let cl = cluster("deadline");
        let tight = splitmix64(&mut rng).is_multiple_of(2);
        let outcome = if tight {
            // the ∆s land at b and c first, then the budget burns out in
            // a local spin: the query must abort with XRPC0004 and undo
            // its footprint everywhere
            cl.a.peer.execute(
                r#"declare option xrpc:isolation "repeatable";
                   declare option xrpc:timeout "1";
                   import module namespace t = "test";
                   (execute at {"xrpc://b.example.org"} {t:addEntry("x")},
                    execute at {"xrpc://c.example.org"} {t:addEntry("x")},
                    count(for $i in (1 to 1000000)
                          for $j in (1 to 1000000)
                          where $i + $j lt 0 return 1))"#,
            )
        } else {
            cl.a.peer.execute(UPDATE_BOTH)
        };

        let nb = log_count(&cl.b.peer);
        let nc = log_count(&cl.c.peer);
        assert_eq!(
            nb, nc,
            "mixed outcome under deadline chaos (seed={seed}, round={round}, tight={tight})"
        );
        if tight {
            let err = outcome.expect_err("tight budget must abort");
            assert_eq!(err.code, "XRPC0004", "seed={seed} round={round}: {err}");
            assert_eq!(nb, 0, "cancelled ∆ must not apply (seed={seed})");
            // the Cancel fan-out released the participants' snapshots
            assert_eq!(cl.b.peer.snapshots.active_count(), 0);
            assert_eq!(cl.c.peer.snapshots.active_count(), 0);
        } else {
            outcome.unwrap_or_else(|e| panic!("roomy budget must commit (seed={seed}): {e}"));
            assert_eq!(nb, 1, "committed ∆ must apply once (seed={seed})");
        }
        assert!(
            cl.b.peer
                .snapshots
                .prepared_undecided(Duration::ZERO)
                .is_empty()
                && cl
                    .c
                    .peer
                    .snapshots
                    .prepared_undecided(Duration::ZERO)
                    .is_empty(),
            "deadline expiry must never leave prepared-undecided state"
        );
    }
}
