//! Property test for WAL segment rotation: the same append sequence
//! driven into a log that rotates constantly (tiny `rotate_bytes`, many
//! copy-forward generations) and a log that never rotates must replay to
//! the *same durable truth* on reopen — identical open transactions,
//! identical surviving records, identical LSNs. Rotation is allowed to
//! forget records of closed transactions (that is its job); it must
//! never lose, duplicate or renumber a record of a still-open one.
//!
//! Schedules are seeded interleavings of participant transaction
//! lifecycles (`Prepared` → `Decision` → `Applied`), with one
//! transaction pinned open for the whole run so every rotation exercises
//! copy-forward.

use std::collections::HashMap;
use xrpc_peer::{Decision, FsyncPolicy, SequencedRecord, Wal, WalConfig, WalRecord};
use xrpc_proto::QueryId;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn qid(i: u64) -> QueryId {
    QueryId::new("xrpc://wal-prop.example.org", 1_000 + i, 60)
}

/// One seeded interleaving: per-transaction lifecycle order is fixed,
/// the interleaving across transactions is random. Transaction 0 stays
/// open (Prepared only, never decided) for the entire schedule.
fn gen_ops(seed: u64, txns: u64) -> Vec<WalRecord> {
    let mut rng = seed;
    // remaining lifecycle per txn; txn 0 gets only its Prepared
    let mut pending: Vec<Vec<WalRecord>> = (0..txns)
        .map(|i| {
            let prepared = WalRecord::Prepared {
                qid: qid(i),
                coordinator: "xrpc://coord.example.org".into(),
                delta: vec![],
            };
            if i == 0 {
                vec![prepared]
            } else if splitmix64(&mut rng).is_multiple_of(3) {
                vec![
                    prepared,
                    WalRecord::Decision {
                        qid: qid(i),
                        decision: Decision::Aborted,
                    },
                ]
            } else {
                vec![
                    prepared,
                    WalRecord::Decision {
                        qid: qid(i),
                        decision: Decision::Committed,
                    },
                    WalRecord::Applied {
                        qid: qid(i),
                        mark: 0, // patched to the Prepared LSN at append time
                    },
                ]
            }
        })
        .collect();
    let mut ops = Vec::new();
    while pending.iter().any(|p| !p.is_empty()) {
        let pick = splitmix64(&mut rng) % txns;
        // walk from a random start to the next txn with work left
        for off in 0..txns {
            let i = ((pick + off) % txns) as usize;
            if !pending[i].is_empty() {
                ops.push(pending[i].remove(0));
                break;
            }
        }
    }
    ops
}

fn replay_of(path: &std::path::Path, config: WalConfig) -> Vec<SequencedRecord> {
    let (wal, replay) = Wal::open_with(path, config).unwrap();
    drop(wal);
    replay.records
}

#[test]
fn rotated_replay_equals_unrotated_replay() {
    for seed in [1u64, 2, 3, 4, 5, 6, 7, 8] {
        let base = std::env::temp_dir().join(format!("xrpc-walprop-{}-{seed}", std::process::id()));
        let tiny_path = base.with_extension("tiny.wal");
        let big_path = base.with_extension("big.wal");
        for p in [&tiny_path, &big_path] {
            let _ = std::fs::remove_dir_all(p);
        }

        let tiny_cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            group_commit: true,
            rotate_bytes: 256,
        };
        let big_cfg = WalConfig {
            fsync: FsyncPolicy::Never,
            group_commit: true,
            rotate_bytes: 1 << 30,
        };
        let (tiny, _) = Wal::open_with(&tiny_path, tiny_cfg).unwrap();
        let (big, _) = Wal::open_with(&big_path, big_cfg).unwrap();

        // drive the identical schedule into both logs, patching each
        // Applied mark to its transaction's Prepared LSN as a real
        // participant would
        let mut prepared_lsn: HashMap<u64, u64> = HashMap::new();
        for op in gen_ops(seed * 0x5eed, 12) {
            let op = match op {
                WalRecord::Applied { qid, .. } => WalRecord::Applied {
                    mark: prepared_lsn[&qid.timestamp_millis],
                    qid,
                },
                other => other,
            };
            let lsn_t = tiny.append(&op).unwrap();
            let lsn_b = big.append(&op).unwrap();
            assert_eq!(lsn_t, lsn_b, "LSN allocation must not depend on rotation");
            if let WalRecord::Prepared { qid, .. } = &op {
                prepared_lsn.insert(qid.timestamp_millis, lsn_t);
            }
        }

        let stats = tiny.stats();
        assert!(
            stats.rotations >= 3,
            "seed {seed}: 256-byte threshold must rotate ≥3 times: {stats:?}"
        );
        assert!(
            stats.copy_forward_records >= stats.rotations,
            "seed {seed}: the pinned txn is copied forward every time: {stats:?}"
        );
        assert_eq!(tiny.open_transactions(), 1);
        assert_eq!(big.open_transactions(), 1);
        drop(tiny);
        drop(big);

        // ---- the property: reopen both and compare durable truth ----
        let tiny_replay = replay_of(&tiny_path, tiny_cfg);
        let big_replay = replay_of(&big_path, big_cfg);

        // every record the rotated log kept exists in the unrotated log,
        // bit-identical and under the same LSN (subset: rotation may
        // drop closed-transaction records, never alter surviving ones)
        let by_lsn: HashMap<u64, &WalRecord> =
            big_replay.iter().map(|sr| (sr.lsn, &sr.record)).collect();
        for sr in &tiny_replay {
            match by_lsn.get(&sr.lsn) {
                Some(rec) => assert_eq!(
                    *rec, &sr.record,
                    "seed {seed}: lsn {} diverged across rotation",
                    sr.lsn
                ),
                None => panic!(
                    "seed {seed}: rotated log invented lsn {} missing from \
                     the unrotated log: {:?}",
                    sr.lsn, sr.record
                ),
            }
        }

        // the pinned transaction's full record set survives verbatim in
        // both — copy-forward preserved it across every generation
        let pinned = |records: &[SequencedRecord]| -> Vec<SequencedRecord> {
            records
                .iter()
                .filter(|sr| sr.record.qid().timestamp_millis == qid(0).timestamp_millis)
                .cloned()
                .collect()
        };
        let t0 = pinned(&tiny_replay);
        let b0 = pinned(&big_replay);
        assert_eq!(
            t0, b0,
            "seed {seed}: open-transaction records must be identical"
        );
        assert_eq!(t0.len(), 1, "seed {seed}: exactly the one Prepared record");
        assert_eq!(
            t0[0].lsn,
            prepared_lsn[&qid(0).timestamp_millis],
            "seed {seed}: copy-forward must not renumber LSNs"
        );

        // and the live fold agrees: one open transaction either way
        let (t, _) = Wal::open_with(&tiny_path, tiny_cfg).unwrap();
        let (b, _) = Wal::open_with(&big_path, big_cfg).unwrap();
        assert_eq!(t.open_transactions(), 1);
        assert_eq!(b.open_transactions(), 1);
        drop(t);
        drop(b);

        for p in [&tiny_path, &big_path] {
            let _ = std::fs::remove_dir_all(p);
        }
    }
}
