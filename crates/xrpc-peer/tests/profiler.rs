//! Distributed EXPLAIN ANALYZE end to end: a three-peer nested
//! `execute at` chain run with `xrpc:profile` must assemble ONE profile
//! at the originator — all three hops' operator trees with wall time and
//! item counts, phase breakdowns that account for each hop's measured
//! latency, a rendering folded-stack flamegraph — plus the always-on
//! slow-query log (slow queries appear exactly once, fast ones never).

use std::sync::Arc;
use std::time::Duration;
use xrpc_net::{NetProfile, SimNetwork};
use xrpc_obs::{HopProfile, ProfileMode, QueryProfile};
use xrpc_peer::{EngineKind, Peer};

const O_URI: &str = "xrpc://origin.example.org";
const A_URI: &str = "xrpc://a.example.org";
const B_URI: &str = "xrpc://b.example.org";

const MODULE: &str = r#"
    module namespace t = "test";
    declare function t:leaf() { count(doc("data.xml")//item) };
    declare function t:cascade()
    { execute at {"xrpc://b.example.org"} {t:leaf()} };
"#;

const DATA: &str = "<data><item>1</item><item>2</item><item>3</item></data>";

struct Cluster {
    o: Arc<Peer>,
    a: Arc<Peer>,
    b: Arc<Peer>,
}

fn cluster() -> Cluster {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let o = Peer::new(O_URI, EngineKind::Tree);
    let a = Peer::new(A_URI, EngineKind::Tree);
    let b = Peer::new(B_URI, EngineKind::Tree);
    for p in [&o, &a, &b] {
        p.register_module(MODULE).unwrap();
        p.add_document("data.xml", DATA).unwrap();
        p.set_transport(net.clone());
    }
    net.register(A_URI, a.soap_handler());
    net.register(B_URI, b.soap_handler());
    Cluster { o, a, b }
}

fn hop<'p>(prof: &'p QueryProfile, peer: &str) -> &'p HopProfile {
    prof.hops
        .iter()
        .find(|h| h.peer == peer)
        .unwrap_or_else(|| panic!("no hop for {peer} in {prof:#?}"))
}

/// Depth-first search of an operator tree for a node by name.
fn find_op<'o>(ops: &'o [xrpc_obs::OpNode], name: &str) -> Option<&'o xrpc_obs::OpNode> {
    for op in ops {
        if op.name == name {
            return Some(op);
        }
        if let Some(found) = find_op(&op.children, name) {
            return Some(found);
        }
    }
    None
}

const CHAIN_QUERY: &str = r#"declare option xrpc:profile "full";
       import module namespace t = "test";
       execute at {"xrpc://a.example.org"} {t:cascade()}"#;

#[test]
fn nested_execute_chain_assembles_one_profile() {
    let cl = cluster();
    // Warm the plan cache first so the asserted run's phase accounting is
    // not skewed by one-time compilation (charged on the miss only).
    cl.o.execute(CHAIN_QUERY).unwrap();
    let out = cl.o.execute_detailed(CHAIN_QUERY).unwrap();
    assert_eq!(out.result.items()[0].string_value(), "3");

    let prof = out.profile.expect("xrpc:profile must yield a profile");
    assert_eq!(prof.hops.len(), 3, "one hop per peer: {prof:#?}");
    assert_ne!(prof.trace_id, 0);

    // The hop chain: originator (depth 0, nobody's callee) → a → b, every
    // hop stamped with the shared trace id.
    let o_hop = hop(&prof, O_URI);
    assert_eq!(o_hop.depth, 0);
    assert_eq!(o_hop.via, "");
    let a_hop = hop(&prof, A_URI);
    assert_eq!(a_hop.depth, 1);
    assert_eq!(a_hop.via, O_URI);
    let b_hop = hop(&prof, B_URI);
    assert_eq!(b_hop.depth, 2);
    assert_eq!(b_hop.via, A_URI);
    for h in &prof.hops {
        assert_eq!(h.trace_id, prof.trace_id, "hop escaped the trace: {h:#?}");
        assert!(h.total_micros > 0, "hop has a measured total: {h:#?}");
    }

    // Per-operator stats at every hop. The originator's execute-at saw
    // the whole remote round-trip (timed wall) and carried wire bytes.
    let o_exec = find_op(&o_hop.ops, "xq:execute-at").expect("originator execute-at op");
    assert_eq!(o_exec.calls, 1);
    assert_eq!(o_exec.timed_calls, 1, "full mode times every call");
    assert!(o_exec.wall_micros > 0, "remote round-trip took time");
    assert!(o_exec.bytes > 0, "wire bytes attributed to the dispatch");
    assert!(find_op(&a_hop.ops, "xq:execute-at").is_some(), "{a_hop:#?}");
    let b_path = find_op(&b_hop.ops, "xq:path-step").expect("leaf path step at b");
    assert!(b_path.calls >= 1);
    assert_eq!(b_path.items, 3, "//item produced three items");

    // Phase accounting: each remote hop's phases add up to its measured
    // latency (10% + scheduling slack — these are microsecond sums).
    for h in [a_hop, b_hop] {
        let sum = h.phases.total_micros();
        let slack = h.total_micros / 10 + 1_000;
        assert!(
            sum <= h.total_micros + slack,
            "phases overshoot hop total at {}: {sum} vs {}",
            h.peer,
            h.total_micros
        );
        assert!(
            sum + slack >= h.total_micros,
            "phases undershoot hop total at {}: {sum} vs {}",
            h.peer,
            h.total_micros
        );
    }
    assert_eq!(o_hop.phases.cache, "hit", "second run hits the plan cache");
    assert!(o_hop.phases.network_micros > 0, "{o_hop:#?}");

    // Both renderings work: JSON carries every peer and operator; the
    // folded flamegraph nests callee hops under their callers and every
    // line parses as `stack count`.
    let json = prof.to_json();
    for needle in [O_URI, A_URI, B_URI, "xq:execute-at", "xq:path-step"] {
        assert!(json.contains(needle), "JSON missing {needle}: {json}");
    }
    let folded = prof.to_folded();
    assert!(!folded.is_empty());
    assert!(
        folded.contains(&format!("{O_URI};{A_URI}")),
        "callee nested under caller:\n{folded}"
    );
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("count is an integer");
    }

    // The remote peers kept nothing: profiles travel home in the
    // response header, they are not server-side state.
    assert_eq!(cl.a.slowlog.entries_logged(), 0);
    assert_eq!(cl.b.slowlog.entries_logged(), 0);
}

/// Without the option no profile is collected, and an unknown profile
/// value means "off" — never an error, never a changed result.
#[test]
fn profile_is_opt_in_and_lenient() {
    let cl = cluster();
    let out = cl.o.execute_detailed("1 + 1").unwrap();
    assert!(out.profile.is_none(), "profiling must be opt-in");
    let out =
        cl.o.execute_detailed(r#"declare option xrpc:profile "bogus"; 2 + 2"#)
            .unwrap();
    assert!(out.profile.is_none(), "unknown mode means off");
    assert_eq!(out.result.items()[0].string_value(), "4");
}

/// `explain` compiles but does not execute: it reports the plan's static
/// properties, and its cache disposition flips miss → hit.
#[test]
fn explain_is_compile_only() {
    let cl = cluster();
    let q = r#"declare option xrpc:isolation "repeatable"; count(doc("data.xml")//item)"#;
    let first = cl.o.explain(q).unwrap();
    assert!(first.contains("\"engine\":\"tree\""), "{first}");
    assert!(first.contains("\"cache\":\"miss\""), "{first}");
    assert!(first.contains("\"isolation\":\"repeatable\""), "{first}");
    let second = cl.o.explain(q).unwrap();
    assert!(second.contains("\"cache\":\"hit\""), "{second}");
}

/// `explain_analyze` forces full (stride-1) profiling regardless of the
/// query's own options and returns result + profile together.
#[test]
fn explain_analyze_forces_full_profiling() {
    let cl = cluster();
    let (result, prof) =
        cl.o.explain_analyze(r#"count(doc("data.xml")//item)"#)
            .unwrap();
    assert_eq!(result.items()[0].string_value(), "3");
    assert_eq!(prof.hops.len(), 1, "purely local query: one hop");
    let path = find_op(&prof.hops[0].ops, "xq:path-step").expect("path step profiled");
    assert_eq!(
        path.calls, path.timed_calls,
        "explain_analyze times every call"
    );
    assert_eq!(path.items, 3);
}

/// The loop-lifted engine reports its own operator names. Only
/// XRPC-bearing expressions take the lifted path (everything else
/// deliberately falls back to the tree evaluator), so the profiled
/// FLWOR must wrap an `execute at`.
#[test]
fn rel_engine_ops_carry_rel_prefix() {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let p = Peer::new("xrpc://rel.example.org", EngineKind::Rel);
    let b = Peer::new(B_URI, EngineKind::Tree);
    for peer in [&p, &b] {
        peer.register_module(MODULE).unwrap();
        peer.add_document("data.xml", DATA).unwrap();
        peer.set_transport(net.clone());
    }
    net.register(B_URI, b.soap_handler());

    let (result, prof) = p
        .explain_analyze(
            r#"import module namespace t = "test";
               for $i in (1, 2, 3)
               return execute at {"xrpc://b.example.org"} {t:leaf()}"#,
        )
        .unwrap();
    assert_eq!(result.len(), 3);
    let origin = hop(&prof, "xrpc://rel.example.org");
    assert!(
        find_op(&origin.ops, "rel:flwor").is_some(),
        "lifted FLWOR profiled: {prof:#?}"
    );
    assert!(
        find_op(&origin.ops, "rel:execute-at").is_some(),
        "lifted dispatch profiled: {prof:#?}"
    );
}

/// The always-on slow-query log: one slow query appears exactly once,
/// fast queries never, and the entry carries the stable query hash that
/// `explain` reports.
#[test]
fn slow_queries_logged_exactly_once() {
    let p = Peer::new("xrpc://slow.example.org", EngineKind::Tree);
    p.slowlog.set_threshold_millis(40);

    let slow = "count(for $i in 1 to 300000 return $i * 2)";
    let fast = "1 + 1";
    let hash_of = |explain: &str| -> String {
        let tail = explain
            .split("\"queryHash\":\"")
            .nth(1)
            .expect("hash field");
        tail[..16].to_string()
    };
    let slow_hash = hash_of(&p.explain(slow).unwrap());
    let fast_hash = hash_of(&p.explain(fast).unwrap());

    p.execute(slow).unwrap();
    for _ in 0..5 {
        p.execute(fast).unwrap();
    }

    // The writer thread is asynchronous — wait for it to catch up.
    let mut rendered = String::new();
    for _ in 0..500 {
        rendered = p.slowlog.render();
        if !rendered.is_empty() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(
        rendered.lines().count(),
        1,
        "exactly one slow entry:\n{rendered}"
    );
    assert!(
        rendered.contains(&format!("\"queryHash\":\"{slow_hash}\"")),
        "entry identifies the slow query:\n{rendered}"
    );
    assert!(
        !rendered.contains(&format!("\"queryHash\":\"{fast_hash}\"")),
        "fast queries never logged:\n{rendered}"
    );
    assert!(rendered.contains("\"engine\":\"tree\""), "{rendered}");
    assert!(rendered.contains("\"cache\":\"hit\""), "{rendered}");
    assert_eq!(p.slowlog.entries_logged(), 1);
    assert_eq!(p.slowlog.entries_dropped(), 0);

    // The profile mode survives in the plan cache: a prepared execution
    // reuses the plan's profile option.
    let prepared = p
        .prepare(r#"declare option xrpc:profile "on"; 1 + 1"#)
        .unwrap();
    assert_eq!(prepared.plan_profile(), ProfileMode::Sampled);
}
