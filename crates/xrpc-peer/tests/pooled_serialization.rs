//! Property test (hand-rolled, seeded): serializing an XRPC message into
//! a recycled, pre-sized pool buffer must be byte-identical to
//! serializing it into a fresh buffer. This is the invariant the whole
//! buffer-recycling path rests on — a stale byte leaking out of a reused
//! buffer would corrupt a message silently.

use rand::prelude::*;
use std::sync::Arc;
use xdm::{AtomicValue, Item, Sequence};
use xmldom::NodeHandle;
use xrpc_net::BufferPool;
use xrpc_proto::{XrpcRequest, XrpcResponse};

/// Random text including XML-hostile characters, so escaping is exercised.
fn random_text(rng: &mut StdRng, max_len: usize) -> String {
    const ALPHABET: &[char] = &[
        'a', 'b', 'z', 'Q', '0', '7', ' ', '<', '>', '&', '"', '\'', 'é', '≤', '\n',
    ];
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
        .collect()
}

fn random_name(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..=8usize);
    (0..len)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

/// A random well-formed element subtree as XML text.
fn random_element(rng: &mut StdRng, depth: usize, out: &mut String) {
    let name = random_name(rng);
    out.push('<');
    out.push_str(&name);
    for _ in 0..rng.gen_range(0..3u32) {
        out.push(' ');
        out.push_str(&random_name(rng));
        out.push_str("=\"");
        out.push_str(&random_text(rng, 12).replace(['<', '&', '"'], "x"));
        out.push('"');
    }
    out.push('>');
    for _ in 0..rng.gen_range(0..4u32) {
        if depth > 0 && rng.gen_bool(0.4) {
            random_element(rng, depth - 1, out);
        } else {
            out.push_str(&random_text(rng, 40).replace(['<', '&'], "y"));
        }
    }
    out.push_str("</");
    out.push_str(&name);
    out.push('>');
}

fn random_sequence(rng: &mut StdRng) -> Sequence {
    let mut items = Vec::new();
    for _ in 0..rng.gen_range(0..5u32) {
        let item = match rng.gen_range(0..4u32) {
            0 => Item::Atomic(AtomicValue::Integer(rng.gen_range(-1000..1000i64))),
            1 => Item::Atomic(AtomicValue::String(random_text(rng, 200))),
            2 => Item::Atomic(AtomicValue::Boolean(rng.gen_bool(0.5))),
            _ => {
                let mut xml = String::new();
                random_element(rng, 2, &mut xml);
                let doc = Arc::new(xmldom::parse(&xml).unwrap());
                let root_el = doc.children(doc.root())[0];
                Item::Node(NodeHandle::new(doc, root_el))
            }
        };
        items.push(item);
    }
    Sequence::from_items(items)
}

fn random_request(rng: &mut StdRng) -> XrpcRequest {
    let arity = rng.gen_range(0..3usize);
    let mut req = XrpcRequest::new(random_name(rng), random_name(rng), arity);
    for _ in 0..rng.gen_range(1..4u32) {
        req.push_call((0..arity).map(|_| random_sequence(rng)).collect());
    }
    req
}

/// A pool whose buffers are pre-filled with junk: recycled buffers must
/// not leak a single stale byte into the serialized message.
fn dirty_pool() -> BufferPool {
    let pool = BufferPool::new();
    for _ in 0..4 {
        let mut junk = pool.get_string(16 * 1024);
        junk.push_str(&"GARBAGE-".repeat(2048));
        pool.put_string(junk);
    }
    pool
}

#[test]
fn pooled_request_serialization_matches_fresh() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let pool = dirty_pool();
    for round in 0..200 {
        let req = random_request(&mut rng);
        let mut fresh = String::new();
        req.write_xml(&mut fresh).unwrap();
        let mut pooled = pool.get_string(req.estimated_wire_size());
        req.write_xml(&mut pooled).unwrap();
        assert_eq!(fresh, pooled, "round {round} diverged");
        // also byte-identical to the public entry point and the DOM oracle
        assert_eq!(fresh, req.to_xml().unwrap(), "round {round}: to_xml");
        pool.put_string(pooled);
    }
    let stats = pool.stats();
    assert!(stats.hits > 0, "recycling never kicked in: {stats:?}");
}

#[test]
fn pooled_response_serialization_matches_fresh() {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    let pool = dirty_pool();
    for round in 0..200 {
        let mut resp = XrpcResponse::new(random_name(&mut rng), random_name(&mut rng));
        for _ in 0..rng.gen_range(0..4u32) {
            resp.results.push(random_sequence(&mut rng));
        }
        for _ in 0..rng.gen_range(0..3u32) {
            resp.participating_peers.push(random_name(&mut rng));
        }
        let mut fresh = String::new();
        resp.write_xml(&mut fresh).unwrap();
        let mut pooled = pool.get_string(resp.estimated_wire_size());
        resp.write_xml(&mut pooled).unwrap();
        assert_eq!(fresh, pooled, "round {round} diverged");
        assert_eq!(fresh, resp.to_xml().unwrap(), "round {round}: to_xml");
        pool.put_string(pooled);
    }
}

/// The size estimate should land in the right ballpark — close enough
/// that the pre-reserved buffer avoids most growth reallocations, and
/// never absurdly small for large messages.
#[test]
fn wire_size_estimate_tracks_actual_size() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..100 {
        let req = random_request(&mut rng);
        let actual = req.to_xml().unwrap().len();
        let est = req.estimated_wire_size();
        assert!(
            est * 8 >= actual,
            "estimate {est} far below actual {actual}"
        );
    }
}
