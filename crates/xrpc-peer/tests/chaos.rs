//! Deterministic chaos tests: peers joined by the simulated network with
//! scripted fault injection, verifying the resilience layer end to end —
//! exact retry accounting, circuit-breaker behaviour, and 2PC convergence
//! to a single outcome (never mixed, never double-applied) under lost
//! requests and lost responses.

use std::sync::Arc;
use std::time::Duration;
use xrpc_net::{
    BreakerConfig, BreakerState, NetProfile, ResilientTransport, RetryPolicy, SimFault, SimNetwork,
};
use xrpc_peer::{EngineKind, Peer};

const B_URI: &str = "xrpc://b.example.org";
const C_URI: &str = "xrpc://c.example.org";

const CHAOS_MODULE: &str = r#"
    module namespace t = "test";
    declare function t:ping() { "pong" };
    declare updating function t:addEntry($x as xs:string)
    { insert node <e>{$x}</e> into doc("log.xml")/log };
    declare updating function t:addCascade($x as xs:string)
    { execute at {"xrpc://c.example.org"} {t:addEntry($x)} };
"#;

struct Cluster {
    net: Arc<SimNetwork>,
    resilient: Arc<ResilientTransport>,
    a: Arc<Peer>,
    b: Arc<Peer>,
    c: Arc<Peer>,
}

fn cluster(policy: RetryPolicy, breaker: BreakerConfig) -> Cluster {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new("xrpc://a.example.org", EngineKind::Tree);
    let b = Peer::new(B_URI, EngineKind::Tree);
    let c = Peer::new(C_URI, EngineKind::Tree);
    for p in [&a, &b, &c] {
        p.register_module(CHAOS_MODULE).unwrap();
    }
    for p in [&b, &c] {
        p.add_document("log.xml", "<log/>").unwrap();
    }
    // install the resilient transport explicitly (rather than through
    // set_transport) so the tests can read its metrics and breaker state
    let resilient = ResilientTransport::with_policy(net.clone(), policy, breaker);
    a.set_transport_raw(resilient.clone());
    net.register(B_URI, b.soap_handler());
    net.register(C_URI, c.soap_handler());
    Cluster {
        net,
        resilient,
        a,
        b,
        c,
    }
}

fn fast_policy(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        call_deadline: Duration::from_secs(5),
        jitter_seed: 42,
    }
}

/// Number of `<e>` entries in a peer's log document.
fn log_count(p: &Peer) -> usize {
    let doc = p.docs.get("log.xml").unwrap();
    let log = doc.children(doc.root())[0];
    doc.children(log)
        .iter()
        .filter(|&&n| doc.node(n).name.as_ref().is_some_and(|q| q.local == "e"))
        .count()
}

const UPDATE_BOTH: &str = r#"declare option xrpc:isolation "repeatable";
    import module namespace t = "test";
    (execute at {"xrpc://b.example.org"} {t:addEntry("x")},
     execute at {"xrpc://c.example.org"} {t:addEntry("x")})"#;

#[test]
fn transient_faults_absorbed_with_exact_retry_count() {
    let cl = cluster(fast_policy(4), BreakerConfig::default());
    // two lost requests, then the link heals: fewer faults than attempts
    cl.net.inject_fault(B_URI, SimFault::DropRequest);
    cl.net.inject_fault(B_URI, SimFault::DropRequest);
    let res =
        cl.a.execute(
            r#"import module namespace t = "test";
               execute at {"xrpc://b.example.org"} {t:ping()}"#,
        )
        .unwrap();
    assert_eq!(res.items()[0].string_value(), "pong");
    let s = cl.resilient.metrics.snapshot();
    assert_eq!(s.retries, 2, "exactly one retry per injected fault");
    assert_eq!(s.failures, 2);
    assert_eq!(s.timeouts, 2, "a dropped request surfaces as a timeout");
    assert_eq!(cl.resilient.breaker_state(B_URI), BreakerState::Closed);
}

#[test]
fn exhausted_retries_open_breaker_then_probe_restores() {
    let cl = cluster(
        fast_policy(2),
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(100),
        },
    );
    let q = r#"import module namespace t = "test";
               execute at {"xrpc://b.example.org"} {t:ping()}"#;
    // as many faults as attempts: the call fails and its two consecutive
    // failures trip the breaker
    cl.net.inject_fault(B_URI, SimFault::DropRequest);
    cl.net.inject_fault(B_URI, SimFault::DropRequest);
    assert!(cl.a.execute(q).is_err());
    assert_eq!(cl.resilient.breaker_state(B_URI), BreakerState::Open);
    assert_eq!(cl.resilient.metrics.snapshot().breaker_opens, 1);

    // while open: fail fast, nothing reaches the wire
    let wire_before = cl.net.metrics.snapshot();
    assert!(cl.a.execute(q).is_err());
    assert_eq!(
        cl.net.metrics.snapshot(),
        wire_before,
        "open breaker must not generate wire traffic"
    );
    assert_eq!(cl.resilient.metrics.snapshot().fast_failures, 1);

    // after the cooldown the half-open probe finds a healthy link and
    // closes the breaker again
    std::thread::sleep(Duration::from_millis(120));
    let res = cl.a.execute(q).unwrap();
    assert_eq!(res.items()[0].string_value(), "pong");
    assert_eq!(cl.resilient.breaker_state(B_URI), BreakerState::Closed);
}

#[test]
fn chaos_2pc_converges_single_outcome_no_double_apply() {
    // Drop the response of each message in the update conversation with
    // peer b in turn: the deferred update call (0), Prepare (1), Commit
    // (2). Every run must converge to a full commit with the update
    // applied exactly once on BOTH peers — never a mixed outcome.
    for drop_at in 0..3u32 {
        let cl = cluster(fast_policy(4), BreakerConfig::default());
        for _ in 0..drop_at {
            cl.net
                .inject_fault(B_URI, SimFault::LatencySpike(Duration::ZERO));
        }
        cl.net.inject_fault(B_URI, SimFault::DropResponse);
        let out =
            cl.a.execute_detailed(UPDATE_BOTH)
                .unwrap_or_else(|e| panic!("drop_at={drop_at}: {e}"));
        assert!(matches!(
            out.commit,
            Some(xrpc_peer::CommitOutcome::Committed { participants: 2 })
        ));
        assert_eq!(
            cl.net.pending_faults(B_URI),
            0,
            "drop_at={drop_at}: scripted fault was not consumed"
        );
        assert_eq!(
            log_count(&cl.b),
            1,
            "drop_at={drop_at}: update must apply exactly once at b"
        );
        assert_eq!(
            log_count(&cl.c),
            1,
            "drop_at={drop_at}: outcome must not be mixed"
        );
        assert_eq!(cl.b.snapshots.active_count(), 0);
        assert_eq!(cl.c.snapshots.active_count(), 0);
    }
}

#[test]
fn immediate_update_never_retried_on_ambiguous_failure() {
    // isolation "none" (rule RFu): the peer applies the update right after
    // the call, so a lost *response* is ambiguous and must NOT be retried
    // — the error surfaces, and the update exists exactly once.
    let cl = cluster(fast_policy(4), BreakerConfig::default());
    cl.net.inject_fault(B_URI, SimFault::DropResponse);
    let err =
        cl.a.execute(
            r#"import module namespace t = "test";
               execute at {"xrpc://b.example.org"} {t:addEntry("once")}"#,
        )
        .unwrap_err();
    assert_eq!(err.code, "XRPC0001");
    assert_eq!(cl.net.handled_count(B_URI), 1, "no redelivery");
    assert_eq!(
        log_count(&cl.b),
        1,
        "applied exactly once despite the lost ack"
    );
    assert_eq!(cl.resilient.metrics.snapshot().retries, 0);
}

#[test]
fn crashed_participant_fails_query_and_recovers_after_restart() {
    let cl = cluster(fast_policy(2), BreakerConfig::default());
    cl.net.crash(B_URI);
    let err = cl.a.execute(UPDATE_BOTH).unwrap_err();
    assert!(err.message.contains("is down"), "{err}");
    // atomicity: neither peer has a committed update after the failure
    assert_eq!(log_count(&cl.b), 0);
    assert_eq!(log_count(&cl.c), 0);

    cl.net.restart(B_URI);
    let out = cl.a.execute_detailed(UPDATE_BOTH).unwrap();
    assert!(matches!(
        out.commit,
        Some(xrpc_peer::CommitOutcome::Committed { participants: 2 })
    ));
    assert_eq!(log_count(&cl.b), 1);
    assert_eq!(log_count(&cl.c), 1);
}

#[test]
fn redelivered_deferred_update_is_merged_at_most_once() {
    // Protocol-level check of the at-most-once ∆ merge: byte-identical
    // redelivery (same seq) is deduped, a distinct dispatch with the same
    // arguments (different seq) is not.
    let cl = cluster(fast_policy(1), BreakerConfig::default());
    let qid = xrpc_proto::QueryId::new("origin", 4242, 30);
    let mut req = xrpc_proto::XrpcRequest::new("test", "addEntry", 1).with_query_id(qid.clone());
    req.deferred = true;
    req.seq = Some(7);
    req.push_call(vec![xdm::Sequence::one(xdm::Item::string("dup"))]);
    let xml = req.to_xml().unwrap();

    let r1 = String::from_utf8(cl.b.handle_soap(xml.as_bytes())).unwrap();
    assert!(r1.contains("response"), "{r1}");
    // redelivery: identical bytes → deduped, still answered OK
    let r2 = String::from_utf8(cl.b.handle_soap(xml.as_bytes())).unwrap();
    assert!(r2.contains("response"), "{r2}");
    // a genuinely new dispatch of the same call carries a new seq
    req.seq = Some(8);
    let xml2 = req.to_xml().unwrap();
    let r3 = String::from_utf8(cl.b.handle_soap(xml2.as_bytes())).unwrap();
    assert!(r3.contains("response"), "{r3}");

    // drive Prepare + Commit directly and count the applied entries
    let snap = cl.b.snapshots.get(&qid).unwrap();
    assert_eq!(
        snap.pul.lock().len(),
        2,
        "two distinct dispatches, one redelivery"
    );
    let mut ctrl = xrpc_proto::XrpcRequest::new(xrpc_peer::twopc::WSAT_MODULE, "Prepare", 0)
        .with_query_id(qid.clone());
    ctrl.push_call(vec![]);
    let _ = cl.b.handle_soap(ctrl.to_xml().unwrap().as_bytes());
    let mut commit = xrpc_proto::XrpcRequest::new(xrpc_peer::twopc::WSAT_MODULE, "Commit", 0)
        .with_query_id(qid.clone());
    commit.push_call(vec![]);
    let c1 = String::from_utf8(cl.b.handle_soap(commit.to_xml().unwrap().as_bytes())).unwrap();
    assert!(c1.contains("response"), "{c1}");
    assert_eq!(log_count(&cl.b), 2);
    // a redelivered Commit after the snapshot is gone is acknowledged and
    // does NOT re-apply
    let c2 = String::from_utf8(cl.b.handle_soap(commit.to_xml().unwrap().as_bytes())).unwrap();
    assert!(
        c2.contains("response"),
        "redelivered Commit must be acknowledged: {c2}"
    );
    assert_eq!(log_count(&cl.b), 2, "no double apply on Commit redelivery");
}

#[test]
fn failed_deferred_update_redelivery_is_not_masked_as_success() {
    // A deferred update whose *evaluation* faults must not be recorded as
    // merged: if the fault response is lost and the transport redelivers
    // the request, the peer must fault again — synthesizing a success
    // would let the originator commit a delta that never merged.
    let cl = cluster(fast_policy(1), BreakerConfig::default());
    let qid = xrpc_proto::QueryId::new("origin", 5555, 30);
    let mut req = xrpc_proto::XrpcRequest::new("test", "addEntry", 1).with_query_id(qid.clone());
    req.deferred = true;
    req.seq = Some(1);
    req.push_call(vec![xdm::Sequence::one(xdm::Item::string("x"))]);
    let xml = req.to_xml().unwrap();

    // peer a has no log.xml, so evaluating the insert faults
    let r1 = String::from_utf8(cl.a.handle_soap(xml.as_bytes())).unwrap();
    assert!(r1.contains("Fault"), "{r1}");
    // byte-identical redelivery: still a fault, never a synthesized success
    let r2 = String::from_utf8(cl.a.handle_soap(xml.as_bytes())).unwrap();
    assert!(r2.contains("Fault"), "{r2}");
    assert_eq!(
        cl.a.snapshots.get(&qid).unwrap().pul.lock().len(),
        0,
        "nothing must have merged"
    );
}

#[test]
fn replayed_deferred_update_carries_original_participants() {
    // A deferred update at b that cascades to c involves BOTH peers in the
    // 2PC participant set. When the response is lost and the request
    // redelivered, the replayed response must carry the original's full
    // peer set — resynthesizing it with only b would leave c's prepared
    // delta without a Commit.
    let cl = cluster(fast_policy(1), BreakerConfig::default());
    cl.b.set_transport_raw(cl.net.clone());
    let qid = xrpc_proto::QueryId::new("origin", 6666, 30);
    let mut req = xrpc_proto::XrpcRequest::new("test", "addCascade", 1).with_query_id(qid.clone());
    req.deferred = true;
    req.seq = Some(1);
    req.push_call(vec![xdm::Sequence::one(xdm::Item::string("deep"))]);
    let xml = req.to_xml().unwrap();

    let peers_of = |raw: Vec<u8>| -> Vec<String> {
        match xrpc_proto::parse_message(std::str::from_utf8(&raw).unwrap()).unwrap() {
            xrpc_proto::XrpcMessage::Response(r) => r.participating_peers,
            other => panic!("expected a response, got {other:?}"),
        }
    };
    let first = peers_of(cl.b.handle_soap(xml.as_bytes()));
    assert!(first.contains(&B_URI.to_string()), "{first:?}");
    assert!(first.contains(&C_URI.to_string()), "{first:?}");
    // byte-identical redelivery: deduped, but the peer set must match the
    // original response, nested participants included
    let replayed = peers_of(cl.b.handle_soap(xml.as_bytes()));
    assert_eq!(replayed, first);
    // and the cascade's delta merged at c exactly once
    assert_eq!(cl.c.snapshots.get(&qid).unwrap().pul.lock().len(), 1);
}
