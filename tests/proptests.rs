//! Property-based tests over the core invariants of the reproduction:
//! parser/serializer fixpoints, marshaling roundtrips, bulk split/merge
//! order preservation, engine equivalence and decimal arithmetic laws.
//!
//! Gated behind the `proptests` feature: the `proptest` crate cannot be
//! vendored offline (see vendor/README.md). To run, restore the
//! `proptest` dev-dependency and `cargo test --features proptests`.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use std::sync::Arc;
use xdm::{AtomicValue, Decimal, Item, Sequence};
use xmldom::{parse, serialize_document, Document, NodeHandle, SerializeOpts};

// ---------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------

fn elem_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "film", "name", "person", "x-y", "ns1"])
        .prop_map(|s| s.to_string())
}

fn text_content() -> impl Strategy<Value = String> {
    // printable text without control characters; XML 1.0 forbids most
    // control chars, and the serializer does not escape them
    "[ -~&&[^<>&\"']]{0,20}"
}

#[derive(Clone, Debug)]
enum Tree {
    Element {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Tree>,
    },
    Text(String),
    Comment(String),
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        text_content()
            .prop_filter("no empty text", |t| !t.trim().is_empty())
            .prop_map(Tree::Text),
        "[ -~&&[^<>&'\"-]]{0,10}".prop_map(Tree::Comment),
        (
            elem_name(),
            prop::collection::vec((elem_name(), text_content()), 0..3)
        )
            .prop_map(|(name, mut attrs)| {
                attrs.dedup_by(|a, b| a.0 == b.0);
                // drop duplicate attribute names entirely
                let mut seen = std::collections::HashSet::new();
                attrs.retain(|(n, _)| seen.insert(n.clone()));
                Tree::Element {
                    name,
                    attrs,
                    children: vec![],
                }
            }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            elem_name(),
            prop::collection::vec((elem_name(), text_content()), 0..2),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, mut attrs, children)| {
                let mut seen = std::collections::HashSet::new();
                attrs.retain(|(n, _)| seen.insert(n.clone()));
                // merge adjacent text children (parsers collapse them)
                let mut merged: Vec<Tree> = Vec::new();
                for c in children {
                    match (&c, merged.last_mut()) {
                        (Tree::Text(t), Some(Tree::Text(prev))) => prev.push_str(t),
                        _ => merged.push(c),
                    }
                }
                Tree::Element {
                    name,
                    attrs,
                    children: merged,
                }
            })
    })
}

fn build(tree: &Tree, doc: &mut Document) -> xmldom::NodeId {
    match tree {
        Tree::Element {
            name,
            attrs,
            children,
        } => {
            let e = doc.create_element(xmldom::QName::local(name.clone()));
            for (n, v) in attrs {
                doc.set_attribute(e, xmldom::QName::local(n.clone()), v.clone());
            }
            for c in children {
                let k = build(c, doc);
                doc.append_child(e, k);
            }
            e
        }
        Tree::Text(t) => doc.create_text(t.clone()),
        Tree::Comment(t) => doc.create_comment(t.clone()),
    }
}

fn atomic_strategy() -> impl Strategy<Value = AtomicValue> {
    prop_oneof![
        any::<i64>().prop_map(AtomicValue::Integer),
        any::<bool>().prop_map(AtomicValue::Boolean),
        "[ -~&&[^\u{7f}]]{0,30}".prop_map(AtomicValue::String),
        (-1_000_000_000i64..1_000_000_000, 0u32..6)
            .prop_map(|(m, s)| AtomicValue::Decimal(Decimal::new(m as i128, s))),
        (-1e12f64..1e12).prop_map(AtomicValue::Double),
    ]
}

// ---------------------------------------------------------------------
// properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse ∘ serialize is a fixpoint on arbitrary trees.
    #[test]
    fn xml_serialize_parse_roundtrip(tree in tree_strategy()) {
        let mut doc = Document::new();
        let root = build(&tree, &mut doc);
        // the document must have an element root
        let root = if doc.kind(root) == xmldom::NodeKind::Element {
            root
        } else {
            let holder = doc.create_element(xmldom::QName::local("holder"));
            doc.append_child(holder, root);
            holder
        };
        let top = doc.root();
        doc.append_child(top, root);
        let s1 = serialize_document(&doc, &SerializeOpts::default());
        let reparsed = parse(&s1).unwrap();
        let s2 = serialize_document(&reparsed, &SerializeOpts::default());
        prop_assert_eq!(s1, s2);
    }

    /// n2s(s2n(x)) == x for atomic sequences, through full wire text.
    #[test]
    fn marshal_roundtrip_atomics(values in prop::collection::vec(atomic_strategy(), 0..8)) {
        let seq = Sequence::from_items(values.iter().cloned().map(Item::Atomic).collect());
        let mut req = xrpc_proto::XrpcRequest::new("m", "f", 1);
        req.push_call(vec![seq]);
        let xml = req.to_xml().unwrap();
        let back = match xrpc_proto::parse_message(&xml).unwrap() {
            xrpc_proto::XrpcMessage::Request(r) => r,
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        };
        let got = &back.calls[0][0];
        prop_assert_eq!(got.len(), values.len());
        for (orig, round) in values.iter().zip(got.atomized()) {
            prop_assert_eq!(orig.atomic_type(), round.atomic_type());
            prop_assert_eq!(orig.lexical(), round.lexical());
        }
    }

    /// Marshaled node fragments are fully detached at the receiver
    /// (call-by-value: upward/sideways axes empty).
    #[test]
    fn marshal_node_by_value(tree in tree_strategy()) {
        let mut doc = Document::new();
        let built = build(&tree, &mut doc);
        if doc.kind(built) != xmldom::NodeKind::Element {
            return Ok(());
        }
        let top = doc.root();
        doc.append_child(top, built);
        let arc = Arc::new(doc);
        let node = NodeHandle::new(arc.clone(), built);
        let seq = Sequence::one(Item::Node(node));
        let mut req = xrpc_proto::XrpcRequest::new("m", "f", 1);
        req.push_call(vec![seq]);
        let xml = req.to_xml().unwrap();
        let back = match xrpc_proto::parse_message(&xml).unwrap() {
            xrpc_proto::XrpcMessage::Request(r) => r,
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        };
        let n = back.calls[0][0].items()[0].as_node().unwrap().clone();
        prop_assert!(n.parent().is_none());
        prop_assert!(xmldom::axes::step(&n, xmldom::axes::Axis::FollowingSibling).is_empty());
        prop_assert!(xmldom::axes::step(&n, xmldom::axes::Axis::Preceding).is_empty());
    }

    /// Figure-2 split + merge restores iteration order for any assignment
    /// of iterations to peers.
    #[test]
    fn bulk_split_merge_preserves_order(assignment in prop::collection::vec(0usize..3, 1..40)) {
        use relalg::{IterMap, SeqTable};
        // outer iterations 1..=n, each assigned to one of 3 peers with a
        // distinct payload
        let n = assignment.len();
        let mut per_peer: Vec<Vec<u32>> = vec![vec![]; 3];
        for (i, &p) in assignment.iter().enumerate() {
            per_peer[p].push(i as u32 + 1);
        }
        let mut mapped = Vec::new();
        for outer in per_peer {
            if outer.is_empty() {
                continue;
            }
            let map = IterMap::rank(outer.clone());
            // peer computes: result for inner k = the outer iter number
            let msg = SeqTable::from_sequences(
                (1..=outer.len() as u32).map(|k| {
                    (k, Sequence::one(Item::integer(map.to_outer(k) as i64)))
                }),
            );
            mapped.push(map.map_back(&msg));
        }
        let merged = SeqTable::merge_union(mapped);
        prop_assert_eq!(merged.len(), n);
        for r in 0..n {
            prop_assert_eq!(merged.iter[r] as usize, r + 1);
            prop_assert_eq!(merged.item[r].string_value(), (r + 1).to_string());
        }
    }

    /// Decimal arithmetic laws: commutativity, identity, parse/display
    /// roundtrip.
    #[test]
    fn decimal_laws(am in -1_000_000_000i64..1_000_000_000, asc in 0u32..6,
                    bm in -1_000_000_000i64..1_000_000_000, bsc in 0u32..6) {
        let a = Decimal::new(am as i128, asc);
        let b = Decimal::new(bm as i128, bsc);
        prop_assert_eq!(a.add(b), b.add(a));
        prop_assert_eq!(a.mul(b), b.mul(a));
        prop_assert_eq!(a.add(Decimal::zero()), a);
        prop_assert_eq!(a.sub(a), Decimal::zero());
        let round = Decimal::parse(&a.to_string()).unwrap();
        prop_assert_eq!(round, a);
    }

    /// Tree and loop-lifted engines agree on arithmetic/FLWOR queries.
    #[test]
    fn engines_agree(n in 1i64..30, m in 1i64..10, k in 0i64..5) {
        let q = format!(
            "for $x in (1 to {n}) where $x mod {m} = {k} return $x * $x"
        );
        let docs = Arc::new(xqeval::InMemoryDocs::new());
        let env1 = xqeval::Environment::new(docs.clone());
        let env2 = xqeval::Environment::new(docs);
        let (r1, _) = xqeval::evaluate_main(&q, &env1).unwrap();
        let (r2, _) = relalg::execute_rel(&q, &env2).unwrap();
        prop_assert_eq!(r1.joined_string(), r2.joined_string());
    }

    /// The XQuery string literal escaping in the pretty printer round-trips.
    #[test]
    fn pretty_print_string_literal_roundtrip(s in "[ -~]{0,30}") {
        let e = xqast::Expr::Literal(AtomicValue::String(s.clone()));
        let printed = xqast::pretty_print(&e);
        let parsed = xqast::parse_main_module(&printed).unwrap();
        match parsed.body {
            xqast::Expr::Literal(AtomicValue::String(back)) => prop_assert_eq!(back, s),
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }
}
