//! Cross-crate integration tests through the umbrella crate: the paper's
//! queries running on complete peers over both transports, exercising the
//! whole stack (parser → engines → protocol → network → isolation → 2PC).

use std::sync::Arc;
use xrpc_repro::xmark;
use xrpc_repro::xrpc_net::{NetProfile, SimNetwork};
use xrpc_repro::xrpc_peer::{EngineKind, Peer, XrpcWrapper};

fn film_cluster() -> (Arc<SimNetwork>, Arc<Peer>, Arc<Peer>) {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let local = Peer::new("xrpc://local", EngineKind::Rel);
    let y = Peer::new("xrpc://y.example.org", EngineKind::Tree);
    for p in [&local, &y] {
        p.register_module(xmark::film_module()).unwrap();
        p.set_transport(net.clone());
    }
    y.add_document("filmDB.xml", xmark::film_db()).unwrap();
    net.register("xrpc://y.example.org", y.soap_handler());
    net.register("xrpc://local", local.soap_handler());
    (net, local, y)
}

#[test]
fn paper_abstract_scenario() {
    // the exact output the paper promises for Q1
    let (_net, local, _y) = film_cluster();
    let res = local
        .execute(
            r#"import module namespace f = "films" at "http://x.example.org/film.xq";
               <films> {
                 execute at {"xrpc://y.example.org"}
                 {f:filmsByActor("Sean Connery")}
               } </films>"#,
        )
        .unwrap();
    let xml: String = res
        .items()
        .iter()
        .filter_map(|i| i.as_node().map(|n| n.to_xml()))
        .collect();
    assert_eq!(
        xml,
        "<films><name>The Rock</name><name>Goldfinger</name></films>"
    );
}

#[test]
fn q3_multi_peer_multi_actor() {
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let local = Peer::new("xrpc://local", EngineKind::Rel);
    local.register_module(xmark::film_module()).unwrap();
    local.set_transport(net.clone());
    for name in ["xrpc://y.example.org", "xrpc://z.example.org"] {
        let p = Peer::new(name, EngineKind::Tree);
        p.register_module(xmark::film_module()).unwrap();
        p.add_document("filmDB.xml", xmark::film_db()).unwrap();
        net.register(name, p.soap_handler());
    }
    let out = local
        .execute_detailed(
            r#"import module namespace f = "films";
               <films> {
                 for $actor in ("Julie Andrews", "Sean Connery")
                 for $dst in ("xrpc://y.example.org", "xrpc://z.example.org")
                 return execute at {$dst} {f:filmsByActor($actor)}
               } </films>"#,
        )
        .unwrap();
    // 2 peers → 2 bulk requests, 4 calls total
    assert_eq!(out.requests_sent, 2);
    assert_eq!(out.calls_sent, 4);
    let xml: String = out
        .result
        .items()
        .iter()
        .filter_map(|i| i.as_node().map(|n| n.to_xml()))
        .collect();
    // both peers hold the same films: 2 Andrews + 2 Connery titles each
    assert_eq!(xml.matches("<name>").count(), 8);
}

#[test]
fn wrapper_and_peer_interoperate_over_same_protocol() {
    // the same SOAP bytes work against a native peer and a wrapper
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let native = Peer::new("xrpc://native", EngineKind::Tree);
    native.register_module(xmark::film_module()).unwrap();
    native.add_document("filmDB.xml", xmark::film_db()).unwrap();
    net.register("xrpc://native", native.soap_handler());

    let wrapped = XrpcWrapper::new();
    wrapped
        .modules
        .register_source(xmark::film_module())
        .unwrap();
    wrapped
        .docs
        .insert("filmDB.xml", xmldom::parse(xmark::film_db()).unwrap());
    net.register("xrpc://wrapped", wrapped.soap_handler());

    let client = Peer::new("xrpc://client", EngineKind::Rel);
    client.register_module(xmark::film_module()).unwrap();
    client.set_transport(net.clone());

    let q = |dst: &str| {
        format!(
            r#"import module namespace film = "films";
               execute at {{"{dst}"}} {{film:filmsByActor("Julie Andrews")}}"#
        )
    };
    let from_native = client.execute(&q("xrpc://native")).unwrap();
    let from_wrapped = client.execute(&q("xrpc://wrapped")).unwrap();
    let text = |s: &xrpc_repro::xdm::Sequence| -> String {
        s.items()
            .iter()
            .filter_map(|i| i.as_node().map(|n| n.to_xml()))
            .collect()
    };
    assert_eq!(text(&from_native), text(&from_wrapped));
    assert!(text(&from_native).contains("The Sound of Music"));
}

#[test]
fn repeatable_read_query_sees_one_state_per_peer() {
    // end-to-end §2.2: a query with two call sites to the same peer pins
    // one snapshot even when an update slips in between (we interleave by
    // mutating from a hook inside the first response handling).
    let (_net, local, y) = film_cluster();
    // two sequential (tree-engine would be sequential; rel sends two
    // requests — one per call site)
    let q = r#"declare option xrpc:isolation "repeatable";
        import module namespace f = "films";
        ( count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")}),
          count(execute at {"xrpc://y.example.org"} {f:filmsByActor("Sean Connery")}) )"#;
    let res = local.execute(q).unwrap();
    let counts: Vec<String> = res.items().iter().map(|i| i.string_value()).collect();
    assert_eq!(counts, ["2", "2"]);
    // the snapshot was pinned and released (read-only queries leave it to
    // the timeout; it must still be bounded)
    assert!(y.snapshots.active_count() <= 1);
}

#[test]
fn xmark_workload_full_pipeline() {
    // generator → peer stores → rel engine with strategies, at small scale
    let params = xmark::XmarkParams {
        persons: 30,
        closed_auctions: 120,
        matches: 5,
        padding_words: 4,
        seed: 99,
    };
    let net = Arc::new(SimNetwork::new(NetProfile::instant()));
    let a = Peer::new("xrpc://a", EngineKind::Rel);
    a.add_document("persons.xml", &xmark::persons_xml(&params))
        .unwrap();
    a.register_module(distq::MODULE_B).unwrap();
    a.set_transport(net.clone());
    net.register("xrpc://a", a.soap_handler());
    let b = Peer::new("xrpc://b", EngineKind::Tree);
    b.add_document("auctions.xml", &xmark::auctions_xml(&params))
        .unwrap();
    b.register_module(distq::MODULE_B).unwrap();
    b.set_transport(net.clone());
    net.register("xrpc://b", b.soap_handler());

    for s in distq::Strategy::ALL {
        let res = a.execute(&s.query("xrpc://b", "xrpc://a")).unwrap();
        let n = res
            .iter()
            .filter(|i| {
                matches!(i, xrpc_repro::xdm::Item::Node(h)
                    if h.name().is_some_and(|q| q.local == "result"))
            })
            .count();
        assert_eq!(n, 5, "{}", s.label());
    }
}
